//! # Polyraptor reproduction — facade crate
//!
//! This crate re-exports the public API of every crate in the workspace so
//! that examples and integration tests can use a single dependency. See the
//! individual crates for full documentation:
//!
//! * [`rq`] — systematic rateless fountain code (RaptorQ family).
//! * [`netsim`] — deterministic packet-level data-centre network simulator.
//! * [`polyraptor`] — the Polyraptor transport protocol (the paper's
//!   contribution).
//! * [`tcpsim`] — TCP NewReno baseline transport.
//! * [`workload`] — workload generators and experiment metrics.

pub use netsim;
pub use polyraptor;
pub use rq;
pub use tcpsim;
pub use workload;
