//! Integration soak for the fault-churn subsystem: a seeded Poisson
//! fault process (links, sub-convergence-window flaps, transit
//! switches, and host failures) sustained over a replicated storage
//! fetch run at test scale.
//!
//! The contract under churn-with-repair is total: every fetch completes
//! with zero timeouts (Polyraptor's recovery is pull-paced — the sweep
//! re-pulls written-off loss, and a dead replica's remaining share is
//! re-targeted at a survivor), flapping links coalesce instead of
//! paying full route recomputes, restorations repair incrementally, and
//! the whole run is byte-identical per seed.

use polyraptor_repro::netsim::FaultAction;
use polyraptor_repro::workload::{run_churn_rq, ChurnReport, ChurnScenario, Fabric, RqRunOptions};

/// Seed 2 at this scale draws all four event classes and strands live
/// sessions (verified by the plan assertions below, so a regression in
/// the generator can't silently hollow the test out).
fn scenario() -> ChurnScenario {
    let mut sc = ChurnScenario::ten_event(6, 2 << 20, 2);
    sc.fault_events = 12;
    sc
}

#[test]
fn churn_soak_completes_everything_and_retargets_all_stranded() {
    let sc = scenario();
    let fabric = Fabric::small();

    // The compiled plan really exercises the advertised mix: >= 10
    // events including >= 1 host failure and >= 1 flap.
    let topo = fabric.build();
    let sessions = sc.storage_sessions(&topo);
    let plan = sc.plan(&topo, &sessions);
    let downs = plan
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.action,
                FaultAction::LinkDown { .. } | FaultAction::SwitchDown { .. }
            )
        })
        .count();
    assert!(downs >= 10, "soak needs >= 10 fault events (got {downs})");
    assert!(
        !plan.host_failures(&topo).is_empty(),
        "soak needs a host failure"
    );

    let rep = run_churn_rq(&sc, &fabric, &RqRunOptions::default());
    // Every fetch completed (the collector asserts per-endpoint
    // completion; the count pins the shape) with zero timeouts.
    assert_eq!(rep.flows.len(), 6, "one completed fetch per session");
    assert_eq!(rep.timeouts, 0, "recovery is pull-paced, never timer-paced");
    // Host failures stranded live sessions, and every stranding was
    // re-targeted at a surviving replica.
    assert!(rep.host_failures >= 1);
    assert!(
        rep.stranded_sessions >= 1,
        "a host failure must strand a live fetch at this scale"
    );
    assert_eq!(
        rep.retargeted_sessions, rep.stranded_sessions,
        "every stranded session must be re-targeted"
    );
    assert!(
        rep.retarget_symbols > 0,
        "re-target must move the dead replica's share to survivors"
    );
    // Revivals can only undo strandings that actually happened.
    assert!(
        rep.unstranded_sessions <= rep.stranded_sessions,
        "un-strand count bounded by strandings"
    );
    // The fabric half of the story: flaps coalesced into no-op deltas.
    // (Bunched repairs at this event rate legitimately exceed the
    // mass-delta threshold, so restore-repair is asserted separately by
    // `links_only_churn_never_pays_a_full_recompute` below, where the
    // repairs are spaced.)
    assert!(
        rep.fabric.flaps_coalesced >= 1,
        "sub-convergence-window flaps must coalesce"
    );
    assert!(rep.fabric.lost_to_fault > 0, "churn must cost packets");
    // Recovery is bounded: every fetch in flight at a fault instant
    // still finished (completion is asserted above; the percentiles
    // exist and are ordered).
    let rec = rep.recovery().expect("faults struck mid-fetch");
    assert!(rec.p50_ns <= rec.p99_ns && rec.p99_ns <= rec.max_ns);
}

#[test]
fn links_only_churn_never_pays_a_full_recompute() {
    // A churn of link failures and flaps with spaced repairs is the
    // control-plane acceptance case: every flap coalesces to a no-op
    // delta, every restoration takes the bounded restore-repair path,
    // and *no* reroute falls back to a full recomputation — while every
    // fetch still completes.
    let mut sc = ChurnScenario::ten_event(6, 2 << 20, 0);
    sc.fault_events = 10;
    sc.fault_rate_per_sec = 120.0;
    sc.repair_delay_ns = 12_000_000;
    sc.mix = polyraptor_repro::netsim::FaultMix::links_only();
    let rep = run_churn_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(rep.flows.len(), 6, "every fetch completes");
    assert!(
        rep.fabric.flaps_coalesced >= 1,
        "flaps must coalesce (got {})",
        rep.fabric.flaps_coalesced
    );
    assert!(
        rep.fabric.restores_incremental >= 1,
        "spaced restorations must take restore repair"
    );
    assert_eq!(
        rep.fabric.reroutes, rep.fabric.reroutes_incremental,
        "links-only churn must never fall back to a full route recompute"
    );
}

#[test]
fn churn_soak_is_byte_identical_per_seed() {
    let sc = scenario();
    let fabric = Fabric::small();
    let fingerprint = |rep: &ChurnReport| -> Vec<(u32, u64, u64, usize)> {
        rep.flows
            .iter()
            .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos(), f.bytes))
            .collect()
    };
    let a = run_churn_rq(&sc, &fabric, &RqRunOptions::default());
    let b = run_churn_rq(&sc, &fabric, &RqRunOptions::default());
    assert_eq!(a.fabric, b.fabric, "identical fabric stats field for field");
    assert_eq!(fingerprint(&a), fingerprint(&b), "identical per-flow stats");
    assert_eq!(a.stranded_sessions, b.stranded_sessions);
    assert_eq!(a.retargeted_sessions, b.retargeted_sessions);
    assert_eq!(a.unstranded_sessions, b.unstranded_sessions);
    assert_eq!(a.retarget_symbols, b.retarget_symbols);
    assert_eq!(a.fault_instants, b.fault_instants);

    // Parallel route computation must not leak into results: the same
    // seed run with multi-threaded reroutes reproduces the serial run
    // byte for byte (fabric stats field for field, per-flow timings,
    // and the whole stranding ledger).
    let par_opts = RqRunOptions {
        parallelism: 3,
        ..Default::default()
    };
    let p = run_churn_rq(&sc, &fabric, &par_opts);
    assert_eq!(a.fabric, p.fabric, "parallel reroutes alter no fabric stat");
    assert_eq!(fingerprint(&a), fingerprint(&p), "parallel run diverged");
    assert_eq!(a.stranded_sessions, p.stranded_sessions);
    assert_eq!(a.retargeted_sessions, p.retargeted_sessions);
    assert_eq!(a.unstranded_sessions, p.unstranded_sessions);
    assert_eq!(a.retarget_symbols, p.retarget_symbols);
    assert_eq!(a.fault_instants, p.fault_instants);

    // A different seed produces a different run (the soak is not
    // accidentally fault-free or schedule-independent).
    let mut other = sc;
    other.seed = 3;
    let c = run_churn_rq(&other, &fabric, &RqRunOptions::default());
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn churn_soak_is_mode_invariant() {
    // The systematic codec changes how bytes are encoded, not which
    // packets fly: under the counting oracle no symbol bytes are
    // materialized and ESI emission order is identical in both code
    // modes, so the entire churn run — fault process included — must be
    // byte-identical between systematic (the default) and legacy A/B
    // runs, with zero timeouts in both.
    let sc = scenario();
    let fabric = Fabric::small();
    let sys_opts = RqRunOptions::default();
    assert_eq!(
        sys_opts.pr.code_mode,
        polyraptor_repro::polyraptor::CodeMode::Systematic,
        "systematic mode is the default"
    );
    let mut leg_opts = RqRunOptions::default();
    leg_opts.pr.code_mode = polyraptor_repro::polyraptor::CodeMode::Legacy;
    let a = run_churn_rq(&sc, &fabric, &sys_opts);
    let b = run_churn_rq(&sc, &fabric, &leg_opts);
    assert_eq!(a.timeouts + b.timeouts, 0, "zero timeouts in both modes");
    let fingerprint = |rep: &ChurnReport| -> Vec<(u32, u64, u64, usize)> {
        rep.flows
            .iter()
            .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos(), f.bytes))
            .collect()
    };
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "code mode must not perturb packet-level results"
    );
    assert_eq!(a.fabric, b.fabric);
    assert_eq!(a.fault_instants, b.fault_instants);
}

#[test]
fn shared_risk_placement_compares_under_identical_churn() {
    // Same seed, same fault plan, different placement: both complete;
    // the spread placement never lets one event strand two replicas of
    // one session (asserted structurally in workload::churn's unit
    // tests — here we assert the run-level contract holds for both).
    let sc = scenario();
    let mut spread = sc;
    spread.shared_risk_placement = true;
    let fabric = Fabric::small();
    let a = run_churn_rq(&sc, &fabric, &RqRunOptions::default());
    let b = run_churn_rq(&spread, &fabric, &RqRunOptions::default());
    assert_eq!(a.flows.len(), b.flows.len());
    assert_eq!(a.timeouts + b.timeouts, 0);
    assert_eq!(
        a.fault_instants, b.fault_instants,
        "placement must not perturb the fault process"
    );
}
