//! Integration test for the fabric-dynamics subsystem: a deterministic
//! mid-transfer core-switch failure on the paper's 250-host fat-tree.
//!
//! Polyraptor must complete every session (reroute + coded repair,
//! zero timeouts) while the TCP baseline shows timeout-driven tail
//! inflation; and the whole experiment must be byte-identical across
//! runs with the same seed. Mirrors `examples/fabric_faults.rs` at a
//! test-friendly object size.

use polyraptor_repro::workload::{
    op_results, run_fault_rq, run_fault_tcp, Fabric, FaultRunReport, FaultScenario, RqRunOptions,
    TcpRunOptions,
};

const SESSIONS: usize = 6;
const OBJECT_BYTES: usize = 256 << 10;

fn scenario() -> FaultScenario {
    FaultScenario::fig1_failure(SESSIONS, OBJECT_BYTES, 42)
}

fn paper_fabric() -> Fabric {
    let fabric = Fabric::paper();
    assert_eq!(fabric.host_count(), 250, "the paper's 250-server fabric");
    fabric
}

#[test]
fn core_failure_polyraptor_completes_while_tcp_tail_inflates() {
    let fabric = paper_fabric();
    let sc = scenario();

    let rq = run_fault_rq(&sc, &fabric, &RqRunOptions::default());
    // The failure really struck mid-transfer...
    let fail_at = rq.fail_at.expect("faulted run has a failure instant");
    assert!(
        rq.in_flight_at(fail_at) >= 1,
        "failure must catch at least one session mid-transfer"
    );
    // ...really killed traffic and really rerouted...
    assert!(rq.fabric.lost_to_fault > 0, "core death must cost packets");
    assert_eq!(rq.fabric.reroutes, 1);
    assert!(rq.fabric.trees_repaired > 0, "multicast trees repaired");
    // ...and every session still completed at every replica (the
    // collector asserts per-endpoint completion; spot-check the shape).
    assert_eq!(rq.flows.len(), SESSIONS * 3, "one flow per replica");
    assert_eq!(op_results(&rq.flows, OBJECT_BYTES).len(), SESSIONS);
    assert_eq!(rq.timeouts, 0, "coded repair needs no timeouts");
    // Batched sweep recovery: the post-fault completion tail is bounded
    // by the 25 ms control-plane convergence window plus a near-healthy
    // transfer remainder — not paced by the 1 ms keep-alive sweep. The
    // legacy single-nudge sweep needed ~147 ms at this scale (~450 ms at
    // the paper's 1 MB objects); 60 ms leaves slack without ever letting
    // a sweep-paced tail sneak back in.
    let recovery = rq.recovery().expect("failure caught flows in flight");
    assert!(
        recovery.max_ns < 60_000_000,
        "post-fault tail must not be sweep-paced (got {:.1} ms)",
        recovery.max_ns as f64 / 1e6
    );

    let tcp = run_fault_tcp(&sc, &fabric, &TcpRunOptions::default());
    let tcp_healthy = run_fault_tcp(&sc.healthy(), &fabric, &TcpRunOptions::default());
    assert!(
        tcp.timeouts > tcp_healthy.timeouts,
        "blackholed ECMP-pinned flows must eat retransmission timeouts \
         ({} faulted vs {} healthy)",
        tcp.timeouts,
        tcp_healthy.timeouts
    );
    // Timeout-driven tail inflation: the TCP makespan grows by RTO-floor
    // scale (the 200 ms timer arms at the last pre-failure ack, so the
    // net inflation lands slightly under it) — orders of magnitude above
    // any congestion effect — while Polyraptor's recovery is pull-paced,
    // not timeout-paced.
    // Saturating: if a regression ever made the faulted run finish no
    // slower than healthy, this must read 0 and fail below, not wrap.
    let inflation_ns = tcp
        .makespan()
        .as_nanos()
        .saturating_sub(tcp_healthy.makespan().as_nanos());
    assert!(
        inflation_ns >= 150_000_000,
        "TCP tail must inflate at RTO-floor scale (got {:.1} ms)",
        inflation_ns as f64 / 1e6
    );
    assert!(
        tcp.makespan() > rq.makespan(),
        "Polyraptor must beat the timeout-bound baseline through the failure"
    );
}

#[test]
fn fault_experiment_is_byte_identical_across_runs() {
    let fabric = paper_fabric();
    let sc = scenario();
    let fingerprint = |rep: &FaultRunReport| -> Vec<(u32, u64, u64, usize)> {
        rep.flows
            .iter()
            .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos(), f.bytes))
            .collect()
    };

    let a = run_fault_rq(&sc, &fabric, &RqRunOptions::default());
    let b = run_fault_rq(&sc, &fabric, &RqRunOptions::default());
    assert_eq!(a.victim, b.victim);
    assert_eq!(a.fail_at, b.fail_at);
    assert_eq!(
        a.fabric, b.fabric,
        "identical fabric stats, field for field"
    );
    assert_eq!(fingerprint(&a), fingerprint(&b), "identical per-flow stats");

    let ta = run_fault_tcp(&sc, &fabric, &TcpRunOptions::default());
    let tb = run_fault_tcp(&sc, &fabric, &TcpRunOptions::default());
    assert_eq!(ta.timeouts, tb.timeouts);
    assert_eq!(ta.fabric, tb.fabric);
    assert_eq!(fingerprint(&ta), fingerprint(&tb));
}
