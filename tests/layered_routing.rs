//! Integration tests for FatPaths-style layered routing end to end:
//! the Jellyfish link-fault scenario where minimal-only routing pays a
//! completion-tail penalty that ≥ 2 layers remove, byte-identical per
//! seed, plus the per-layer fabric accounting.

use polyraptor_repro::netsim::{FaultMix, RoutingPolicy};
use polyraptor_repro::workload::{run_churn_rq, ChurnReport, ChurnScenario, Fabric, RqRunOptions};

/// The sweep example's smoke shape (deg-4 Jellyfish) at a seed pair
/// whose links-only fault draw severs minimal-unique paths of
/// in-flight fetches — the low-path-diversity case layered routing
/// exists for. (The seeds pin the draw; the tie-break rekey and
/// per-node RNG streams of the sharded event loop moved the old
/// draw, so the pinned seeds moved with it.)
fn jellyfish() -> Fabric {
    Fabric::Jellyfish {
        switches: 12,
        net_degree: 4,
        hosts_per_switch: 2,
        rate_bps: 1_000_000_000,
        prop_ns: 10_000,
        seed: 7,
    }
}

fn link_churn() -> ChurnScenario {
    let mut sc = ChurnScenario::ten_event(6, 1 << 20, 15);
    sc.fault_events = 10;
    sc.mix = FaultMix::links_only();
    sc
}

fn run(layers: usize) -> ChurnReport {
    let opts = RqRunOptions {
        policy: if layers == 1 {
            RoutingPolicy::minimal()
        } else {
            RoutingPolicy::layered(layers, 7)
        },
        ..Default::default()
    };
    run_churn_rq(&link_churn(), &jellyfish(), &opts)
}

#[test]
fn layers_cut_the_link_fault_completion_tail_on_jellyfish() {
    // Minimal-only: a link failure blackholes flows whose only minimal
    // path crosses it for the whole convergence window, inflating the
    // completion tail. With >= 2 layers the forwarding plane holds live
    // alternatives (and flows re-assign away from dead layers), so the
    // same seeded fault plan completes measurably faster.
    let minimal = run(1).completion();
    for layers in [2usize, 3] {
        let layered = run(layers).completion();
        assert!(
            layered.max_ns < minimal.max_ns,
            "{layers} layers must beat minimal-only under link faults \
             ({} vs {} ns tail)",
            layered.max_ns,
            minimal.max_ns
        );
    }
    // The improvement is substantial at this draw, not marginal.
    let two = run(2).completion();
    assert!(
        minimal.max_ns as f64 / two.max_ns as f64 > 1.5,
        "expected a >1.5x tail cut ({} vs {} ns)",
        minimal.max_ns,
        two.max_ns
    );
}

#[test]
fn layered_churn_is_byte_identical_per_seed() {
    let fingerprint = |rep: &ChurnReport| -> Vec<(u32, u64, u64, usize)> {
        rep.flows
            .iter()
            .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos(), f.bytes))
            .collect()
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.fabric, b.fabric, "identical fabric stats field for field");
    assert_eq!(fingerprint(&a), fingerprint(&b), "identical per-flow stats");
}

#[test]
fn layered_run_accounts_utilisation_per_layer() {
    let rep = run(4);
    let used = rep
        .fabric
        .layer_forwarded
        .iter()
        .filter(|&&c| c > 0)
        .count();
    assert!(
        used >= 2,
        "flow hashing must spread fetches over >= 2 of 4 layers (used {used})"
    );
    assert_eq!(
        rep.fabric.layer_forwarded[4..].iter().sum::<u64>(),
        0,
        "slots past the policy's layer count stay empty"
    );
    // Minimal-only runs keep everything in slot 0.
    let minimal = run(1);
    assert_eq!(
        minimal.fabric.layer_forwarded[1..].iter().sum::<u64>(),
        0,
        "single-layer policy forwards only on layer 0"
    );
    assert_eq!(minimal.fabric.layer_reassignments, 0);
}
