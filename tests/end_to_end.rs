//! Cross-crate integration tests: the full stack (codec → protocol →
//! fabric → workload) exercised end to end.

use polyraptor_repro::netsim::{SimConfig, SimTime, Simulator, Topology};
use polyraptor_repro::polyraptor::{
    start_token, MulticastPull, PolyraptorAgent, PrConfig, SessionId, SessionSpec,
};
use polyraptor_repro::workload::{
    foreground_goodputs, op_results, run_incast_rq, run_incast_tcp, run_storage_rq,
    run_storage_tcp, Fabric, IncastScenario, Pattern, RankCurve, RqRunOptions, StorageScenario,
    TcpRunOptions,
};

fn small_scenario(pattern: Pattern, replicas: usize, seed: u64) -> StorageScenario {
    StorageScenario {
        sessions: 20,
        object_bytes: 256 << 10,
        replicas,
        lambda_per_host: polyraptor_repro::workload::scenario::PAPER_LAMBDA_PER_HOST,
        background_frac: 0.2,
        pattern,
        seed,
        normalize_load: true,
        shared_risk_placement: false,
    }
}

/// A real-decoder (no counting shortcut) multicast write on a fat-tree:
/// every replica must reconstruct the exact object bytes.
#[test]
fn real_oracle_multicast_write() {
    let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
    let hosts = topo.hosts().to_vec();
    let cfg = PrConfig::real_oracle();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(11));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }
    let (sender, receivers) = (hosts[0], vec![hosts[4], hosts[8], hosts[12]]);
    let groups: Vec<_> = (0..4)
        .map(|_| sim.register_group(sender, &receivers))
        .collect();
    let spec = SessionSpec::multicast(
        SessionId(5),
        300_000,
        sender,
        receivers.clone(),
        groups,
        SimTime::ZERO,
    );
    for &h in spec.senders.iter().chain(&spec.receivers) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
    sim.run_to_completion();
    // The real oracle asserts decoded bytes internally; here we check
    // every replica finished and at a sane rate.
    for &r in &receivers {
        let rec = &sim.agent(r).records[0];
        assert_eq!(rec.data_len, 300_000);
        assert!(rec.goodput_gbps() > 0.4, "goodput {}", rec.goodput_gbps());
    }
}

/// Real-decoder multi-source fetch: symbols from three independent
/// senders must assemble into one decodable object (no duplicate ESIs).
#[test]
fn real_oracle_multi_source_fetch() {
    let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
    let hosts = topo.hosts().to_vec();
    let cfg = PrConfig::real_oracle();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(13));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }
    let spec = SessionSpec::multi_source(
        SessionId(9),
        400_000,
        vec![hosts[5], hosts[9], hosts[13]],
        hosts[0],
        SimTime::ZERO,
    );
    for &h in spec.senders.iter().chain(&spec.receivers) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
    sim.run_to_completion();
    let rec = &sim.agent(hosts[0]).records[0];
    assert_eq!(rec.data_len, 400_000);
    assert!(rec.goodput_gbps() > 0.4);
}

/// The legacy (solve-based) code construction still works end to end —
/// the A/B baseline for the systematic fast path. Same fabric and
/// session shape as `real_oracle_multicast_write`, which runs in the
/// default systematic mode: every replica must reconstruct the exact
/// object bytes in both.
#[test]
fn real_oracle_legacy_code_multicast_write() {
    let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
    let hosts = topo.hosts().to_vec();
    let cfg = PrConfig::real_oracle_legacy_code();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(11));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }
    let (sender, receivers) = (hosts[0], vec![hosts[4], hosts[8], hosts[12]]);
    let groups: Vec<_> = (0..4)
        .map(|_| sim.register_group(sender, &receivers))
        .collect();
    let spec = SessionSpec::multicast(
        SessionId(5),
        300_000,
        sender,
        receivers.clone(),
        groups,
        SimTime::ZERO,
    );
    for &h in spec.senders.iter().chain(&spec.receivers) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
    sim.run_to_completion();
    for &r in &receivers {
        let rec = &sim.agent(r).records[0];
        assert_eq!(rec.data_len, 300_000);
        assert!(rec.goodput_gbps() > 0.4, "goodput {}", rec.goodput_gbps());
    }
}

/// Under the counting oracle the code mode touches no packet: a seeded
/// storage run is byte-identical between systematic (default) and
/// legacy A/B configurations.
#[test]
fn counting_runs_are_code_mode_invariant() {
    let sc = small_scenario(Pattern::Write, 3, 21);
    let sys = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    let mut leg_opts = RqRunOptions::default();
    leg_opts.pr.code_mode = polyraptor_repro::polyraptor::CodeMode::Legacy;
    let leg = run_storage_rq(&sc, &Fabric::small(), &leg_opts);
    assert_eq!(sys.len(), leg.len());
    for (x, y) in sys.iter().zip(&leg) {
        assert_eq!(x.session, y.session);
        assert_eq!(x.start, y.start);
        assert_eq!(
            x.finish, y.finish,
            "code mode perturbed session {}",
            x.session
        );
    }
}

/// Determinism across identical runs — the simulator's contract.
#[test]
fn identical_seeds_identical_results() {
    let sc = small_scenario(Pattern::Write, 3, 21);
    let a = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    let b = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.session, y.session);
        assert_eq!(x.start, y.start);
        assert_eq!(
            x.finish, y.finish,
            "nondeterminism in session {}",
            x.session
        );
    }
}

/// Different seeds must actually change the run.
#[test]
fn different_seeds_differ() {
    let a = run_storage_rq(
        &small_scenario(Pattern::Write, 3, 1),
        &Fabric::small(),
        &RqRunOptions::default(),
    );
    let b = run_storage_rq(
        &small_scenario(Pattern::Write, 3, 2),
        &Fabric::small(),
        &RqRunOptions::default(),
    );
    assert!(a.iter().zip(&b).any(|(x, y)| x.finish != y.finish));
}

/// Figure-1a shape at test scale: RQ replication flows beat TCP
/// multi-unicast flows, which are capped near uplink/3.
#[test]
fn fig1a_shape_holds_at_small_scale() {
    let sc = small_scenario(Pattern::Write, 3, 5);
    let rq = RankCurve::new(foreground_goodputs(&run_storage_rq(
        &sc,
        &Fabric::small(),
        &RqRunOptions::default(),
    )));
    let tcp = RankCurve::new(foreground_goodputs(&run_storage_tcp(
        &sc,
        &Fabric::small(),
        &TcpRunOptions::default(),
    )));
    assert!(
        rq.median() > 1.5 * tcp.median(),
        "RQ median {} should clearly beat TCP multi-unicast median {}",
        rq.median(),
        tcp.median()
    );
    assert!(
        tcp.at(0) < 0.45,
        "TCP 3-replica flows are capped near uplink/3"
    );
}

/// Figure-1c shape: Polyraptor keeps Incast goodput near line rate where
/// TCP collapses.
#[test]
fn incast_eliminated_for_rq_only() {
    let sc = IncastScenario {
        senders: 12,
        block_bytes: 256 << 10,
        seed: 3,
    };
    let rq = run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    let tcp = run_incast_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
    assert!(rq > 0.7, "RQ incast goodput {rq}");
    assert!(tcp < 0.2, "TCP should collapse, got {tcp}");
}

/// No packet is ever dropped in an NDP-configured Polyraptor run —
/// overflow becomes trimmed headers instead (the Incast-free mechanism).
#[test]
fn ndp_fabric_never_drops() {
    let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
    let hosts = topo.hosts().to_vec();
    let cfg = PrConfig::paper_default();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(17));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }
    // Hard incast: 12 senders blast one receiver simultaneously.
    let spec = SessionSpec::multi_source(
        SessionId(1),
        2 << 20,
        hosts[1..13].to_vec(),
        hosts[0],
        SimTime::ZERO,
    );
    for &h in spec.senders.iter().chain(&spec.receivers) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
    sim.run_to_completion();
    assert_eq!(sim.stats().dropped, 0, "trimming fabric must not drop");
    assert!(sim.stats().trimmed > 0, "overload must trim");
    assert_eq!(sim.agent(hosts[0]).records.len(), 1);
}

/// Multicast pull policies: both complete; strict aggregation is never
/// faster on the op metric.
#[test]
fn multicast_policies_both_complete() {
    let sc = small_scenario(Pattern::Write, 3, 9);
    let any = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    let mut strict_opts = RqRunOptions::default();
    strict_opts.pr.multicast = MulticastPull::All;
    let all = run_storage_rq(&sc, &Fabric::small(), &strict_opts);
    let any_ops = op_results(&any, sc.object_bytes);
    let all_ops = op_results(&all, sc.object_bytes);
    assert_eq!(any_ops.len(), all_ops.len());
    let mean_any = polyraptor_repro::workload::mean(
        &any_ops.iter().map(|o| o.goodput_gbps()).collect::<Vec<_>>(),
    );
    let mean_all = polyraptor_repro::workload::mean(
        &all_ops.iter().map(|o| o.goodput_gbps()).collect::<Vec<_>>(),
    );
    assert!(
        mean_any >= mean_all * 0.9,
        "pull coalescing should not lose to strict aggregation ({mean_any} vs {mean_all})"
    );
}

/// Read pattern under TCP: partitioned fetch emulation completes and
/// produces one flow per replica.
#[test]
fn tcp_partitioned_fetch_completes() {
    let sc = small_scenario(Pattern::Read, 3, 4);
    let res = run_storage_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
    let fg: Vec<_> = res.iter().filter(|r| !r.background).collect();
    // Each foreground op yields 3 stripe flows.
    let ops = op_results(&res, sc.object_bytes);
    assert_eq!(ops.len(), 20);
    assert!(fg.len() > 20);
}

/// Mixed roles: one host acting simultaneously as sender, receiver and
/// replica across overlapping sessions.
#[test]
fn overlapping_roles_on_one_host() {
    let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
    let hosts = topo.hosts().to_vec();
    let cfg = PrConfig::paper_default();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(23));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }
    let pivot = hosts[0];
    let specs = vec![
        SessionSpec::unicast(SessionId(1), 200_000, pivot, hosts[5], SimTime::ZERO),
        SessionSpec::unicast(
            SessionId(2),
            200_000,
            hosts[9],
            pivot,
            SimTime::from_micros(50),
        ),
        SessionSpec::multi_source(
            SessionId(3),
            200_000,
            vec![hosts[5], hosts[9]],
            hosts[13],
            SimTime::from_micros(100),
        ),
    ];
    for spec in &specs {
        for &h in spec.senders.iter().chain(&spec.receivers) {
            sim.agent_mut(h).install(spec.clone());
            sim.schedule_timer(h, spec.start, start_token(spec.id));
        }
    }
    sim.run_to_completion();
    assert_eq!(sim.agent(hosts[5]).records.len(), 1);
    assert_eq!(sim.agent(pivot).records.len(), 1);
    assert_eq!(sim.agent(hosts[13]).records.len(), 1);
}
