//! Smoke tests for the `examples/` scenarios: every example's core path
//! (one small transfer per scenario type) must complete — and complete
//! deterministically — under the facade crate. Scales are reduced so
//! the whole file runs in seconds; the examples themselves remain the
//! human-readable, paper-scale versions.

use polyraptor_repro::netsim::{NodeKind, SimConfig, SimTime, Simulator, Topology};
use polyraptor_repro::polyraptor::{
    start_token, PolyraptorAgent, PrConfig, SessionId, SessionSpec,
};
use polyraptor_repro::rq::{Decoder, Encoder};
use polyraptor_repro::workload::{
    run_fault_rq, run_hotspot_rq, run_incast_rq, run_storage_rq, Fabric, FaultScenario,
    HotspotScenario, IncastScenario, Pattern, RqRunOptions, StorageScenario,
};

/// `examples/quickstart.rs` part 1: codec round-trip through 10% loss.
#[test]
fn quickstart_codec_roundtrip() {
    let object: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let encoder = Encoder::new(&object, 256).expect("encode");
    let k = encoder.params().k;
    let mut decoder = Decoder::new(encoder.params());
    let mut received = 0usize;
    for esi in 0..k as u32 {
        if esi % 10 != 3 {
            decoder.push(esi, encoder.symbol(esi));
            received += 1;
        }
    }
    let mut esi = k as u32;
    while received < k + 2 {
        decoder.push(esi, encoder.symbol(esi));
        esi += 1;
        received += 1;
    }
    assert_eq!(decoder.try_decode().expect("k+2 symbols decode"), object);
}

/// `examples/quickstart.rs` part 2: one unicast transfer over a 2-host
/// fabric with the real decoder in the loop.
fn quickstart_unicast_once() -> u64 {
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Host);
    let s = topo.add_node(NodeKind::Switch);
    let b = topo.add_node(NodeKind::Host);
    topo.connect(a, s, 1_000_000_000, 10_000);
    topo.connect(b, s, 1_000_000_000, 10_000);
    topo.compute_routes();

    let cfg = PrConfig::real_oracle();
    let mut sim = Simulator::new(topo, SimConfig::ndp(7));
    sim.set_agent(a, PolyraptorAgent::new(a, cfg, 1));
    sim.set_agent(b, PolyraptorAgent::new(b, cfg, 2));

    let spec = SessionSpec::unicast(SessionId(0), 64 * 1440, a, b, SimTime::ZERO);
    sim.agent_mut(a).install(spec.clone());
    sim.agent_mut(b).install(spec.clone());
    sim.schedule_timer(a, spec.start, start_token(spec.id));
    sim.schedule_timer(b, spec.start, start_token(spec.id));
    sim.run_to_completion();

    let rec = &sim.agent(b).records[0];
    assert_eq!(rec.data_len, 64 * 1440);
    assert!(rec.goodput_gbps() > 0.5, "goodput {}", rec.goodput_gbps());
    rec.duration_ns()
}

#[test]
fn quickstart_unicast_transfer_is_deterministic() {
    assert_eq!(quickstart_unicast_once(), quickstart_unicast_once());
}

/// `examples/distributed_storage.rs`: replicated writes under
/// background traffic, at 6-session scale.
#[test]
fn distributed_storage_write_completes_deterministically() {
    let sc = StorageScenario {
        sessions: 6,
        object_bytes: 128 << 10,
        replicas: 3,
        lambda_per_host: polyraptor_repro::workload::scenario::PAPER_LAMBDA_PER_HOST,
        background_frac: 0.2,
        pattern: Pattern::Write,
        seed: 42,
        normalize_load: true,
        shared_risk_placement: false,
    };
    let a = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert!(!a.is_empty());
    for r in &a {
        assert!(r.finish > r.start, "session {} never finished", r.session);
    }
    let b = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            (x.session, x.start, x.finish),
            (y.session, y.start, y.finish)
        );
    }
}

/// `examples/multi_source_fetch.rs`: one block fetched from three
/// replicas at once, bytes verified by the real oracle.
fn multi_source_fetch_once() -> u64 {
    let topo = Fabric::small().build();
    let hosts = topo.hosts().to_vec();
    let client = hosts[0];
    let replicas = vec![hosts[5], hosts[9], hosts[13]];
    let cfg = PrConfig::real_oracle();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(3));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }
    let bytes = 100_000;
    let spec = SessionSpec::multi_source(SessionId(1), bytes, replicas, client, SimTime::ZERO);
    for &h in spec.senders.iter().chain(spec.receivers.iter()) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
    sim.run_to_completion();
    let rec = &sim.agent(client).records[0];
    assert_eq!(rec.data_len, bytes);
    assert!(rec.goodput_gbps() > 0.4, "goodput {}", rec.goodput_gbps());
    rec.duration_ns()
}

#[test]
fn multi_source_fetch_is_deterministic() {
    assert_eq!(multi_source_fetch_once(), multi_source_fetch_once());
}

/// `examples/incast.rs`: synchronized many-to-one burst; Polyraptor
/// must stay near line rate at small scale too.
#[test]
fn incast_burst_completes_deterministically() {
    let sc = IncastScenario {
        senders: 4,
        block_bytes: 64 << 10,
        seed: 2,
    };
    let a = run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert!(a > 0.5, "incast goodput {a}");
    let b = run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(a.to_bits(), b.to_bits(), "incast run must be bit-identical");
}

/// `examples/fabric_faults.rs`: a core switch dies mid-transfer;
/// Polyraptor reroutes, repairs its trees, and completes every session,
/// bit-identically across runs.
#[test]
fn fabric_faults_scenario_completes_deterministically() {
    let sc = FaultScenario::fig1_failure(3, 64 << 10, 7);
    let a = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(a.flows.len(), 3 * 3, "one flow per replica, all complete");
    assert_eq!(a.fabric.reroutes, 1);
    assert!(a.fabric.trees_repaired > 0);
    let b = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(a.victim, b.victim);
    assert_eq!(a.fabric, b.fabric, "same seed ⇒ identical fabric stats");
    for (x, y) in a.flows.iter().zip(&b.flows) {
        assert_eq!(
            (x.session, x.start, x.finish, x.bytes),
            (y.session, y.start, y.finish, y.bytes)
        );
    }
}

/// The new topology generators carry real workloads: replicated writes
/// complete on an oversubscribed leaf–spine and on a Jellyfish random
/// graph exactly as they do on the fat-tree.
#[test]
fn storage_writes_complete_on_leaf_spine_and_jellyfish() {
    let sc = StorageScenario {
        sessions: 6,
        object_bytes: 64 << 10,
        replicas: 3,
        lambda_per_host: polyraptor_repro::workload::scenario::PAPER_LAMBDA_PER_HOST,
        background_frac: 0.0,
        pattern: Pattern::Write,
        seed: 5,
        normalize_load: true,
        shared_risk_placement: false,
    };
    for fabric in [Fabric::small_leaf_spine(), Fabric::small_jellyfish()] {
        let results = run_storage_rq(&sc, &fabric, &RqRunOptions::default());
        assert_eq!(results.len(), 18, "all replicas complete on {fabric:?}");
        for r in &results {
            assert!(r.goodput_gbps() > 0.0);
        }
    }
}

/// `examples/hotspot.rs`: transfers over a partially degraded fabric
/// with sprayed routing.
#[test]
fn hotspot_transfers_complete_deterministically() {
    let sc = HotspotScenario {
        transfers: 4,
        object_bytes: 128 << 10,
        degraded_frac: 0.3,
        degraded_rate_frac: 0.1,
        seed: 11,
    };
    let a = run_hotspot_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    assert_eq!(a.len(), 4);
    for r in &a {
        assert!(r.goodput_gbps() > 0.0);
    }
    let b = run_hotspot_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.goodput_gbps().to_bits(), y.goodput_gbps().to_bits());
    }
}
