//! Integration contract for the telemetry layer: recording a run must
//! never change it.
//!
//! The recorder hooks the simulator's event loop (bucket closure is
//! lazy, probe events never enter the heap, and no RNG draws happen on
//! behalf of telemetry), so byte-identity per seed is structural — but
//! this test pins it at workload scale across several seeds, on the
//! exact churn runner the `fabric_faults --churn --telemetry` example
//! uses. It also checks the recorded artefacts have the advertised
//! shape: fault + reroute annotations, per-session open/close spans,
//! time-series buckets, and exporters that actually emit them.

use polyraptor_repro::netsim::SpanMark;
use polyraptor_repro::workload::{
    run_churn_rq, run_churn_tcp, ChurnReport, ChurnScenario, Fabric, RqRunOptions, TcpRunOptions,
    TelemetryOptions,
};

fn scenario(seed: u64) -> ChurnScenario {
    let mut sc = ChurnScenario::ten_event(6, 1 << 20, seed);
    sc.fault_events = 12;
    sc
}

/// Everything observable about a run except the telemetry itself.
fn fingerprint(rep: &ChurnReport) -> (Vec<(u32, u64, u64, u64)>, String) {
    let flows = rep
        .flows
        .iter()
        .map(|f| {
            (
                f.session,
                f.bytes as u64,
                f.start.as_nanos(),
                f.finish.as_nanos(),
            )
        })
        .collect();
    (flows, format!("{:?}", rep.fabric))
}

#[test]
fn recorder_on_is_byte_identical_to_recorder_off_across_seeds() {
    let fabric = Fabric::small();
    for seed in [1u64, 2, 5, 9] {
        let sc = scenario(seed);
        let off = run_churn_rq(&sc, &fabric, &RqRunOptions::default());
        assert!(off.telemetry.is_none(), "telemetry is off by default");
        let opts = RqRunOptions {
            telemetry: TelemetryOptions::enabled_default(),
            ..Default::default()
        };
        let on = run_churn_rq(&sc, &fabric, &opts);
        assert!(on.telemetry.is_some(), "enabled run returns a recording");
        assert_eq!(
            fingerprint(&off),
            fingerprint(&on),
            "recording perturbed the run for seed {seed}"
        );
    }
}

#[test]
fn tcp_runner_is_also_unperturbed_by_recording() {
    let fabric = Fabric::small();
    let sc = scenario(2);
    let off = run_churn_tcp(&sc, &fabric, &TcpRunOptions::default());
    let opts = TcpRunOptions {
        telemetry: TelemetryOptions::enabled_default(),
        ..Default::default()
    };
    let on = run_churn_tcp(&sc, &fabric, &opts);
    assert_eq!(fingerprint(&off), fingerprint(&on));
    let t = on.telemetry.expect("enabled run records");
    assert!(!t.recorder.buckets().is_empty());
}

#[test]
fn recorded_churn_has_annotations_spans_and_exportable_series() {
    let fabric = Fabric::small();
    let sc = scenario(2);
    let opts = RqRunOptions {
        telemetry: TelemetryOptions::enabled_default(),
        ..Default::default()
    };
    let rep = run_churn_rq(&sc, &fabric, &opts);
    let t = rep.telemetry.expect("enabled run records");

    // Time series: buckets cover the run and the CSV exporter emits
    // one row per bucket plus the header.
    let buckets = t.recorder.buckets();
    assert!(!buckets.is_empty());
    assert_eq!(t.fabric_series_csv().lines().count(), buckets.len() + 1);
    let delivered: u64 = buckets.iter().map(|b| b.delivered).sum();
    assert_eq!(
        delivered, rep.fabric.delivered,
        "bucket deltas must sum to the run totals"
    );

    // Annotations: the churn plan injects faults and triggers reroutes.
    let cats: Vec<&str> = t
        .recorder
        .annotations()
        .iter()
        .map(|a| a.event.category())
        .collect();
    assert!(cats.contains(&"fault"), "faults annotated: {cats:?}");
    assert!(cats.contains(&"reroute"), "reroutes annotated: {cats:?}");

    // Spans: each fetch session opens and closes exactly once at its
    // client, and the marks are time-ordered.
    let opens = t.spans.iter().filter(|s| s.mark == SpanMark::Open).count();
    let closes = t.spans.iter().filter(|s| s.mark == SpanMark::Close).count();
    assert_eq!(opens, sc.sessions);
    assert_eq!(closes, sc.sessions);
    assert!(
        t.spans.windows(2).all(|w| w[0].at <= w[1].at),
        "spans sorted by time"
    );

    // The Chrome trace parses far enough to contain both the
    // annotation instants and the session spans.
    let trace = t.trace_json();
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    assert!(trace.contains("\"cat\":\"fault\""));
    assert!(trace.contains("\"cat\":\"reroute\""));
    assert!(trace.contains("\"cat\":\"span\""));
    assert!(trace.contains("fabric rates"));
}
