//! The sharded event loop's headline contract, end to end: a churn
//! soak (all four fault classes, repairs, re-targeting) produces
//! byte-identical results at every shard count. The event tie-break
//! key `(time, rank, per-node seq)` is a pure function of simulated
//! causality, so the serial loop and conservative-window shard
//! workers replay the same total order no matter how events are
//! distributed — fingerprints at 1/2/4 shards must match field for
//! field on all three topology families.

use polyraptor_repro::workload::{run_churn_rq, ChurnReport, ChurnScenario, Fabric, RqRunOptions};

/// Mixed churn: the default [`polyraptor_repro::netsim::FaultMix`]
/// draws links, flaps, switches, and host failures, so the identity
/// claim covers global fault application, reroutes, queue flushes,
/// and session re-targeting — not just steady-state forwarding.
fn scenario() -> ChurnScenario {
    let mut sc = ChurnScenario::ten_event(6, 1 << 20, 2);
    sc.fault_events = 12;
    sc
}

fn fingerprint(rep: &ChurnReport) -> Vec<(u32, u64, u64, usize)> {
    rep.flows
        .iter()
        .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos(), f.bytes))
        .collect()
}

fn run(fabric: &Fabric, shards: usize) -> ChurnReport {
    let opts = RqRunOptions {
        shards,
        ..Default::default()
    };
    run_churn_rq(&scenario(), fabric, &opts)
}

#[test]
fn sharded_run_byte_identical_to_serial() {
    let fabrics = [
        ("fat-tree", Fabric::small()),
        ("leaf-spine", Fabric::small_leaf_spine()),
        ("jellyfish", Fabric::small_jellyfish()),
    ];
    for (name, fabric) in fabrics {
        let serial = run(&fabric, 1);
        assert_eq!(
            serial.fabric.shard_epochs, 0,
            "{name}: one shard is the serial loop, no epochs"
        );
        for shards in [2usize, 4] {
            let sharded = run(&fabric, shards);
            // Everything except the shard-machinery counters matches
            // field for field: forwarding, drops, trims, faults,
            // reroutes, per-layer accounting, telemetry-visible stats.
            assert_eq!(
                serial.fabric.shard_invariant(),
                sharded.fabric.shard_invariant(),
                "{name}: fabric stats diverged at {shards} shards"
            );
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&sharded),
                "{name}: per-flow timings diverged at {shards} shards"
            );
            assert_eq!(serial.timeouts, sharded.timeouts, "{name}");
            assert_eq!(
                serial.stranded_sessions, sharded.stranded_sessions,
                "{name}"
            );
            assert_eq!(
                serial.retargeted_sessions, sharded.retargeted_sessions,
                "{name}"
            );
            assert_eq!(serial.retarget_symbols, sharded.retarget_symbols, "{name}");
            assert_eq!(serial.fault_instants, sharded.fault_instants, "{name}");
            // The sharded loop really ran sharded: epochs advanced and
            // traffic crossed shard boundaries (every family routes
            // through a spine/core another shard owns at this scale).
            assert!(
                sharded.fabric.shard_epochs > 0,
                "{name}: {shards}-shard run never opened an epoch"
            );
            assert!(
                sharded.fabric.cross_shard_packets > 0,
                "{name}: {shards}-shard run exchanged no cross-shard packets"
            );
        }
    }
}
