//! The TCP host agent: connection demux and timer management.

use std::collections::BTreeMap;

use netsim::{Agent, Ctx, NodeId, Packet};

use crate::receiver::TcpReceiver;
use crate::sender::{SenderPhase, TcpSender};
use crate::spec::{ConnRecord, ConnSpec, TcpConfig};
use crate::wire::{ConnId, TcpPayload};

const KIND_START: u64 = 1;
const KIND_RTO: u64 = 2;

/// Timer token for a connection's start — schedule at `spec.start` on
/// the **sender** host.
pub fn conn_start_token(conn: ConnId) -> u64 {
    KIND_START << 56 | u64::from(conn.0)
}

fn rto_token(conn: ConnId) -> u64 {
    KIND_RTO << 56 | u64::from(conn.0)
}

/// Per-host TCP agent carrying any number of connections.
pub struct TcpAgent {
    cfg: TcpConfig,
    node: NodeId,
    senders: BTreeMap<ConnId, TcpSender>,
    receivers: BTreeMap<ConnId, TcpReceiver>,
    /// Completed-connection records (receiver side).
    pub records: Vec<ConnRecord>,
}

impl TcpAgent {
    /// New agent for `node`.
    pub fn new(node: NodeId, cfg: TcpConfig) -> Self {
        Self {
            cfg,
            node,
            senders: BTreeMap::new(),
            receivers: BTreeMap::new(),
            records: Vec::new(),
        }
    }

    /// Install a connection this host participates in. Schedule
    /// [`conn_start_token`] at `spec.start` on the sender host.
    pub fn install(&mut self, spec: ConnSpec) {
        spec.validate();
        if spec.sender == self.node {
            self.senders.insert(spec.id, TcpSender::new(spec, self.cfg));
        } else if spec.receiver == self.node {
            self.receivers.insert(spec.id, TcpReceiver::new(spec));
        } else {
            panic!(
                "host {} is not an endpoint of conn {}",
                self.node.0, spec.id.0
            );
        }
    }

    /// Sender-side diagnostics for a connection.
    pub fn sender(&self, conn: ConnId) -> Option<&TcpSender> {
        self.senders.get(&conn)
    }

    /// Number of sender connections still moving data.
    pub fn active_sends(&self) -> usize {
        self.senders
            .values()
            .filter(|s| s.phase != SenderPhase::Done)
            .count()
    }

    /// Re-arm the simulator-facing RTO timer if the sender has one
    /// pending. The token fires at the deadline; stale timers (deadline
    /// moved) are filtered in `on_timer`.
    fn sync_rto_timer(sender: &TcpSender, conn: ConnId, ctx: &mut Ctx<TcpPayload>) {
        if let Some(deadline) = sender.rto_deadline {
            ctx.timer_at(deadline, rto_token(conn));
        }
    }
}

impl Agent<TcpPayload> for TcpAgent {
    fn on_packet(&mut self, pkt: Packet<TcpPayload>, ctx: &mut Ctx<TcpPayload>) {
        match pkt.payload {
            TcpPayload::Syn { conn } => {
                if let Some(r) = self.receivers.get_mut(&conn) {
                    r.on_syn(ctx);
                }
            }
            TcpPayload::SynAck { conn } => {
                if let Some(s) = self.senders.get_mut(&conn) {
                    s.on_synack(ctx);
                    Self::sync_rto_timer(s, conn, ctx);
                }
            }
            TcpPayload::Data { conn, seq, len, .. } => {
                if let Some(r) = self.receivers.get_mut(&conn) {
                    if r.on_data(seq, len, ctx) {
                        self.records.push(r.record());
                    }
                }
            }
            TcpPayload::Ack { conn, ack } => {
                if let Some(s) = self.senders.get_mut(&conn) {
                    s.on_ack(ack, ctx);
                    Self::sync_rto_timer(s, conn, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<TcpPayload>) {
        let conn = ConnId((token & 0xFFFF_FFFF) as u32);
        match token >> 56 {
            KIND_START => {
                let s = self
                    .senders
                    .get_mut(&conn)
                    .expect("start timer on host without sender state");
                s.open(ctx);
                Self::sync_rto_timer(s, conn, ctx);
            }
            KIND_RTO => {
                if let Some(s) = self.senders.get_mut(&conn) {
                    // Only act if this timer matches the live deadline;
                    // every ACK re-arms a fresh token and obsoletes
                    // earlier ones.
                    if s.rto_deadline == Some(ctx.now) {
                        s.on_rto(ctx);
                        Self::sync_rto_timer(s, conn, ctx);
                    }
                }
            }
            other => panic!("unknown TCP timer kind {other}"),
        }
    }
}

/// Convenience: install a connection at both endpoints and schedule its
/// start timer.
pub fn install_connection<S>(sim: &mut netsim::Simulator<TcpPayload, S>, spec: &ConnSpec)
where
    S: netsim::Agent<TcpPayload> + AsMut<TcpAgent>,
{
    let start = spec.start;
    let (snd, id) = (spec.sender, spec.id);
    sim.agent_mut(spec.sender).as_mut().install(spec.clone());
    sim.agent_mut(spec.receiver).as_mut().install(spec.clone());
    sim.schedule_timer(snd, start, conn_start_token(id));
}

impl AsMut<TcpAgent> for TcpAgent {
    fn as_mut(&mut self) -> &mut TcpAgent {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{NodeKind, SimConfig, SimTime, Simulator, Topology};

    fn linear_fabric() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        (t, a, b)
    }

    fn spec(bytes: u64, a: NodeId, b: NodeId) -> ConnSpec {
        ConnSpec {
            id: ConnId(1),
            session: 0,
            bytes,
            sender: a,
            receiver: b,
            start: SimTime::ZERO,
            background: false,
        }
    }

    #[test]
    fn clean_transfer_completes() {
        let (t, a, b) = linear_fabric();
        let mut sim = Simulator::new(t, SimConfig::classic(1));
        sim.set_agent(a, TcpAgent::new(a, TcpConfig::paper_default()));
        sim.set_agent(b, TcpAgent::new(b, TcpConfig::paper_default()));
        let sp = spec(1_000_000, a, b);
        install_connection(&mut sim, &sp);
        sim.run_to_completion();
        let rec = &sim.agent(b).records;
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].bytes, 1_000_000);
        // 1 MB at 1 Gbps ≥ 8 ms; with handshake + slow start, below 1 Gbps.
        let g = rec[0].goodput_gbps();
        assert!(g > 0.3 && g < 1.0, "goodput {g}");
        assert_eq!(sim.agent(a).active_sends(), 0);
    }

    #[test]
    fn short_flow_completes_quickly() {
        let (t, a, b) = linear_fabric();
        let mut sim = Simulator::new(t, SimConfig::classic(1));
        sim.set_agent(a, TcpAgent::new(a, TcpConfig::paper_default()));
        sim.set_agent(b, TcpAgent::new(b, TcpConfig::paper_default()));
        let sp = spec(5000, a, b);
        install_connection(&mut sim, &sp);
        sim.run_to_completion();
        let rec = &sim.agent(b).records;
        assert_eq!(rec.len(), 1);
        // 4 segments fit in IW10: handshake RTT + one data RTT ≈ 150 µs.
        assert!(
            rec[0].finish < SimTime::from_micros(300),
            "took {}",
            rec[0].finish
        );
    }

    #[test]
    fn loss_recovered_by_fast_retransmit() {
        // Two senders share one receiver port (2:1 overload): the
        // 10-packet drop-tail queue must overflow, and both transfers
        // must still complete via dup-ACK/RTO recovery.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let c = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(c, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        let mut cfg = SimConfig::classic(1);
        cfg.switch_queue = netsim::QueueConfig::DropTail { cap_pkts: 10 };
        let mut sim = Simulator::new(t, cfg);
        for h in [a, b, c] {
            sim.set_agent(h, TcpAgent::new(h, TcpConfig::paper_default()));
        }
        let mut sp1 = spec(3_000_000, a, b);
        let mut sp2 = spec(3_000_000, c, b);
        sp1.id = ConnId(1);
        sp2.id = ConnId(2);
        install_connection(&mut sim, &sp1);
        install_connection(&mut sim, &sp2);
        sim.run_to_completion();
        let recs = &sim.agent(b).records;
        assert_eq!(recs.len(), 2, "both transfers must complete despite drops");
        assert!(sim.stats().dropped > 0, "2:1 overload must drop");
        let rec1 = sim.agent(a).sender(ConnId(1)).unwrap().fast_retransmits
            + sim.agent(a).sender(ConnId(1)).unwrap().timeouts;
        let rec2 = sim.agent(c).sender(ConnId(2)).unwrap().fast_retransmits
            + sim.agent(c).sender(ConnId(2)).unwrap().timeouts;
        assert!(rec1 + rec2 > 0, "expected loss recovery to trigger");
    }

    #[test]
    fn deep_queue_no_loss_full_throughput() {
        let (t, a, b) = linear_fabric();
        let mut sim = Simulator::new(t, SimConfig::classic(1));
        sim.set_agent(a, TcpAgent::new(a, TcpConfig::paper_default()));
        sim.set_agent(b, TcpAgent::new(b, TcpConfig::paper_default()));
        let sp = spec(10_000_000, a, b);
        install_connection(&mut sim, &sp);
        sim.run_to_completion();
        let snd = sim.agent(a).sender(ConnId(1)).unwrap();
        assert_eq!(snd.timeouts, 0);
        assert_eq!(snd.fast_retransmits, 0);
        let g = sim.agent(b).records[0].goodput_gbps();
        assert!(g > 0.85, "long flow should approach line rate, got {g}");
    }
}
