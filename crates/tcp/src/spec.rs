//! Connection descriptors, configuration, and completion records.

use netsim::{NodeId, SimTime};

use crate::wire::ConnId;

/// Configuration of the TCP model.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment (payload) size in bytes. 1440 keeps full segments
    /// at 1504 wire bytes — identical wire efficiency to Polyraptor's
    /// symbol packets, so goodput comparisons are apples-to-apples.
    pub mss: u64,
    /// Initial congestion window in segments (IW10, RFC 6928).
    pub init_cwnd_segs: u64,
    /// Minimum retransmission timeout. The INET/Linux default of 200 ms
    /// is orders of magnitude above data-centre RTTs — the root cause of
    /// Incast collapse in Figure 1c.
    pub rto_min_ns: u64,
    /// Initial RTO before any RTT sample (SYN timeout).
    pub rto_init_ns: u64,
    /// RTO exponential-backoff cap.
    pub rto_max_ns: u64,
    /// Receiver advertised window in segments. INET's default is 14
    /// segments — it bounds in-flight data regardless of cwnd, which is
    /// what keeps the paper's long TCP flows from slow-start-overshooting
    /// shallow switch buffers.
    pub recv_window_segs: u64,
}

impl TcpConfig {
    /// The baseline the paper compares against ("standard unicast data
    /// transport" via INET defaults).
    pub fn paper_default() -> Self {
        Self {
            mss: 1440,
            init_cwnd_segs: 10,
            rto_min_ns: 200_000_000,    // 200 ms
            rto_init_ns: 1_000_000_000, // 1 s
            rto_max_ns: 60_000_000_000, // 60 s
            recv_window_segs: 14,       // INET advertisedWindow default
        }
    }

    /// A data-centre-tuned variant (ablation: how much of the collapse
    /// is RTOmin and the small advertised window?).
    pub fn dc_tuned() -> Self {
        Self {
            rto_min_ns: 1_000_000, // 1 ms
            recv_window_segs: 1 << 20,
            ..Self::paper_default()
        }
    }

    /// Wire size of a full data segment.
    pub fn data_packet_bytes(&self) -> u32 {
        self.mss as u32 + netsim::HEADER_BYTES
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One TCP connection to be simulated (installed at both endpoints).
#[derive(Debug, Clone)]
pub struct ConnSpec {
    /// Unique connection id.
    pub id: ConnId,
    /// Grouping tag: emulated Polyraptor sessions (multi-unicast
    /// replication, partitioned fetch) aggregate all connections sharing
    /// a tag into one logical transfer.
    pub session: u32,
    /// Stream length in bytes.
    pub bytes: u64,
    /// Sending host.
    pub sender: NodeId,
    /// Receiving host.
    pub receiver: NodeId,
    /// When the sender opens the connection.
    pub start: SimTime,
    /// Excluded from headline metrics if set.
    pub background: bool,
}

impl ConnSpec {
    /// The flow id this connection's data-path packets carry — the key
    /// the fabric's per-flow ECMP hashes on. Exposed so experiment code
    /// can predict where the fabric pins the connection (e.g. to aim a
    /// fault at a switch the baseline traffic actually crosses).
    pub fn data_flow(&self) -> netsim::FlowId {
        netsim::FlowId(u64::from(self.id.0) << 16 | 0x7C9)
    }

    /// Validate structural invariants.
    pub fn validate(&self) {
        assert!(self.bytes > 0, "empty TCP transfer");
        assert_ne!(
            self.sender, self.receiver,
            "loopback connections not modelled"
        );
    }
}

/// Receiver-side completion record for one connection.
#[derive(Debug, Clone)]
pub struct ConnRecord {
    /// The connection.
    pub conn: ConnId,
    /// Grouping tag (see [`ConnSpec::session`]).
    pub session: u32,
    /// Bytes transferred.
    pub bytes: u64,
    /// Connection start (spec time, includes handshake).
    pub start: SimTime,
    /// All bytes received.
    pub finish: SimTime,
    /// Background flag.
    pub background: bool,
}

impl ConnRecord {
    /// Goodput in Gbit/s over the connection's lifetime.
    pub fn goodput_gbps(&self) -> f64 {
        let ns = self.finish - self.start;
        assert!(ns > 0, "zero-duration connection");
        (self.bytes as f64 * 8.0) / ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_wire_parity_with_polyraptor() {
        let c = TcpConfig::paper_default();
        assert_eq!(c.data_packet_bytes(), 1504);
    }

    #[test]
    #[should_panic(expected = "empty TCP transfer")]
    fn empty_transfer_rejected() {
        ConnSpec {
            id: ConnId(1),
            session: 0,
            bytes: 0,
            sender: NodeId(0),
            receiver: NodeId(1),
            start: SimTime::ZERO,
            background: false,
        }
        .validate();
    }

    #[test]
    fn record_goodput() {
        let r = ConnRecord {
            conn: ConnId(1),
            session: 0,
            bytes: 1_000_000,
            start: SimTime::ZERO,
            finish: SimTime::from_millis(8),
            background: false,
        };
        assert!((r.goodput_gbps() - 1.0).abs() < 1e-9);
    }
}
