//! # `tcpsim` — TCP NewReno baseline transport
//!
//! The "standard unicast data transport" the paper compares Polyraptor
//! against (its OMNeT++ evaluation uses INET's TCP): slow start,
//! congestion avoidance, fast retransmit / NewReno fast recovery
//! (RFC 6582), retransmission timeout with exponential backoff and an
//! INET-default 200 ms RTO floor — the ingredient that produces the
//! classic Incast collapse of Figure 1c.
//!
//! Differences from a full TCP stack, all irrelevant to the measured
//! behaviour and noted in DESIGN.md: no FIN teardown (the application
//! knows the transfer length), immediate ACKs (no delayed-ACK timer),
//! unbounded receive window (hosts have plentiful memory), byte-exact
//! sequence space without wraparound.
//!
//! The paper's TCP *emulations* of Polyraptor's patterns — multi-unicast
//! replication (one copy per replica through the sender's access link)
//! and partitioned fetch (each replica sends `1/S` of the object) — are
//! built on this crate by `workload`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod receiver;
pub mod sender;
pub mod spec;
pub mod wire;

pub use agent::{conn_start_token, install_connection, TcpAgent};
pub use receiver::TcpReceiver;
pub use sender::{SenderPhase, TcpSender};
pub use spec::{ConnRecord, ConnSpec, TcpConfig};
pub use wire::{ConnId, TcpPayload};
