//! TCP wire model.
//!
//! A byte-stream abstraction sufficient for data-transfer simulation:
//! SYN/SYN-ACK handshake, data segments addressed by byte sequence,
//! cumulative ACKs. No FIN teardown — the application knows the transfer
//! length, which is how the paper's storage workloads behave.

use netsim::SimPayload;

/// Connection identifier (unique across the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// TCP packet payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpPayload {
    /// Connection request.
    Syn {
        /// Connection.
        conn: ConnId,
    },
    /// Connection accept.
    SynAck {
        /// Connection.
        conn: ConnId,
    },
    /// A data segment carrying stream bytes `[seq, seq + len)`.
    Data {
        /// Connection.
        conn: ConnId,
        /// First byte's sequence number.
        seq: u64,
        /// Payload bytes.
        len: u32,
        /// Retransmission flag (diagnostics only; receivers don't care).
        rtx: bool,
    },
    /// Cumulative acknowledgement: receiver has all bytes below `ack`.
    Ack {
        /// Connection.
        conn: ConnId,
        /// Next expected byte.
        ack: u64,
    },
}

impl TcpPayload {
    /// The connection this packet belongs to.
    pub fn conn(&self) -> ConnId {
        match self {
            TcpPayload::Syn { conn }
            | TcpPayload::SynAck { conn }
            | TcpPayload::Data { conn, .. }
            | TcpPayload::Ack { conn, .. } => *conn,
        }
    }
}

impl SimPayload for TcpPayload {
    fn is_control(&self) -> bool {
        !matches!(self, TcpPayload::Data { .. })
    }

    /// TCP has no notion of payload trimming: under an NDP queue a full
    /// data queue would *drop* TCP segments (which is also exactly what
    /// the drop-tail queues used in the TCP experiments do).
    fn trim(&self) -> Option<Self> {
        match self {
            TcpPayload::Data { .. } => None,
            other => Some(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_not_control_and_untrimmable() {
        let d = TcpPayload::Data {
            conn: ConnId(1),
            seq: 0,
            len: 1440,
            rtx: false,
        };
        assert!(!d.is_control());
        assert!(d.trim().is_none());
    }

    #[test]
    fn control_classified() {
        for p in [
            TcpPayload::Syn { conn: ConnId(1) },
            TcpPayload::SynAck { conn: ConnId(1) },
            TcpPayload::Ack {
                conn: ConnId(1),
                ack: 99,
            },
        ] {
            assert!(p.is_control());
            assert_eq!(p.trim().unwrap(), p);
            assert_eq!(p.conn(), ConnId(1));
        }
    }
}
