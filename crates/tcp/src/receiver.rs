//! TCP receiver: cumulative ACKs and out-of-order reassembly.

use std::collections::BTreeMap;

use netsim::{Ctx, Dest, FlowId, Packet, SimTime, HEADER_BYTES};

use crate::spec::{ConnRecord, ConnSpec};
use crate::wire::TcpPayload;

/// Receiver-side state for one connection.
pub struct TcpReceiver {
    /// The connection descriptor.
    pub spec: ConnSpec,
    rcv_nxt: u64,
    /// Out-of-order segments: start → end (coalesced).
    ooo: BTreeMap<u64, u64>,
    /// Completion time, once all bytes arrived.
    pub finished: Option<SimTime>,
    /// Duplicate (already-covered) segments seen — a loss/retransmission
    /// indicator for diagnostics.
    pub dup_segments: u64,
}

impl TcpReceiver {
    /// Fresh receiver for `spec`.
    pub fn new(spec: ConnSpec) -> Self {
        spec.validate();
        Self {
            spec,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            finished: None,
            dup_segments: 0,
        }
    }

    fn flow(&self) -> FlowId {
        FlowId(u64::from(self.spec.id.0) << 16 | 0xACE)
    }

    /// Handle a SYN: reply SYN-ACK (idempotent — SYN retransmissions get
    /// fresh SYN-ACKs).
    pub fn on_syn(&mut self, ctx: &mut Ctx<TcpPayload>) {
        ctx.send(Packet {
            src: self.spec.receiver,
            dst: Dest::Host(self.spec.sender),
            flow: self.flow(),
            size: HEADER_BYTES,
            payload: TcpPayload::SynAck { conn: self.spec.id },
        });
    }

    /// Handle a data segment; always answers with the current cumulative
    /// ACK (immediate ACKing — no delayed-ACK timer, see DESIGN.md).
    /// Returns `true` when the stream just completed.
    pub fn on_data(&mut self, seq: u64, len: u32, ctx: &mut Ctx<TcpPayload>) -> bool {
        let end = seq + u64::from(len);
        if end <= self.rcv_nxt {
            self.dup_segments += 1;
        } else if seq <= self.rcv_nxt {
            // In-order (possibly partially duplicate): advance.
            self.rcv_nxt = end;
            self.drain_ooo();
        } else {
            // Out of order: buffer and coalesce.
            self.insert_ooo(seq, end);
        }
        ctx.send(Packet {
            src: self.spec.receiver,
            dst: Dest::Host(self.spec.sender),
            flow: self.flow(),
            size: HEADER_BYTES,
            payload: TcpPayload::Ack {
                conn: self.spec.id,
                ack: self.rcv_nxt,
            },
        });
        if self.rcv_nxt >= self.spec.bytes && self.finished.is_none() {
            self.finished = Some(ctx.now);
            return true;
        }
        false
    }

    fn insert_ooo(&mut self, seq: u64, end: u64) {
        // Coalesce with any overlapping or adjacent ranges.
        let mut start = seq;
        let mut stop = end;
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=stop)
            .filter(|(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).expect("key just seen");
            start = start.min(s);
            stop = stop.max(e);
        }
        self.ooo.insert(start, stop);
    }

    fn drain_ooo(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
    }

    /// Bytes delivered in order so far.
    pub fn bytes_received(&self) -> u64 {
        self.rcv_nxt.min(self.spec.bytes)
    }

    /// Completion record (panics if not finished — call after `on_data`
    /// returned `true`).
    pub fn record(&self) -> ConnRecord {
        ConnRecord {
            conn: self.spec.id,
            session: self.spec.session,
            bytes: self.spec.bytes,
            start: self.spec.start,
            finish: self.finished.expect("connection not finished"),
            background: self.spec.background,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ConnId;
    use netsim::NodeId;

    fn spec(bytes: u64) -> ConnSpec {
        ConnSpec {
            id: ConnId(1),
            session: 0,
            bytes,
            sender: NodeId(0),
            receiver: NodeId(1),
            start: SimTime::ZERO,
            background: false,
        }
    }

    fn ctx() -> Ctx<TcpPayload> {
        // A scratch context; its queued sends are simply dropped here —
        // receiver unit tests only check reassembly bookkeeping.
        Ctx::detached(SimTime::from_micros(5), NodeId(1))
    }

    #[test]
    fn in_order_delivery() {
        let mut r = TcpReceiver::new(spec(3000));
        let mut c = ctx();
        assert!(!r.on_data(0, 1440, &mut c));
        assert!(!r.on_data(1440, 1440, &mut c));
        assert!(r.on_data(2880, 120, &mut c));
        assert_eq!(r.bytes_received(), 3000);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut r = TcpReceiver::new(spec(4320));
        let mut c = ctx();
        r.on_data(1440, 1440, &mut c); // hole at 0
        assert_eq!(r.bytes_received(), 0);
        r.on_data(2880, 1440, &mut c);
        assert_eq!(r.bytes_received(), 0);
        let done = r.on_data(0, 1440, &mut c); // hole fills; drains ooo
        assert!(done);
        assert_eq!(r.bytes_received(), 4320);
    }

    #[test]
    fn duplicates_counted() {
        let mut r = TcpReceiver::new(spec(2880));
        let mut c = ctx();
        r.on_data(0, 1440, &mut c);
        r.on_data(0, 1440, &mut c);
        assert_eq!(r.dup_segments, 1);
    }

    #[test]
    fn overlapping_ooo_coalesced() {
        let mut r = TcpReceiver::new(spec(10_000));
        let mut c = ctx();
        r.on_data(2000, 1000, &mut c);
        r.on_data(2500, 1000, &mut c); // overlaps previous
        r.on_data(3500, 500, &mut c); // adjacent
        assert_eq!(r.ooo.len(), 1);
        assert_eq!(r.ooo.get(&2000), Some(&4000));
    }
}
