//! TCP NewReno sender state machine.
//!
//! Implements the loss-recovery behaviour whose pathologies motivate the
//! paper: slow start, congestion avoidance, fast retransmit/fast recovery
//! with NewReno partial-ACK handling (RFC 6582), and a retransmission
//! timeout with exponential backoff floored at `rto_min` — the 200 ms
//! floor being what turns synchronized short flows into Incast collapse
//! (Figure 1c).

use netsim::{Ctx, Dest, FlowId, Packet, SimTime, HEADER_BYTES};

use crate::spec::{ConnSpec, TcpConfig};
use crate::wire::TcpPayload;

/// Sender connection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderPhase {
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Transferring data.
    Established,
    /// All bytes acknowledged.
    Done,
}

/// Sender-side state for one connection.
pub struct TcpSender {
    /// The connection descriptor.
    pub spec: ConnSpec,
    cfg: TcpConfig,
    /// Phase.
    pub phase: SenderPhase,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    srtt: Option<f64>,
    rttvar: f64,
    rto_ns: u64,
    backoff: u32,
    /// Deadline of the armed retransmission timer (None = disarmed).
    pub rto_deadline: Option<SimTime>,
    /// One timed segment for RTT sampling: (covers-up-to, sent-at).
    timed: Option<(u64, SimTime)>,
    /// Diagnostics.
    pub timeouts: u64,
    /// Diagnostics.
    pub fast_retransmits: u64,
    /// Diagnostics.
    pub segments_sent: u64,
}

impl TcpSender {
    /// Fresh sender for `spec`.
    pub fn new(spec: ConnSpec, cfg: TcpConfig) -> Self {
        spec.validate();
        Self {
            cfg,
            phase: SenderPhase::SynSent,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: (cfg.init_cwnd_segs * cfg.mss) as f64,
            ssthresh: f64::INFINITY,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto_ns: cfg.rto_init_ns,
            backoff: 0,
            rto_deadline: None,
            timed: None,
            timeouts: 0,
            fast_retransmits: 0,
            segments_sent: 0,
            spec,
        }
    }

    fn flow(&self) -> FlowId {
        // Stable per-connection flow id: per-flow ECMP pins one path.
        self.spec.data_flow()
    }

    /// Open the connection: transmit SYN and arm the SYN timeout.
    pub fn open(&mut self, ctx: &mut Ctx<TcpPayload>) {
        debug_assert_eq!(self.phase, SenderPhase::SynSent);
        ctx.send(Packet {
            src: self.spec.sender,
            dst: Dest::Host(self.spec.receiver),
            flow: self.flow(),
            size: HEADER_BYTES,
            payload: TcpPayload::Syn { conn: self.spec.id },
        });
        self.arm_rto(ctx.now);
    }

    /// SYN-ACK received: start the stream.
    pub fn on_synack(&mut self, ctx: &mut Ctx<TcpPayload>) {
        if self.phase != SenderPhase::SynSent {
            return; // duplicate SYN-ACK
        }
        self.phase = SenderPhase::Established;
        // The handshake gives the first RTT sample.
        self.sample_rtt(ctx.now.since(self.spec.start));
        self.backoff = 0;
        self.try_send(ctx);
    }

    /// Cumulative ACK received.
    pub fn on_ack(&mut self, ack: u64, ctx: &mut Ctx<TcpPayload>) {
        if self.phase != SenderPhase::Established {
            return;
        }
        if ack > self.snd_una {
            self.on_new_ack(ack, ctx);
        } else if ack == self.snd_una && self.snd_nxt > self.snd_una {
            self.on_dup_ack(ctx);
        }
        if self.snd_una >= self.spec.bytes {
            self.phase = SenderPhase::Done;
            self.rto_deadline = None;
        } else {
            self.try_send(ctx);
        }
    }

    fn on_new_ack(&mut self, ack: u64, ctx: &mut Ctx<TcpPayload>) {
        let mss = self.cfg.mss as f64;
        // RTT sample (Karn: `timed` is cleared on any retransmission).
        if let Some((covers, sent)) = self.timed {
            if ack >= covers {
                let sample = ctx.now.since(sent);
                self.sample_rtt(sample);
                self.timed = None;
            }
        }
        let newly = ack - self.snd_una;
        self.snd_una = ack;
        // After an RTO rolled snd_nxt back, ACKs of pre-timeout segments
        // can land beyond it; never let snd_nxt trail snd_una.
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        self.backoff = 0;

        if self.in_recovery {
            if ack >= self.recover {
                // Full ACK: leave recovery, deflate to ssthresh.
                self.in_recovery = false;
                self.cwnd = self.ssthresh.max(2.0 * mss);
                self.dupacks = 0;
            } else {
                // Partial ACK (NewReno): retransmit the next hole,
                // deflate by the amount acked, inflate by one MSS.
                self.retransmit_head(ctx);
                self.cwnd = (self.cwnd - newly as f64 + mss).max(2.0 * mss);
            }
        } else {
            self.dupacks = 0;
            if self.cwnd < self.ssthresh {
                self.cwnd += mss; // slow start
            } else {
                self.cwnd += mss * mss / self.cwnd; // congestion avoidance
            }
        }
        // Outstanding data remains: restart the timer; else disarm.
        if self.snd_una < self.snd_nxt {
            self.arm_rto(ctx.now);
        } else {
            self.rto_deadline = None;
        }
    }

    fn on_dup_ack(&mut self, ctx: &mut Ctx<TcpPayload>) {
        let mss = self.cfg.mss as f64;
        if self.in_recovery {
            self.cwnd += mss; // inflation per extra dup
            return;
        }
        self.dupacks += 1;
        if self.dupacks == 3 {
            // Fast retransmit + fast recovery.
            self.fast_retransmits += 1;
            let flight = (self.snd_nxt - self.snd_una) as f64;
            self.ssthresh = (flight / 2.0).max(2.0 * mss);
            self.recover = self.snd_nxt;
            self.in_recovery = true;
            self.retransmit_head(ctx);
            self.cwnd = self.ssthresh + 3.0 * mss;
        }
    }

    /// The retransmission timer fired (agent verifies the deadline).
    pub fn on_rto(&mut self, ctx: &mut Ctx<TcpPayload>) {
        match self.phase {
            SenderPhase::SynSent => {
                // Lost SYN: resend with backoff.
                self.timeouts += 1;
                self.backoff = (self.backoff + 1).min(10);
                ctx.send(Packet {
                    src: self.spec.sender,
                    dst: Dest::Host(self.spec.receiver),
                    flow: self.flow(),
                    size: HEADER_BYTES,
                    payload: TcpPayload::Syn { conn: self.spec.id },
                });
                self.arm_rto(ctx.now);
            }
            SenderPhase::Established => {
                self.timeouts += 1;
                let mss = self.cfg.mss as f64;
                let flight = (self.snd_nxt - self.snd_una) as f64;
                self.ssthresh = (flight / 2.0).max(2.0 * mss);
                self.cwnd = mss;
                self.in_recovery = false;
                self.dupacks = 0;
                self.timed = None;
                // Go-back-N: everything past snd_una is presumed lost.
                self.snd_nxt = self.snd_una;
                self.backoff = (self.backoff + 1).min(10);
                self.try_send(ctx);
                self.arm_rto(ctx.now);
            }
            SenderPhase::Done => {}
        }
    }

    /// Transmit as much new data as the send window (min of cwnd and the
    /// receiver's advertised window) allows.
    fn try_send(&mut self, ctx: &mut Ctx<TcpPayload>) {
        let mss = self.cfg.mss;
        let rwnd = (self.cfg.recv_window_segs * mss) as f64;
        loop {
            let inflight = self.snd_nxt - self.snd_una;
            if self.snd_nxt >= self.spec.bytes {
                return;
            }
            if (inflight + mss) as f64 > self.cwnd.min(rwnd) + (mss - 1) as f64 {
                // window check with sub-MSS tolerance (send if a full MSS
                // fits when rounding the window up to whole segments).
                return;
            }
            let len = mss.min(self.spec.bytes - self.snd_nxt) as u32;
            self.send_segment(self.snd_nxt, len, false, ctx);
            self.snd_nxt += u64::from(len);
            if self.rto_deadline.is_none() {
                self.arm_rto(ctx.now);
            }
        }
    }

    fn retransmit_head(&mut self, ctx: &mut Ctx<TcpPayload>) {
        let len = self.cfg.mss.min(self.spec.bytes - self.snd_una) as u32;
        self.timed = None; // Karn's rule
        self.send_segment(self.snd_una, len, true, ctx);
        self.arm_rto(ctx.now);
    }

    fn send_segment(&mut self, seq: u64, len: u32, rtx: bool, ctx: &mut Ctx<TcpPayload>) {
        self.segments_sent += 1;
        if !rtx && self.timed.is_none() {
            self.timed = Some((seq + u64::from(len), ctx.now));
        }
        ctx.send(Packet {
            src: self.spec.sender,
            dst: Dest::Host(self.spec.receiver),
            flow: self.flow(),
            size: len + HEADER_BYTES,
            payload: TcpPayload::Data {
                conn: self.spec.id,
                seq,
                len,
                rtx,
            },
        });
    }

    fn sample_rtt(&mut self, sample_ns: u64) {
        let s = sample_ns as f64;
        match self.srtt {
            None => {
                self.srtt = Some(s);
                self.rttvar = s / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - s).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * s);
            }
        }
        let rto = self.srtt.expect("just set") + 4.0 * self.rttvar;
        self.rto_ns = (rto as u64).clamp(self.cfg.rto_min_ns, self.cfg.rto_max_ns);
    }

    fn arm_rto(&mut self, now: SimTime) {
        let backed_off = self
            .rto_ns
            .saturating_mul(1u64 << self.backoff.min(6))
            .min(self.cfg.rto_max_ns);
        self.rto_deadline = Some(now + backed_off);
    }

    /// Congestion window in bytes (diagnostics).
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    /// Next unacknowledged byte (diagnostics).
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Current smoothed RTO in nanoseconds (diagnostics).
    pub fn rto_ns(&self) -> u64 {
        self.rto_ns
    }
}
