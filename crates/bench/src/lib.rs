//! # `polyraptor-bench` — experiment harness
//!
//! Shared machinery for the figure-regeneration binaries
//! (`fig1a`, `fig1b`, `fig1c`) and the Criterion benches:
//! command-line parsing, parallel execution of independent
//! (configuration × seed) runs across CPU cores, rank-curve averaging,
//! and CSV emission.
//!
//! Binaries accept `--sessions`, `--seeds`, `--k`, `--out` and a
//! `--full` flag that switches to the paper's exact scale (10,000
//! foreground sessions on the 250-host fabric, 5 seeds).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use workload::{Fabric, RankCurve};

/// Common options of the figure binaries.
#[derive(Debug, Clone)]
pub struct FigOptions {
    /// Total sessions per run (foreground + background).
    pub sessions: usize,
    /// Seeds (one run per seed per configuration).
    pub seeds: Vec<u64>,
    /// Fabric to simulate on.
    pub fabric: Fabric,
    /// Output directory for CSV artifacts (created if missing).
    pub out: PathBuf,
    /// Points per printed rank curve.
    pub points: usize,
}

impl Default for FigOptions {
    fn default() -> Self {
        Self {
            // Default scale finishes in minutes on a laptop; --full is
            // the paper's 12,500 total (10,000 foreground) sessions.
            sessions: 1_500,
            seeds: vec![1, 2, 3],
            fabric: Fabric::paper(),
            out: PathBuf::from("bench_out"),
            points: 26,
        }
    }
}

impl FigOptions {
    /// Parse from `std::env::args`-style iterator (skip the binary
    /// name). Unknown flags abort with a usage message.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Self {
        let mut o = Self::default();
        while let Some(a) = args.next() {
            let mut take = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
            };
            match a.as_str() {
                "--sessions" => o.sessions = take("--sessions").parse().expect("usize"),
                "--seeds" => {
                    o.seeds = take("--seeds")
                        .split(',')
                        .map(|s| s.parse().expect("u64 seed"))
                        .collect();
                }
                "--k" => {
                    let k = take("--k").parse().expect("even usize");
                    o.fabric = Fabric::fat_tree(k);
                }
                "--out" => o.out = PathBuf::from(take("--out")),
                "--points" => o.points = take("--points").parse().expect("usize"),
                "--full" => {
                    o.sessions = 12_500; // 10,000 foreground at 20% background
                    o.seeds = vec![1, 2, 3, 4, 5];
                    o.fabric = Fabric::paper();
                }
                "--quick" => {
                    o.sessions = 300;
                    o.seeds = vec![1];
                    o.fabric = Fabric::small();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --sessions N --seeds a,b,c --k K --out DIR --points P --full --quick"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        o
    }
}

/// Run `jobs` closures in parallel across available cores and collect
/// results in input order. Each job is independent (own simulator), so
/// this is embarrassingly parallel; an mpsc channel carries results
/// back to preserve determinism of the *output order*.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let out = job();
                tx.send((i, out)).expect("collector alive");
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job reports"))
        .collect()
}

/// Average rank curves pointwise across seeds (the paper averages 5
/// repetitions). Curves may differ slightly in length (background draws
/// are per-seed); the average uses relative rank positions.
pub fn average_rank_curves(curves: &[RankCurve], points: usize) -> Vec<(f64, f64)> {
    assert!(!curves.is_empty());
    (0..points)
        .map(|i| {
            let frac = i as f64 / (points - 1) as f64;
            let mean_rank =
                frac * (curves.iter().map(|c| c.len()).sum::<usize>() as f64) / curves.len() as f64;
            let v = workload::mean(
                &curves
                    .iter()
                    .map(|c| {
                        let idx = ((frac * (c.len() - 1) as f64).round() as usize).min(c.len() - 1);
                        c.at(idx)
                    })
                    .collect::<Vec<_>>(),
            );
            (mean_rank, v)
        })
        .collect()
}

/// Pretty-print a figure table: one labelled series per column.
pub fn print_series_table(title: &str, xlabel: &str, labels: &[&str], rows: &[Vec<f64>]) {
    println!("# {title}");
    print!("{xlabel:>12}");
    for l in labels {
        print!(" {l:>14}");
    }
    println!();
    for row in rows {
        print!("{:>12.1}", row[0]);
        for v in &row[1..] {
            print!(" {v:>14.4}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let o = FigOptions::parse(
            ["--sessions", "42", "--seeds", "7,8", "--k", "4"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.sessions, 42);
        assert_eq!(o.seeds, vec![7, 8]);
        assert_eq!(o.fabric.host_count(), 16);
        assert!(matches!(o.fabric, Fabric::FatTree { k: 4, .. }));
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..16usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..16usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn average_rank_curves_flat() {
        let c1 = RankCurve::new(vec![1.0; 100]);
        let c2 = RankCurve::new(vec![3.0; 50]);
        let avg = average_rank_curves(&[c1, c2], 5);
        assert_eq!(avg.len(), 5);
        for (_, v) in avg {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }
}
