//! Diagnostic: one multicast session on an otherwise idle fabric.

use netsim::{SimConfig, SimTime, Simulator};
use polyraptor::{PolyraptorAgent, PrConfig, SessionId, SessionSpec};
use workload::{install_rq, Fabric};

fn main() {
    let fabric = Fabric::fat_tree(6);
    let topo = fabric.build();
    let hosts = topo.hosts().to_vec();
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(1));
    for &h in &hosts {
        sim.set_agent(
            h,
            PolyraptorAgent::new(h, PrConfig::paper_default(), h.0 as u64),
        );
    }
    let (client, replicas) = (hosts[0], vec![hosts[10], hosts[20], hosts[40]]);

    // Unicast reference.
    let spec_u = SessionSpec::unicast(SessionId(0), 4 << 20, client, hosts[30], SimTime::ZERO);
    install_rq(&mut sim, &spec_u);
    sim.run_to_completion();
    let rec = &sim.agent(hosts[30]).records[0];
    println!(
        "unicast:   goodput={:.3} Gbps symbols={} trims={} pulls={}",
        rec.goodput_gbps(),
        rec.symbols,
        rec.trimmed_seen,
        rec.pulls_sent
    );

    // Multicast, 3 replicas, idle fabric, 8 sprayed trees.
    let groups: Vec<_> = (0..8)
        .map(|_| sim.register_group(client, &replicas))
        .collect();
    let start = sim.now() + 1000;
    let spec_m = SessionSpec::multicast(
        SessionId(1),
        4 << 20,
        client,
        replicas.clone(),
        groups,
        start,
    );
    install_rq(&mut sim, &spec_m);
    sim.run_to_completion();
    for &r in &replicas {
        let rec = sim.agent(r).records.last().unwrap();
        println!(
            "multicast@{}: goodput={:.3} Gbps symbols={} trims={} pulls={} dur={:.3}ms",
            r.0,
            rec.goodput_gbps(),
            rec.symbols,
            rec.trimmed_seen,
            rec.pulls_sent,
            (rec.finish - rec.start) as f64 / 1e6,
        );
    }
    let s = sim.stats();
    println!(
        "fabric: delivered={} trimmed={} dropped={}",
        s.delivered, s.trimmed, s.dropped
    );
}
