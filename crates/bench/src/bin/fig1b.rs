//! Figure 1b — Multi-source (fetch) goodput rank curves.
//!
//! Clients fetch 4 MB objects that exist on {1, 3} replica servers:
//! Polyraptor pulls statistically unique symbols from all replicas at
//! once; TCP fetches one partition from each replica without
//! coordination. Same fabric and arrival process as Figure 1a.

use polyraptor_bench::{average_rank_curves, print_series_table, run_parallel, FigOptions};
use workload::{
    foreground_goodputs, run_storage_rq, run_storage_tcp, RankCurve, RqRunOptions, StorageScenario,
    TcpRunOptions,
};

fn main() {
    let o = FigOptions::parse(std::env::args().skip(1));
    std::fs::create_dir_all(&o.out).expect("create out dir");
    eprintln!(
        "fig1b: {} sessions x {} seeds on {}",
        o.sessions,
        o.seeds.len(),
        o.fabric.describe()
    );

    let configs: [(&str, usize, bool); 4] = [
        ("RQ-1snd", 1, true),
        ("RQ-3snd", 3, true),
        ("TCP-1snd", 1, false),
        ("TCP-3snd", 3, false),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> (usize, RankCurve) + Send>> = Vec::new();
    for (ci, &(_, senders, rq)) in configs.iter().enumerate() {
        for &seed in &o.seeds {
            let sessions = o.sessions;
            let fabric = o.fabric;
            jobs.push(Box::new(move || {
                let sc = StorageScenario::fig1b(sessions, senders, seed);
                let results = if rq {
                    run_storage_rq(&sc, &fabric, &RqRunOptions::default())
                } else {
                    run_storage_tcp(&sc, &fabric, &TcpRunOptions::default())
                };
                (ci, RankCurve::new(foreground_goodputs(&results)))
            }));
        }
    }
    let outputs = run_parallel(jobs);

    let mut per_config: Vec<Vec<RankCurve>> = (0..configs.len()).map(|_| Vec::new()).collect();
    for (ci, curve) in outputs {
        per_config[ci].push(curve);
    }
    let sampled: Vec<Vec<(f64, f64)>> = per_config
        .iter()
        .map(|curves| average_rank_curves(curves, o.points))
        .collect();
    let rows: Vec<Vec<f64>> = (0..o.points)
        .map(|i| {
            let mut row = vec![sampled[0][i].0];
            for s in &sampled {
                row.push(s[i].1);
            }
            row
        })
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.0).collect();
    print_series_table(
        "Figure 1b — Multi-source: goodput (Gbps) vs rank of transport session",
        "rank",
        &labels,
        &rows,
    );
    let mut header = vec!["rank"];
    header.extend(&labels);
    workload::csv::write_csv(&o.out.join("fig1b.csv"), &header, rows.clone())
        .expect("write fig1b.csv");
    eprintln!("wrote {}", o.out.join("fig1b.csv").display());
    for (c, curves) in configs.iter().zip(&per_config) {
        let med = workload::mean(&curves.iter().map(|c| c.median()).collect::<Vec<_>>());
        println!("# median {}: {:.3} Gbps", c.0, med);
    }
}
