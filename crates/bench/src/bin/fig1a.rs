//! Figure 1a — Multicast (replication write) goodput rank curves.
//!
//! Reproduces: 250-host fat-tree, 4 MB objects, Poisson λ = 2560/s,
//! 20 % background, permutation traffic matrix; four configurations:
//! {1, 3} replicas × {Polyraptor (RQ), TCP multi-unicast}.
//!
//! Run `cargo run --release -p polyraptor-bench --bin fig1a -- --full`
//! for the paper's exact scale, or with no flags for a faster default.

use polyraptor_bench::{average_rank_curves, print_series_table, run_parallel, FigOptions};
use workload::{
    foreground_goodputs, run_storage_rq, run_storage_tcp, RankCurve, RqRunOptions, StorageScenario,
    TcpRunOptions,
};

fn main() {
    let o = FigOptions::parse(std::env::args().skip(1));
    std::fs::create_dir_all(&o.out).expect("create out dir");
    eprintln!(
        "fig1a: {} sessions x {} seeds on {}",
        o.sessions,
        o.seeds.len(),
        o.fabric.describe()
    );

    // (label, replicas, rq?) — the four curves of the figure.
    let configs: [(&str, usize, bool); 4] = [
        ("RQ-1rep", 1, true),
        ("RQ-3rep", 3, true),
        ("TCP-1rep", 1, false),
        ("TCP-3rep", 3, false),
    ];

    let mut jobs: Vec<Box<dyn FnOnce() -> (usize, RankCurve) + Send>> = Vec::new();
    for (ci, &(_, replicas, rq)) in configs.iter().enumerate() {
        for &seed in &o.seeds {
            let sessions = o.sessions;
            let fabric = o.fabric;
            jobs.push(Box::new(move || {
                let sc = StorageScenario::fig1a(sessions, replicas, seed);
                let results = if rq {
                    run_storage_rq(&sc, &fabric, &RqRunOptions::default())
                } else {
                    run_storage_tcp(&sc, &fabric, &TcpRunOptions::default())
                };
                (ci, RankCurve::new(foreground_goodputs(&results)))
            }));
        }
    }
    let outputs = run_parallel(jobs);

    let mut per_config: Vec<Vec<RankCurve>> = (0..configs.len()).map(|_| Vec::new()).collect();
    for (ci, curve) in outputs {
        per_config[ci].push(curve);
    }

    // Averaged sampled curves, one column per configuration.
    let sampled: Vec<Vec<(f64, f64)>> = per_config
        .iter()
        .map(|curves| average_rank_curves(curves, o.points))
        .collect();
    let rows: Vec<Vec<f64>> = (0..o.points)
        .map(|i| {
            let mut row = vec![sampled[0][i].0];
            for s in &sampled {
                row.push(s[i].1);
            }
            row
        })
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.0).collect();
    print_series_table(
        "Figure 1a — Multicast: goodput (Gbps) vs rank of transport session",
        "rank",
        &labels,
        &rows,
    );

    // Persist the full curves.
    let mut header = vec!["rank"];
    header.extend(&labels);
    workload::csv::write_csv(&o.out.join("fig1a.csv"), &header, rows.clone())
        .expect("write fig1a.csv");
    eprintln!("wrote {}", o.out.join("fig1a.csv").display());

    // Headline summary (medians) for EXPERIMENTS.md.
    for (c, curves) in configs.iter().zip(&per_config) {
        let med = workload::mean(&curves.iter().map(|c| c.median()).collect::<Vec<_>>());
        println!("# median {}: {:.3} Gbps", c.0, med);
    }
}
