//! Figure 1c — Incast: goodput vs number of synchronized senders.
//!
//! N senders each hold one stripe of a block (256 KB / 70 KB) and
//! transmit to one client simultaneously. Error bars are the 95%
//! confidence interval over the seeds (the paper uses 5 repetitions).
//! Polyraptor (trimming + rateless pulls) should stay near line rate;
//! TCP collapses as N grows (RTOmin-driven Incast).

use polyraptor_bench::{print_series_table, run_parallel, FigOptions};
use workload::{
    mean_ci95, run_incast_rq, run_incast_tcp, IncastScenario, RqRunOptions, TcpRunOptions,
};

fn main() {
    let mut o = FigOptions::parse(std::env::args().skip(1));
    if o.seeds.len() < 2 {
        // CI needs repetitions; match the paper's 5 seeds by default.
        o.seeds = vec![1, 2, 3, 4, 5];
    }
    std::fs::create_dir_all(&o.out).expect("create out dir");
    let hosts = o.fabric.host_count();
    let mut sender_counts: Vec<usize> = vec![2, 4, 8, 16, 24, 32, 40, 48, 56, 64, 70];
    sender_counts.retain(|&n| n < hosts); // small fabrics cap the sweep
    let blocks: [(&str, usize); 2] = [("256KB", 256 << 10), ("70KB", 70 << 10)];
    eprintln!(
        "fig1c: senders {:?} x {} seeds on {}",
        sender_counts,
        o.seeds.len(),
        o.fabric.describe()
    );

    // Jobs: (config, senders, seed) → goodput.
    #[allow(clippy::type_complexity)]
    let mut jobs: Vec<Box<dyn FnOnce() -> (usize, usize, f64) + Send>> = Vec::new();
    for (bi, &(_, block)) in blocks.iter().enumerate() {
        for (ni, &n) in sender_counts.iter().enumerate() {
            for &seed in &o.seeds {
                let fabric = o.fabric;
                // RQ job.
                jobs.push(Box::new(move || {
                    let sc = IncastScenario {
                        senders: n,
                        block_bytes: block,
                        seed,
                    };
                    (
                        bi * 2,
                        ni,
                        run_incast_rq(&sc, &fabric, &RqRunOptions::default()),
                    )
                }));
                // TCP job.
                jobs.push(Box::new(move || {
                    let sc = IncastScenario {
                        senders: n,
                        block_bytes: block,
                        seed,
                    };
                    (
                        bi * 2 + 1,
                        ni,
                        run_incast_tcp(&sc, &fabric, &TcpRunOptions::default()),
                    )
                }));
            }
        }
    }
    let outputs = run_parallel(jobs);

    // configs: 0 = RQ 256KB, 1 = TCP 256KB, 2 = RQ 70KB, 3 = TCP 70KB.
    let labels = ["RQ 256KB", "TCP 256KB", "RQ 70KB", "TCP 70KB"];
    let mut acc: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); sender_counts.len()]; 4];
    for (ci, ni, g) in outputs {
        acc[ci][ni].push(g);
    }

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut csv_rows: Vec<Vec<f64>> = Vec::new();
    for (ni, &n) in sender_counts.iter().enumerate() {
        let mut row = vec![n as f64];
        let mut csv_row = vec![n as f64];
        for series in acc.iter() {
            let (m, ci) = mean_ci95(&series[ni]);
            row.push(m);
            csv_row.push(m);
            csv_row.push(ci);
        }
        rows.push(row);
        csv_rows.push(csv_row);
    }
    print_series_table(
        "Figure 1c — Incast: goodput (Gbps) vs number of parallel senders (means)",
        "senders",
        &labels,
        &rows,
    );
    workload::csv::write_csv(
        &o.out.join("fig1c.csv"),
        &[
            "senders",
            "rq256_mean",
            "rq256_ci95",
            "tcp256_mean",
            "tcp256_ci95",
            "rq70_mean",
            "rq70_ci95",
            "tcp70_mean",
            "tcp70_ci95",
        ],
        csv_rows,
    )
    .expect("write fig1c.csv");
    eprintln!("wrote {}", o.out.join("fig1c.csv").display());
}
