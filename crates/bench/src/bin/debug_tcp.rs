//! Diagnostic: TCP and RQ storage runs with loss/timeout accounting.

use netsim::{Pcg32, SimConfig, Simulator};
use tcpsim::{conn_start_token, TcpAgent, TcpConfig};
use workload::{
    build_tcp_conns, foreground_goodputs, run_storage_rq, Fabric, Pattern, RankCurve, RqRunOptions,
    StorageScenario,
};

fn main() {
    let fabric = Fabric::fat_tree(6);
    let mut sc = StorageScenario::fig1a(300, 1, 1);

    // ---- TCP instrumented run -----------------------------------------
    let topo = fabric.build();
    let sessions = sc.generate(&topo);
    let mut sim: Simulator<_, TcpAgent> = Simulator::new(topo, SimConfig::classic(sc.seed));
    let hosts = sim.topology().hosts().to_vec();
    for &h in &hosts {
        sim.set_agent(h, TcpAgent::new(h, TcpConfig::paper_default()));
    }
    let conns = build_tcp_conns(&sessions, Pattern::Write);
    for c in &conns {
        sim.agent_mut(c.sender).install(c.clone());
        sim.agent_mut(c.receiver).install(c.clone());
        sim.schedule_timer(c.sender, c.start, conn_start_token(c.id));
    }
    sim.run_to_completion();

    let mut timeouts = 0u64;
    let mut frtx = 0u64;
    let mut conns_with_to = 0usize;
    for c in &conns {
        let s = sim.agent(c.sender).sender(c.id).unwrap();
        timeouts += s.timeouts;
        frtx += s.fast_retransmits;
        if s.timeouts > 0 {
            conns_with_to += 1;
        }
    }
    let st = sim.stats();
    println!(
        "TCP-1rep: conns={} timeouts={} (conns hit: {}) fast_rtx={} drops={} sim_end={}",
        conns.len(),
        timeouts,
        conns_with_to,
        frtx,
        st.dropped,
        sim.now()
    );
    let mut goodputs = Vec::new();
    for c in conns.iter().filter(|c| !c.background) {
        let rec = sim
            .agent(c.receiver)
            .records
            .iter()
            .find(|r| r.conn == c.id)
            .expect("conn complete");
        goodputs.push(rec.goodput_gbps());
    }
    let curve = RankCurve::new(goodputs);
    println!(
        "TCP-1rep goodput: p10={:.3} median={:.3} p90={:.3} mean={:.3}",
        curve.percentile(10.0),
        curve.median(),
        curve.percentile(90.0),
        curve.mean()
    );

    // ---- RQ multicast under load: strict aggregation vs detach ---------
    sc.replicas = 3;
    for (label, lag) in [
        ("strict", None),
        ("detach64", Some(64)),
        ("detach8", Some(8)),
    ] {
        let mut opts = RqRunOptions::default();
        opts.pr.straggler_lag = lag;
        let results = run_storage_rq(&sc, &fabric, &opts);
        let c2 = RankCurve::new(foreground_goodputs(&results));
        println!(
            "RQ-3rep[{label}]: p10={:.3} median={:.3} p90={:.3} mean={:.3}",
            c2.percentile(10.0),
            c2.median(),
            c2.percentile(90.0),
            c2.mean()
        );
    }
    let _ = Pcg32::new(0);
}
