//! CI perf-regression gate for the CSR route arenas and the telemetry
//! layer's zero-cost contract.
//!
//! Measures the two hot paths the flat layout exists for — forwarding
//! decisions (route-table lookup + ECMP pick) and incremental route
//! repair — on the paper's k=10 fat-tree, compares the flat arenas
//! against a nested `Vec<Vec<Vec<u16>>>` baseline rebuilt from the
//! public accessors, and writes the medians to a machine-readable
//! `BENCH_csr.json`. Exits nonzero when the flat-vs-nested forwarding
//! ratio drops below the threshold, so a cache-hostile regression in
//! the arenas fails the job instead of rotting silently.
//!
//! The telemetry section drives the same fat-tree through a full
//! event-loop burst twice — once with the compiled-out [`NoTelemetry`]
//! sink (the pre-telemetry machine code) and once with the
//! runtime-switchable `Option<Recorder>` sink left `None` — and fails
//! if the disabled-telemetry loop falls below 95 % of baseline speed:
//! the "off by default, zero hot-path cost" contract, held in CI.
//!
//! The rq section decodes a lossless paper-scale block (4 MB, K = 2913)
//! through the systematic zero-copy fast path and through the legacy
//! solver path it replaces, and fails if the speedup drops below
//! `--min-rq-ratio` (default 3; measured ~20x) — the codec tentpole's
//! perf claim, held in CI.
//!
//! The parallel section measures full route recomputes and one-link
//! repairs on the k=16 fat-tree (1 024 hosts) and the 5 000-host
//! Jellyfish, serial vs 4 worker threads (`Topology::set_parallelism`),
//! and fails if the worst full-recompute speedup drops below
//! `--min-par-ratio` (default 1.5). The gate only binds when the
//! machine has >= 4 cores — on smaller runners the ratios are recorded
//! in `BENCH_csr.json` and the verdict reads `skipped`.
//!
//! The shard section runs the same two large fabrics through a whole
//! seeded churn line (fetches under faults, end to end), serial vs 4
//! conservative-window event-loop shards (`SimConfig::shards`), pins
//! serial/sharded byte-identity before timing, and fails if the best
//! speedup drops below `--min-shard-ratio` (default 1.5) — waived the
//! same way below 4 cores, with the ratios and the shard counters
//! (epochs, cross-shard packets, horizon stalls) always recorded.
//!
//! ```sh
//! cargo run --release -p polyraptor_bench --bin bench_smoke -- \
//!     --smoke --out BENCH_csr.json --min-ratio 1.2
//! ```
//!
//! `--smoke` shrinks repeat counts (not the fabric: the ≥ 1.5× claim
//! is made at k=10 and is checked at k=10). The default threshold of
//! 1.2 leaves headroom for shared-runner noise below the measured
//! ~2.8× ratio.

use std::time::Instant;

use netsim::{
    Agent, Ctx, Dest, FaultMask, FlowId, NoTelemetry, NodeId, NodeKind, Packet, Recorder,
    SimConfig, SimPayload, Simulator, TelemetrySink, Topology,
};
use workload::{run_churn_rq, ChurnReport, ChurnScenario, Fabric, RqRunOptions};

/// Median of a sample set (ns); the samples are per-call averages.
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Deterministic (switch, destination-index, flow) visit order shared
/// by the flat and nested forwarding sweeps.
fn decision_pairs(t: &Topology, count: usize) -> Vec<(usize, usize, usize)> {
    let switches: Vec<NodeId> = (0..t.node_count() as u32)
        .map(NodeId)
        .filter(|&n| t.kind(n) == NodeKind::Switch)
        .collect();
    let n_hosts = t.hosts().len();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..count)
        .map(|_| {
            (
                switches[next() % switches.len()].0 as usize,
                next() % n_hosts,
                next(),
            )
        })
        .collect()
}

struct Forwarding {
    flat_ns: f64,
    nested_ns: f64,
    decisions: usize,
}

fn forwarding(t: &Topology, repeats: usize) -> Forwarding {
    let decisions = 65_536;
    let pairs = decision_pairs(t, decisions);
    let hosts = t.hosts().to_vec();
    let nested: Vec<Vec<Vec<u16>>> = (0..t.node_count() as u32)
        .map(|n| {
            hosts
                .iter()
                .map(|&h| t.try_next_ports_on(0, NodeId(n), h).to_vec())
                .collect()
        })
        .collect();
    let sweep_flat = || {
        let mut acc = 0u64;
        for &(s, h, f) in &pairs {
            let ports = t.try_next_ports_at(0, NodeId(s as u32), h);
            if !ports.is_empty() {
                acc += u64::from(ports[f % ports.len()]);
            }
        }
        acc
    };
    let sweep_nested = || {
        let mut acc = 0u64;
        for &(s, h, f) in &pairs {
            let ports = &nested[s][h];
            if !ports.is_empty() {
                acc += u64::from(ports[f % ports.len()]);
            }
        }
        acc
    };
    let time = |f: &dyn Fn() -> u64| {
        let start = Instant::now();
        std::hint::black_box(f());
        start.elapsed().as_nanos() as f64 / decisions as f64
    };
    // Warm both layouts once, then interleave the measured sweeps so
    // slow drift (thermal, noisy neighbours) hits both sides equally.
    std::hint::black_box(sweep_flat());
    std::hint::black_box(sweep_nested());
    let mut flat = Vec::with_capacity(repeats);
    let mut nested_t = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        flat.push(time(&sweep_flat));
        nested_t.push(time(&sweep_nested));
    }
    Forwarding {
        flat_ns: median(flat),
        nested_ns: median(nested_t),
        decisions,
    }
}

struct Repairs {
    single_link_ns: f64,
    switch_down_ns: f64,
    switch_up_ns: f64,
    full_recompute_ns: f64,
}

fn repairs(pristine: &Topology, repeats: usize) -> Repairs {
    let core = NodeId(pristine.node_count() as u32 - 1);
    let mut link_mask = FaultMask::new();
    link_mask.fail_link(pristine, core, 0);
    let mut node_mask = FaultMask::new();
    node_mask.fail_node(core);
    let time = |f: &mut dyn FnMut(&mut Topology), reps: usize| {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut t = pristine.clone();
            let start = Instant::now();
            f(&mut t);
            samples.push(start.elapsed().as_nanos() as f64);
        }
        median(samples)
    };
    let single_link_ns = time(
        &mut |t| {
            assert!(!t.repair_routes(&link_mask).full);
        },
        repeats,
    );
    let switch_down_ns = time(
        &mut |t| {
            assert!(!t.repair_routes(&node_mask).full);
        },
        repeats,
    );
    let full_recompute_ns = time(&mut |t| t.compute_routes_masked(&link_mask), repeats.min(5));
    // Restoration: fail the switch in (untimed) setup, time only the
    // back-to-healthy repair delta.
    let switch_up_ns = {
        let healthy = FaultMask::new();
        let mut samples = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let mut t = pristine.clone();
            t.repair_routes(&node_mask);
            let start = Instant::now();
            assert!(!t.repair_routes(&healthy).full);
            samples.push(start.elapsed().as_nanos() as f64);
        }
        median(samples)
    };
    Repairs {
        single_link_ns,
        switch_down_ns,
        switch_up_ns,
        full_recompute_ns,
    }
}

/// Minimal trimmable payload for the event-loop benchmark.
#[derive(Debug, Clone)]
enum BenchPayload {
    Data,
    Hdr,
}

impl SimPayload for BenchPayload {
    fn is_control(&self) -> bool {
        matches!(self, BenchPayload::Hdr)
    }
    fn trim(&self) -> Option<Self> {
        Some(BenchPayload::Hdr)
    }
}

/// Burst agent: sends its preloaded batch on the start timer, counts
/// receptions. Enough to exercise the event loop's hot path (enqueue,
/// forward, deliver) without any protocol machinery.
struct Burst {
    to_send: Vec<Packet<BenchPayload>>,
    received: u64,
}

impl Agent<BenchPayload> for Burst {
    fn on_packet(&mut self, _pkt: Packet<BenchPayload>, _ctx: &mut Ctx<BenchPayload>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<BenchPayload>) {
        for pkt in self.to_send.drain(..) {
            ctx.send(pkt);
        }
    }
}

/// Preload every host with a burst to its neighbour and run to
/// completion; returns (wall ns, packets delivered).
fn drive_burst<T: TelemetrySink + Send + Sync>(
    mut sim: Simulator<BenchPayload, Burst, T>,
    per_host: u32,
) -> (f64, u64) {
    let hosts = sim.topology().hosts().to_vec();
    let n = hosts.len();
    for (i, &h) in hosts.iter().enumerate() {
        let dst = hosts[(i + 1) % n];
        let to_send = (0..per_host)
            .map(|p| Packet {
                src: h,
                dst: Dest::Host(dst),
                flow: FlowId(u64::from(p % 8)),
                size: 1500,
                payload: BenchPayload::Data,
            })
            .collect();
        sim.set_agent(
            h,
            Burst {
                to_send,
                received: 0,
            },
        );
        sim.schedule_timer(h, netsim::SimTime::ZERO, 0);
    }
    let start = Instant::now();
    sim.run_to_completion();
    let ns = start.elapsed().as_nanos() as f64;
    let delivered = sim.agents().map(|(_, a)| a.received).sum();
    (ns, delivered)
}

struct TelemetryBench {
    baseline_ns: f64,
    off_ns: f64,
    per_host: u32,
}

/// The zero-cost contract: the `Option<Recorder>` sink left `None`
/// (what every runner installs when telemetry is off) vs the
/// monomorphized-away `NoTelemetry` baseline, interleaved like the
/// forwarding sweeps. Panics if the two variants deliver different
/// packet counts — the sink must not change behaviour, only speed.
fn telemetry_overhead(t: &Topology, repeats: usize) -> TelemetryBench {
    let per_host = 64u32;
    let run_baseline = || {
        let sim: Simulator<BenchPayload, Burst, NoTelemetry> =
            Simulator::new(t.clone(), SimConfig::ndp(1));
        drive_burst(sim, per_host)
    };
    let run_off = || {
        let sim: Simulator<BenchPayload, Burst, Option<Recorder>> =
            Simulator::with_telemetry(t.clone(), SimConfig::ndp(1), None);
        drive_burst(sim, per_host)
    };
    // Warm once and pin the behavioural identity.
    let (_, base_delivered) = run_baseline();
    let (_, off_delivered) = run_off();
    assert_eq!(
        base_delivered, off_delivered,
        "disabled telemetry must not change delivery"
    );
    let mut baseline = Vec::with_capacity(repeats);
    let mut off = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        baseline.push(run_baseline().0);
        off.push(run_off().0);
    }
    TelemetryBench {
        baseline_ns: median(baseline),
        off_ns: median(off),
        per_host,
    }
}

struct RqBench {
    k: usize,
    symbol_size: usize,
    fast_ns: f64,
    legacy_solver_ns: f64,
}

/// The systematic-codec fast-path gate: decode a lossless paper-scale
/// block (4 MB at 1440-byte symbols, K = 2913) via the systematic
/// zero-copy path and via the legacy construction *forced through the
/// solver* — the work the fast path exists to avoid. (Legacy
/// `try_decode` also shortcuts a complete source receipt, so the honest
/// baseline is the solver entry point.) The interleaved medians feed
/// the `--min-rq-ratio` gate.
fn rq_fast_path(repeats: usize) -> RqBench {
    let symbol_size = 1440usize;
    let data: Vec<u8> = (0..(4usize << 20)).map(|i| (i * 131 + 17) as u8).collect();
    let sys = rq::Encoder::new(&data, symbol_size).expect("non-empty block");
    let leg = rq::Encoder::legacy(&data, symbol_size).expect("non-empty block");
    let k = sys.params().k;
    let receive_all = |enc: &rq::Encoder| {
        let mut dec = rq::Decoder::new(enc.params());
        for esi in 0..k as u32 {
            dec.push(esi, enc.symbol(esi));
        }
        dec
    };
    let dec_sys = receive_all(&sys);
    let dec_leg = receive_all(&leg);
    // Warm both paths once and pin byte-identity of their outputs.
    assert_eq!(
        dec_sys.try_decode().expect("lossless decode"),
        dec_leg.try_decode_solver().expect("lossless decode"),
        "fast path and legacy solver must agree"
    );
    let mut fast = Vec::with_capacity(repeats);
    let mut solver = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        std::hint::black_box(dec_sys.try_decode().expect("lossless decode"));
        fast.push(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        std::hint::black_box(dec_leg.try_decode_solver().expect("lossless decode"));
        solver.push(start.elapsed().as_nanos() as f64);
    }
    assert_eq!(
        dec_sys.decode_stats().solver_decodes,
        0,
        "the gated path must never touch the solver"
    );
    RqBench {
        k,
        symbol_size,
        fast_ns: median(fast),
        legacy_solver_ns: median(solver),
    }
}

struct ParBench {
    label: &'static str,
    hosts: usize,
    serial_full_ns: f64,
    par_full_ns: f64,
    serial_repair_ns: f64,
    par_repair_ns: f64,
}

impl ParBench {
    fn full_ratio(&self) -> f64 {
        self.serial_full_ns / self.par_full_ns
    }
    fn repair_ratio(&self) -> f64 {
        self.serial_repair_ns / self.par_repair_ns
    }
}

/// Serial vs `threads`-worker route computation on one of the large
/// fabrics the chunked scatter exists for: a full masked recompute and
/// a one-link repair, interleaved medians. Byte-identity between the
/// two is property-tested exhaustively in `fabric_invariants`; a spot
/// check over a deterministic sample of (switch, destination) pairs is
/// pinned here so the bench can never race ahead of a correctness bug.
/// Takes the pristine topology by value — the 5 000-host Jellyfish
/// arenas are large enough that keeping a third copy alive matters.
fn parallel_routes(
    pristine: Topology,
    label: &'static str,
    threads: usize,
    repeats: usize,
) -> ParBench {
    let hosts = pristine.hosts().len();
    let sw = (0..pristine.node_count() as u32)
        .rev()
        .map(NodeId)
        .find(|&n| pristine.kind(n) == NodeKind::Switch)
        .expect("fabric has a switch");
    let mut link_mask = FaultMask::new();
    link_mask.fail_link(&pristine, sw, 0);
    let healthy = FaultMask::new();
    let mut serial = pristine.clone();
    serial.set_parallelism(1);
    let mut par = pristine;
    par.set_parallelism(threads);
    // Warm both and spot-check identity on a deterministic sample.
    serial.compute_routes_masked(&healthy);
    par.compute_routes_masked(&healthy);
    for &(s, h, _) in &decision_pairs(&serial, 256) {
        assert_eq!(
            serial.try_next_ports_at(0, NodeId(s as u32), h),
            par.try_next_ports_at(0, NodeId(s as u32), h),
            "{label}: parallel route table diverged from serial"
        );
    }
    let mut sf = Vec::with_capacity(repeats);
    let mut pf = Vec::with_capacity(repeats);
    let mut sr = Vec::with_capacity(repeats);
    let mut pr = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = Instant::now();
        serial.compute_routes_masked(&healthy);
        sf.push(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        par.compute_routes_masked(&healthy);
        pf.push(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        serial.repair_routes(&link_mask);
        sr.push(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        par.repair_routes(&link_mask);
        pr.push(start.elapsed().as_nanos() as f64);
        // Back to healthy for the next iteration's full recompute (the
        // restore itself is the next loop's untimed warm state).
        serial.repair_routes(&healthy);
        par.repair_routes(&healthy);
    }
    ParBench {
        label,
        hosts,
        serial_full_ns: median(sf),
        par_full_ns: median(pf),
        serial_repair_ns: median(sr),
        par_repair_ns: median(pr),
    }
}

struct ShardBench {
    label: &'static str,
    hosts: usize,
    serial_ns: f64,
    sharded_ns: f64,
    shard_epochs: u64,
    cross_shard_packets: u64,
    horizon_stalls: u64,
}

impl ShardBench {
    fn ratio(&self) -> f64 {
        self.serial_ns / self.sharded_ns
    }
}

/// Serial event loop vs `shards` conservative-window workers on one of
/// the large churn lines the sharded loop exists for: the same seeded
/// fetch-under-faults run, interleaved medians. Byte-identity across
/// shard counts is property-tested on the small fabrics in
/// `sharded_identity`; the per-flow fingerprint and the
/// shard-invariant fabric stats are re-pinned here at full scale so
/// the bench can never race ahead of a correctness bug.
fn sharded_event_loop(
    fabric: &Fabric,
    label: &'static str,
    hosts: usize,
    shards: usize,
    smoke: bool,
    repeats: usize,
) -> ShardBench {
    let (sessions, bytes, faults) = if smoke {
        (6usize, 256usize << 10, 6usize)
    } else {
        (8, 1 << 20, 10)
    };
    let mut sc = ChurnScenario::ten_event(sessions, bytes, 2);
    sc.fault_events = faults;
    let run = |n: usize| -> (f64, ChurnReport) {
        let opts = RqRunOptions {
            shards: n,
            ..Default::default()
        };
        let start = Instant::now();
        let rep = run_churn_rq(&sc, fabric, &opts);
        (start.elapsed().as_nanos() as f64, rep)
    };
    // Warm both variants once and pin the identity contract.
    let (_, serial_rep) = run(1);
    let (_, sharded_rep) = run(shards);
    assert_eq!(
        serial_rep.fabric.shard_invariant(),
        sharded_rep.fabric.shard_invariant(),
        "{label}: sharded fabric stats diverged from serial"
    );
    let fp = |rep: &ChurnReport| -> Vec<(u32, u64, u64)> {
        rep.flows
            .iter()
            .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos()))
            .collect()
    };
    assert_eq!(
        fp(&serial_rep),
        fp(&sharded_rep),
        "{label}: sharded per-flow timings diverged from serial"
    );
    let mut serial = Vec::with_capacity(repeats);
    let mut sharded = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        serial.push(run(1).0);
        sharded.push(run(shards).0);
    }
    ShardBench {
        label,
        hosts,
        serial_ns: median(serial),
        sharded_ns: median(sharded),
        shard_epochs: sharded_rep.fabric.shard_epochs,
        cross_shard_packets: sharded_rep.fabric.cross_shard_packets,
        horizon_stalls: sharded_rep.fabric.horizon_stalls,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_csr.json".to_string());
    let min_ratio: f64 = flag("--min-ratio")
        .map(|v| v.parse().expect("--min-ratio takes a number"))
        .unwrap_or(1.2);
    let min_rq_ratio: f64 = flag("--min-rq-ratio")
        .map(|v| v.parse().expect("--min-rq-ratio takes a number"))
        .unwrap_or(3.0);
    let min_par_ratio: f64 = flag("--min-par-ratio")
        .map(|v| v.parse().expect("--min-par-ratio takes a number"))
        .unwrap_or(1.5);
    let min_shard_ratio: f64 = flag("--min-shard-ratio")
        .map(|v| v.parse().expect("--min-shard-ratio takes a number"))
        .unwrap_or(1.5);
    let repeats = if smoke { 9 } else { 31 };

    let k = 10usize;
    let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
    let hosts = t.hosts().len();
    let switches = t.node_count() - hosts;
    let fwd = forwarding(&t, repeats);
    let rep = repairs(&t, repeats);
    let tel = telemetry_overhead(&t, repeats);
    let rq_bench = rq_fast_path(repeats);
    // Parallel route computation on the fabrics the scatter exists for:
    // the paper-scale k=16 fat-tree and the 5 000-host Jellyfish.
    let par_threads = 4usize;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let par_benches = [
        parallel_routes(
            Topology::fat_tree(16, 1_000_000_000, 10_000),
            "fat_tree_k16",
            par_threads,
            repeats.min(5),
        ),
        parallel_routes(
            Topology::jellyfish(250, 12, 20, 1_000_000_000, 10_000, 1),
            "jellyfish_5000",
            par_threads,
            repeats.min(3),
        ),
    ];
    // The sharded event loop on the same two large churn lines: the
    // whole seeded run end to end, serial vs 4 conservative-window
    // shard workers.
    let shard_count = 4usize;
    let shard_benches = [
        sharded_event_loop(
            &Fabric::large(),
            "fat_tree_k16",
            1024,
            shard_count,
            smoke,
            repeats.min(3),
        ),
        sharded_event_loop(
            &Fabric::large_jellyfish(),
            "jellyfish_5000",
            5000,
            shard_count,
            smoke,
            repeats.min(3),
        ),
    ];
    let ratio = fwd.nested_ns / fwd.flat_ns;
    let csr_pass = ratio >= min_ratio;
    // Systematic no-loss decode vs the legacy solver path it replaces:
    // measured ~20x at paper scale; the 3x default floor leaves a wide
    // margin for shared-runner noise while still catching any solver
    // work leaking back into the lossless path.
    let rq_ratio = rq_bench.legacy_solver_ns / rq_bench.fast_ns;
    let rq_pass = rq_ratio >= min_rq_ratio;
    // Telemetry-off event loop vs the compiled-out baseline: >= 1.0
    // means free; the 0.95 floor absorbs shared-runner noise while
    // still catching any real per-event cost sneaking into the sink.
    let min_telemetry_ratio = 0.95f64;
    let telemetry_ratio = tel.baseline_ns / tel.off_ns;
    let telemetry_pass = telemetry_ratio >= min_telemetry_ratio;
    // The parallel full-recompute speedup is a real-concurrency claim:
    // it is only enforceable when the machine actually has the worker
    // count available. On smaller runners the ratios are still measured
    // and recorded, with the gate marked skipped instead of failed.
    let par_enforced = cores >= par_threads;
    let worst_par_ratio = par_benches
        .iter()
        .map(ParBench::full_ratio)
        .fold(f64::INFINITY, f64::min);
    let par_pass = !par_enforced || worst_par_ratio >= min_par_ratio;
    // The sharded-loop speedup is likewise a real-concurrency claim:
    // enforced only when the machine has the shard count in cores,
    // always measured and recorded.
    let shard_enforced = cores >= shard_count;
    let best_shard_ratio = shard_benches
        .iter()
        .map(ShardBench::ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    let shard_pass = !shard_enforced || best_shard_ratio >= min_shard_ratio;
    let pass = csr_pass && telemetry_pass && rq_pass && par_pass && shard_pass;

    let par_json = par_benches
        .iter()
        .map(|b| {
            format!(
                "\"{}\": {{\"hosts\": {}, \"serial_full_ns\": {:.0}, \
                 \"par_full_ns\": {:.0}, \"full_ratio\": {:.3}, \
                 \"serial_repair_ns\": {:.0}, \"par_repair_ns\": {:.0}, \
                 \"repair_ratio\": {:.3}}}",
                b.label,
                b.hosts,
                b.serial_full_ns,
                b.par_full_ns,
                b.full_ratio(),
                b.serial_repair_ns,
                b.par_repair_ns,
                b.repair_ratio(),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let shard_json = shard_benches
        .iter()
        .map(|b| {
            format!(
                "\"{}\": {{\"hosts\": {}, \"serial_ns\": {:.0}, \
                 \"sharded_ns\": {:.0}, \"ratio\": {:.3}, \
                 \"shard_epochs\": {}, \"cross_shard_packets\": {}, \
                 \"horizon_stalls\": {}}}",
                b.label,
                b.hosts,
                b.serial_ns,
                b.sharded_ns,
                b.ratio(),
                b.shard_epochs,
                b.cross_shard_packets,
                b.horizon_stalls,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"schema\": \"polyraptor-bench-csr/v1\",\n  \"mode\": \"{}\",\n  \
         \"fabric\": {{\"kind\": \"fat_tree\", \"k\": {k}, \"hosts\": {hosts}, \
         \"switches\": {switches}}},\n  \
         \"forwarding\": {{\"flat_ns_per_decision\": {:.3}, \
         \"nested_ns_per_decision\": {:.3}, \"ratio_flat_over_nested\": {:.3}, \
         \"decisions_per_sweep\": {}}},\n  \
         \"repair\": {{\"single_link_ns\": {:.0}, \"switch_down_ns\": {:.0}, \
         \"switch_up_ns\": {:.0}, \"full_recompute_ns\": {:.0}}},\n  \
         \"telemetry\": {{\"baseline_run_ns\": {:.0}, \"off_run_ns\": {:.0}, \
         \"ratio_off_over_baseline\": {:.3}, \"packets_per_host\": {}, \
         \"min_telemetry_ratio\": {min_telemetry_ratio}}},\n  \
         \"rq\": {{\"k\": {}, \"symbol_size\": {}, \
         \"systematic_noloss_ns\": {:.0}, \"legacy_solver_ns\": {:.0}, \
         \"ratio_legacy_over_systematic\": {:.3}, \"min_rq_ratio\": {min_rq_ratio}}},\n  \
         \"parallel\": {{\"threads\": {par_threads}, \"cores\": {cores}, \
         \"min_par_ratio\": {min_par_ratio}, \"enforced\": {par_enforced}, \
         {par_json}}},\n  \
         \"shard\": {{\"shards\": {shard_count}, \"cores\": {cores}, \
         \"min_shard_ratio\": {min_shard_ratio}, \"enforced\": {shard_enforced}, \
         {shard_json}}},\n  \
         \"min_ratio\": {min_ratio},\n  \"pass\": {pass}\n}}\n",
        if smoke { "smoke" } else { "full" },
        fwd.flat_ns,
        fwd.nested_ns,
        ratio,
        fwd.decisions,
        rep.single_link_ns,
        rep.switch_down_ns,
        rep.switch_up_ns,
        rep.full_recompute_ns,
        tel.baseline_ns,
        tel.off_ns,
        telemetry_ratio,
        tel.per_host,
        rq_bench.k,
        rq_bench.symbol_size,
        rq_bench.fast_ns,
        rq_bench.legacy_solver_ns,
        rq_ratio,
    );
    std::fs::write(&out, &json).expect("write BENCH_csr.json");
    print!("{json}");
    println!(
        "forwarding flat {:.2} ns vs nested {:.2} ns per decision ({ratio:.2}x, \
         threshold {min_ratio}x) -> {}",
        fwd.flat_ns,
        fwd.nested_ns,
        if csr_pass { "pass" } else { "FAIL" },
    );
    println!(
        "telemetry-off event loop {:.2} ms vs baseline {:.2} ms \
         ({telemetry_ratio:.3}x, floor {min_telemetry_ratio}x) -> {}",
        tel.off_ns / 1e6,
        tel.baseline_ns / 1e6,
        if telemetry_pass { "pass" } else { "FAIL" },
    );
    println!(
        "rq no-loss decode: systematic {:.2} ms vs legacy solver {:.2} ms at k={} \
         ({rq_ratio:.1}x, threshold {min_rq_ratio}x) -> {}",
        rq_bench.fast_ns / 1e6,
        rq_bench.legacy_solver_ns / 1e6,
        rq_bench.k,
        if rq_pass { "pass" } else { "FAIL" },
    );
    for b in &par_benches {
        println!(
            "parallel routes ({par_threads} threads) {}: full {:.1} ms -> {:.1} ms \
             ({:.2}x), one-link repair {:.2} ms -> {:.2} ms ({:.2}x)",
            b.label,
            b.serial_full_ns / 1e6,
            b.par_full_ns / 1e6,
            b.full_ratio(),
            b.serial_repair_ns / 1e6,
            b.par_repair_ns / 1e6,
            b.repair_ratio(),
        );
    }
    println!(
        "parallel full-recompute gate (threshold {min_par_ratio}x, worst \
         {worst_par_ratio:.2}x) -> {}",
        if !par_enforced {
            // A 4-thread speedup claim is unmeasurable on fewer cores;
            // the ratios above are recorded, the gate is waived.
            format!("skipped: {cores} core(s) < {par_threads} threads")
        } else if par_pass {
            "pass".to_string()
        } else {
            "FAIL".to_string()
        },
    );
    for b in &shard_benches {
        println!(
            "sharded event loop ({shard_count} shards) {}: churn {:.1} ms -> {:.1} ms \
             ({:.2}x; {} epochs, {} cross-shard packets, {} stalls)",
            b.label,
            b.serial_ns / 1e6,
            b.sharded_ns / 1e6,
            b.ratio(),
            b.shard_epochs,
            b.cross_shard_packets,
            b.horizon_stalls,
        );
    }
    println!(
        "sharded event-loop gate (threshold {min_shard_ratio}x, best \
         {best_shard_ratio:.2}x) -> {}",
        if !shard_enforced {
            // A 4-shard speedup claim is unmeasurable on fewer cores;
            // the ratios above are recorded, the gate is waived.
            format!("skipped: {cores} core(s) < {shard_count} shards")
        } else if shard_pass {
            "pass".to_string()
        } else {
            "FAIL".to_string()
        },
    );
    if !pass {
        std::process::exit(1);
    }
}
