//! CI perf-regression gate for the CSR route arenas.
//!
//! Measures the two hot paths the flat layout exists for — forwarding
//! decisions (route-table lookup + ECMP pick) and incremental route
//! repair — on the paper's k=10 fat-tree, compares the flat arenas
//! against a nested `Vec<Vec<Vec<u16>>>` baseline rebuilt from the
//! public accessors, and writes the medians to a machine-readable
//! `BENCH_csr.json`. Exits nonzero when the flat-vs-nested forwarding
//! ratio drops below the threshold, so a cache-hostile regression in
//! the arenas fails the job instead of rotting silently.
//!
//! ```sh
//! cargo run --release -p polyraptor_bench --bin bench_smoke -- \
//!     --smoke --out BENCH_csr.json --min-ratio 1.2
//! ```
//!
//! `--smoke` shrinks repeat counts (not the fabric: the ≥ 1.5× claim
//! is made at k=10 and is checked at k=10). The default threshold of
//! 1.2 leaves headroom for shared-runner noise below the measured
//! ~2.8× ratio.

use std::time::Instant;

use netsim::{FaultMask, NodeId, NodeKind, Topology};

/// Median of a sample set (ns); the samples are per-call averages.
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Deterministic (switch, destination-index, flow) visit order shared
/// by the flat and nested forwarding sweeps.
fn decision_pairs(t: &Topology, count: usize) -> Vec<(usize, usize, usize)> {
    let switches: Vec<NodeId> = (0..t.node_count() as u32)
        .map(NodeId)
        .filter(|&n| t.kind(n) == NodeKind::Switch)
        .collect();
    let n_hosts = t.hosts().len();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..count)
        .map(|_| {
            (
                switches[next() % switches.len()].0 as usize,
                next() % n_hosts,
                next(),
            )
        })
        .collect()
}

struct Forwarding {
    flat_ns: f64,
    nested_ns: f64,
    decisions: usize,
}

fn forwarding(t: &Topology, repeats: usize) -> Forwarding {
    let decisions = 65_536;
    let pairs = decision_pairs(t, decisions);
    let hosts = t.hosts().to_vec();
    let nested: Vec<Vec<Vec<u16>>> = (0..t.node_count() as u32)
        .map(|n| {
            hosts
                .iter()
                .map(|&h| t.try_next_ports_on(0, NodeId(n), h).to_vec())
                .collect()
        })
        .collect();
    let sweep_flat = || {
        let mut acc = 0u64;
        for &(s, h, f) in &pairs {
            let ports = t.try_next_ports_at(0, NodeId(s as u32), h);
            if !ports.is_empty() {
                acc += u64::from(ports[f % ports.len()]);
            }
        }
        acc
    };
    let sweep_nested = || {
        let mut acc = 0u64;
        for &(s, h, f) in &pairs {
            let ports = &nested[s][h];
            if !ports.is_empty() {
                acc += u64::from(ports[f % ports.len()]);
            }
        }
        acc
    };
    let time = |f: &dyn Fn() -> u64| {
        let start = Instant::now();
        std::hint::black_box(f());
        start.elapsed().as_nanos() as f64 / decisions as f64
    };
    // Warm both layouts once, then interleave the measured sweeps so
    // slow drift (thermal, noisy neighbours) hits both sides equally.
    std::hint::black_box(sweep_flat());
    std::hint::black_box(sweep_nested());
    let mut flat = Vec::with_capacity(repeats);
    let mut nested_t = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        flat.push(time(&sweep_flat));
        nested_t.push(time(&sweep_nested));
    }
    Forwarding {
        flat_ns: median(flat),
        nested_ns: median(nested_t),
        decisions,
    }
}

struct Repairs {
    single_link_ns: f64,
    switch_down_ns: f64,
    switch_up_ns: f64,
    full_recompute_ns: f64,
}

fn repairs(pristine: &Topology, repeats: usize) -> Repairs {
    let core = NodeId(pristine.node_count() as u32 - 1);
    let mut link_mask = FaultMask::new();
    link_mask.fail_link(pristine, core, 0);
    let mut node_mask = FaultMask::new();
    node_mask.fail_node(core);
    let time = |f: &mut dyn FnMut(&mut Topology), reps: usize| {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut t = pristine.clone();
            let start = Instant::now();
            f(&mut t);
            samples.push(start.elapsed().as_nanos() as f64);
        }
        median(samples)
    };
    let single_link_ns = time(
        &mut |t| {
            assert!(!t.repair_routes(&link_mask).full);
        },
        repeats,
    );
    let switch_down_ns = time(
        &mut |t| {
            assert!(!t.repair_routes(&node_mask).full);
        },
        repeats,
    );
    let full_recompute_ns = time(&mut |t| t.compute_routes_masked(&link_mask), repeats.min(5));
    // Restoration: fail the switch in (untimed) setup, time only the
    // back-to-healthy repair delta.
    let switch_up_ns = {
        let healthy = FaultMask::new();
        let mut samples = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let mut t = pristine.clone();
            t.repair_routes(&node_mask);
            let start = Instant::now();
            assert!(!t.repair_routes(&healthy).full);
            samples.push(start.elapsed().as_nanos() as f64);
        }
        median(samples)
    };
    Repairs {
        single_link_ns,
        switch_down_ns,
        switch_up_ns,
        full_recompute_ns,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_csr.json".to_string());
    let min_ratio: f64 = flag("--min-ratio")
        .map(|v| v.parse().expect("--min-ratio takes a number"))
        .unwrap_or(1.2);
    let repeats = if smoke { 9 } else { 31 };

    let k = 10usize;
    let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
    let hosts = t.hosts().len();
    let switches = t.node_count() - hosts;
    let fwd = forwarding(&t, repeats);
    let rep = repairs(&t, repeats);
    let ratio = fwd.nested_ns / fwd.flat_ns;
    let pass = ratio >= min_ratio;

    let json = format!(
        "{{\n  \"schema\": \"polyraptor-bench-csr/v1\",\n  \"mode\": \"{}\",\n  \
         \"fabric\": {{\"kind\": \"fat_tree\", \"k\": {k}, \"hosts\": {hosts}, \
         \"switches\": {switches}}},\n  \
         \"forwarding\": {{\"flat_ns_per_decision\": {:.3}, \
         \"nested_ns_per_decision\": {:.3}, \"ratio_flat_over_nested\": {:.3}, \
         \"decisions_per_sweep\": {}}},\n  \
         \"repair\": {{\"single_link_ns\": {:.0}, \"switch_down_ns\": {:.0}, \
         \"switch_up_ns\": {:.0}, \"full_recompute_ns\": {:.0}}},\n  \
         \"min_ratio\": {min_ratio},\n  \"pass\": {pass}\n}}\n",
        if smoke { "smoke" } else { "full" },
        fwd.flat_ns,
        fwd.nested_ns,
        ratio,
        fwd.decisions,
        rep.single_link_ns,
        rep.switch_down_ns,
        rep.switch_up_ns,
        rep.full_recompute_ns,
    );
    std::fs::write(&out, &json).expect("write BENCH_csr.json");
    print!("{json}");
    println!(
        "forwarding flat {:.2} ns vs nested {:.2} ns per decision ({ratio:.2}x, \
         threshold {min_ratio}x) -> {}",
        fwd.flat_ns,
        fwd.nested_ns,
        if pass { "pass" } else { "FAIL" },
    );
    if !pass {
        std::process::exit(1);
    }
}
