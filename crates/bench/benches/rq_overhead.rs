//! E4 — the reception-overhead / decode-failure contract.
//!
//! The paper leans on RFC 6330's property that "decoding fails only 1 in
//! 1,000,000 when the receiver collects n + 2 encoding symbols". This
//! bench measures the failure rate of *our* code empirically at +0/+1/+2
//! overhead (validating DESIGN.md substitution S1) and times decode at
//! each overhead level.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rq::{rand::Xorshift64, Decoder, Encoder};

fn measure_failure_rates() {
    let k = 64usize;
    let d: Vec<u8> = (0..k * 64).map(|i| (i * 7) as u8).collect();
    for (mode, enc) in [
        ("systematic", Encoder::new(&d, 64).unwrap()),
        ("legacy", Encoder::legacy(&d, 64).unwrap()),
    ] {
        println!("# measured decode-failure rates (K = {k}, {mode}, repair-only worst case)");
        for overhead in 0..=2usize {
            let trials = match overhead {
                0 => 3000,
                1 => 2000,
                _ => 1000,
            };
            let mut failures = 0;
            let mut rng = Xorshift64::new(42 + overhead as u64);
            for _ in 0..trials {
                let mut dec = Decoder::new(enc.params());
                let mut added = 0;
                // Random distinct repair symbols from a wide ESI range:
                // the hardest case (no systematic fast path).
                while added < k + overhead {
                    let esi = k as u32 + rng.next_below(100 * k as u64) as u32;
                    if dec.push(esi, enc.symbol(esi)) {
                        added += 1;
                    }
                }
                if dec.try_decode().is_err() {
                    failures += 1;
                }
            }
            println!(
                "#   +{overhead}: {failures}/{trials} = {:.4}% (RFC 6330 class: {}%)",
                100.0 * failures as f64 / trials as f64,
                100.0 * 10f64.powi(-(2 * (overhead as i32 + 1)))
            );
        }
    }
}

fn decode_at_overhead(c: &mut Criterion) {
    measure_failure_rates();
    let mut g = c.benchmark_group("rq/decode_at_overhead");
    g.sample_size(10);
    let k = 256usize;
    let d: Vec<u8> = (0..k * 256).map(|i| (i * 13) as u8).collect();
    let enc = Encoder::new(&d, 256).unwrap();
    for overhead in [0usize, 2] {
        // Repair-only reception (worst case for the solver).
        let symbols: Vec<(u32, Vec<u8>)> = (0..(k + overhead) as u32)
            .map(|i| {
                let esi = k as u32 + 7 * i + 1;
                (esi, enc.symbol(esi))
            })
            .collect();
        g.bench_function(format!("repair_only_k256_plus{overhead}"), |b| {
            b.iter_batched(
                || symbols.clone(),
                |syms| {
                    let mut dec = Decoder::new(enc.params());
                    for (esi, s) in syms {
                        dec.push(esi, s);
                    }
                    // +0 may (rarely) be rank-deficient; that is part of
                    // the contract being measured, not a bench failure.
                    let _ = dec.try_decode();
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, decode_at_overhead);
criterion_main!(benches);
