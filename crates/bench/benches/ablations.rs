//! Ablations over the design choices DESIGN.md calls out (§4):
//!
//! * packet trimming vs drop-tail under Polyraptor;
//! * per-packet spraying vs per-flow ECMP;
//! * multicast pull policy: strict aggregation (paper §2 text) vs pull
//!   coalescing (`Any`, the default) — and straggler detach under strict;
//! * initial window sizing;
//! * RaptorQ-family code vs plain LT (reception overhead).
//!
//! Each ablation prints its headline comparison once, then benches one
//! representative configuration so regressions show up in CI timing.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::QueueConfig;
use polyraptor::MulticastPull;
use workload::{
    foreground_goodputs, run_incast_rq, run_storage_rq, Fabric, IncastScenario, RankCurve,
    RqRunOptions, StorageScenario,
};

const SESSIONS: usize = 40;

fn median_with(opts: &RqRunOptions, replicas: usize) -> f64 {
    let sc = StorageScenario::fig1a(SESSIONS, replicas, 1);
    let res = run_storage_rq(&sc, &Fabric::small(), opts);
    RankCurve::new(foreground_goodputs(&res)).median()
}

fn ablation_trimming() {
    let ndp = median_with(&RqRunOptions::default(), 1);
    let opts = RqRunOptions {
        switch_queue: QueueConfig::DROPTAIL_DEFAULT,
        ..Default::default()
    };
    let droptail = median_with(&opts, 1);
    println!("# ablation trimming: NDP queue median {ndp:.3} vs drop-tail {droptail:.3} Gbps");
}

fn ablation_spray() {
    let spray = median_with(&RqRunOptions::default(), 1);
    let opts = RqRunOptions {
        route: netsim::RouteMode::EcmpFlow,
        ..Default::default()
    };
    let ecmp = median_with(&opts, 1);
    println!("# ablation path selection: spray median {spray:.3} vs per-flow ECMP {ecmp:.3} Gbps");
}

fn ablation_multicast_policy() {
    let any = median_with(&RqRunOptions::default(), 3);
    let mut strict = RqRunOptions::default();
    strict.pr.multicast = MulticastPull::All;
    let all = median_with(&strict, 3);
    let mut detach = strict;
    detach.pr.straggler_lag = Some(64);
    let all_detach = median_with(&detach, 3);
    println!(
        "# ablation multicast policy (3 replicas): Any {any:.3} | All {all:.3} | All+detach {all_detach:.3} Gbps"
    );
}

fn ablation_window() {
    for w in [8u32, 16, 32] {
        let mut opts = RqRunOptions::default();
        opts.pr.initial_window = w;
        let m = median_with(&opts, 1);
        println!("# ablation initial window {w}: median {m:.3} Gbps");
    }
}

fn ablation_incast_trimming() {
    let sc = IncastScenario {
        senders: 8,
        block_bytes: 256 << 10,
        seed: 1,
    };
    let ndp = run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    let opts = RqRunOptions {
        switch_queue: QueueConfig::DROPTAIL_DEFAULT,
        ..Default::default()
    };
    let droptail = run_incast_rq(&sc, &Fabric::small(), &opts);
    println!("# ablation incast queue: trimming {ndp:.3} vs drop-tail {droptail:.3} Gbps");
}

fn ablation_lt_overhead() {
    // Reception overhead: symbols needed beyond k to decode. The
    // precoded RaptorQ-family code needs ~0-2; plain LT needs Θ(√k·ln²k).
    let k = 100usize;
    let data: Vec<u8> = (0..k * 64).map(|i| i as u8).collect();
    let enc = rq::Encoder::new(&data, 64).unwrap();
    let mut dec = rq::Decoder::new(enc.params());
    let mut needed_rq = 0;
    for i in 0.. {
        let esi = k as u32 + i; // repair-only (worst case)
        dec.push(esi, enc.symbol(esi));
        needed_rq += 1;
        if dec.try_decode().is_ok() {
            break;
        }
    }
    let lt = rq::lt::LtEncoder::new(&data, 64, 7);
    let mut ldec = rq::lt::LtDecoder::new(k, 64, data.len(), 7);
    let mut needed_lt = 0;
    for esi in 0.. {
        ldec.push(esi, lt.symbol(esi));
        needed_lt += 1;
        if ldec.try_decode().is_some() {
            break;
        }
    }
    println!(
        "# ablation code family (k={k}): RQ decoded at k+{} vs plain LT at k+{}",
        needed_rq - k,
        needed_lt - k
    );
}

fn ablation_hotspot() {
    use workload::{run_hotspot_rq, HotspotScenario};
    let sc = HotspotScenario {
        transfers: 6,
        object_bytes: 1 << 20,
        degraded_frac: 0.3,
        degraded_rate_frac: 0.1,
        seed: 11,
    };
    let spray = run_hotspot_rq(&sc, &Fabric::small(), &RqRunOptions::default());
    let opts = RqRunOptions {
        route: netsim::RouteMode::EcmpFlow,
        ..Default::default()
    };
    let ecmp = run_hotspot_rq(&sc, &Fabric::small(), &opts);
    let worst = |r: &Vec<workload::TransferResult>| {
        RankCurve::new(r.iter().map(|t| t.goodput_gbps()).collect())
    };
    let (s, e) = (worst(&spray), worst(&ecmp));
    println!(
        "# ablation hotspots (30% links at 10%): spray worst {:.3} / median {:.3} vs ECMP worst {:.3} / median {:.3} Gbps",
        s.at(s.len() - 1),
        s.median(),
        e.at(e.len() - 1),
        e.median()
    );
}

fn ablations(c: &mut Criterion) {
    ablation_trimming();
    ablation_spray();
    ablation_multicast_policy();
    ablation_window();
    ablation_incast_trimming();
    ablation_lt_overhead();
    ablation_hotspot();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("rq_multicast_any_40sessions", |b| {
        b.iter(|| {
            let sc = StorageScenario::fig1a(SESSIONS, 3, 1);
            run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default())
        })
    });
    g.bench_function("rq_multicast_all_40sessions", |b| {
        let mut opts = RqRunOptions::default();
        opts.pr.multicast = MulticastPull::All;
        b.iter(|| {
            let sc = StorageScenario::fig1a(SESSIONS, 3, 1);
            run_storage_rq(&sc, &Fabric::small(), &opts)
        })
    });
    g.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
