//! E1 (scaled) — Figure 1a: multicast replication vs TCP multi-unicast.
//!
//! Criterion-sized version of `src/bin/fig1a.rs`: a 16-host fabric and a
//! few dozen sessions per run. Prints the four medians once (shape
//! check: RQ-3rep ≈ RQ-1rep; TCP-3rep ≤ uplink/3) and benches the
//! end-to-end simulation wall time. The full-scale figure comes from
//! `cargo run --release -p polyraptor-bench --bin fig1a -- --full`.

use criterion::{criterion_group, criterion_main, Criterion};
use workload::{
    foreground_goodputs, run_storage_rq, run_storage_tcp, Fabric, RankCurve, RqRunOptions,
    StorageScenario, TcpRunOptions,
};

const SESSIONS: usize = 40;

fn print_medians() {
    for (label, reps, rq) in [
        ("RQ-1rep", 1usize, true),
        ("RQ-3rep", 3, true),
        ("TCP-1rep", 1, false),
        ("TCP-3rep", 3, false),
    ] {
        let sc = StorageScenario::fig1a(SESSIONS, reps, 1);
        let res = if rq {
            run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default())
        } else {
            run_storage_tcp(&sc, &Fabric::small(), &TcpRunOptions::default())
        };
        let c = RankCurve::new(foreground_goodputs(&res));
        println!("# fig1a(scaled) median {label}: {:.3} Gbps", c.median());
    }
}

fn fig1a_scaled(c: &mut Criterion) {
    print_medians();
    let mut g = c.benchmark_group("fig1a");
    g.sample_size(10);
    g.bench_function("rq_3rep_40sessions_k4", |b| {
        b.iter(|| {
            let sc = StorageScenario::fig1a(SESSIONS, 3, 1);
            run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default())
        })
    });
    g.bench_function("tcp_3rep_40sessions_k4", |b| {
        b.iter(|| {
            let sc = StorageScenario::fig1a(SESSIONS, 3, 1);
            run_storage_tcp(&sc, &Fabric::small(), &TcpRunOptions::default())
        })
    });
    g.finish();
}

criterion_group!(benches, fig1a_scaled);
criterion_main!(benches);
