//! Fabric-dynamics benchmarks: the cost of surviving a core-switch
//! failure, the raw cost of a masked route recomputation, and the
//! incremental repair that replaces it after small fault deltas —
//! plus the simulated post-fault recovery tail with and without
//! batched sweep re-pulls.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netsim::{FaultMask, Topology};
use workload::{run_churn_rq, run_fault_rq, ChurnScenario, Fabric, FaultScenario, RqRunOptions};

fn fault_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault/recovery");
    g.sample_size(10);
    // A full Polyraptor fault run on the 16-host fabric: 4 x 128 KB
    // 3-replica writes, busiest core dies mid-transfer, all sessions
    // must complete.
    let sc = FaultScenario::fig1_failure(4, 128 << 10, 11);
    let fabric = Fabric::small();
    g.throughput(Throughput::Bytes((4 * 3 * (128 << 10)) as u64));
    g.bench_function("core_failure_rq_k4", |b| {
        b.iter(|| run_fault_rq(&sc, &fabric, &RqRunOptions::default()));
    });
    g.finish();
}

/// The recovery-tail measurement: identical fault runs with the batched
/// sweep recovery on (default) and off (legacy single-nudge sweeps).
/// Wall time is reported by criterion; the *simulated* post-fault tails
/// are printed alongside, since that is the metric batching improves.
fn recovery_tail(c: &mut Criterion) {
    let sc = FaultScenario::fig1_failure(4, 128 << 10, 11);
    let fabric = Fabric::small();
    let batched_opts = RqRunOptions::default();
    let mut legacy_opts = RqRunOptions::default();
    legacy_opts.pr.repull_batch_cap = 0;
    for (name, opts) in [("batched", &batched_opts), ("legacy", &legacy_opts)] {
        let tail = run_fault_rq(&sc, &fabric, opts)
            .recovery()
            .expect("faulted run")
            .max_ns;
        println!("fault/recovery_tail/{name}: simulated post-fault tail {tail} ns");
    }
    let mut g = c.benchmark_group("fault/recovery_tail");
    g.sample_size(10);
    g.bench_function("batched_repull", |b| {
        b.iter(|| run_fault_rq(&sc, &fabric, &batched_opts));
    });
    g.bench_function("legacy_sweep", |b| {
        b.iter(|| run_fault_rq(&sc, &fabric, &legacy_opts));
    });
    g.finish();
}

/// The churn soak as a benchmark: 6 fetches under a 12-event Poisson
/// fault process (links, flaps, switches, host failures + re-target) on
/// the 16-host fabric. The simulated completion/recovery percentiles
/// are printed alongside the wall time.
fn churn(c: &mut Criterion) {
    let mut sc = ChurnScenario::ten_event(6, 2 << 20, 2);
    sc.fault_events = 12;
    let fabric = Fabric::small();
    let rep = run_churn_rq(&sc, &fabric, &RqRunOptions::default());
    let comp = rep.completion();
    println!(
        "fault/churn: completion p50 {} p99 {} max {} ns; {} stranded / {} re-targeted; \
         {} flaps coalesced",
        comp.p50_ns,
        comp.p99_ns,
        comp.max_ns,
        rep.stranded_sessions,
        rep.retargeted_sessions,
        rep.fabric.flaps_coalesced,
    );
    let mut g = c.benchmark_group("fault/churn");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((6 * (2 << 20)) as u64));
    g.bench_function("poisson_12ev_k4", |b| {
        b.iter(|| run_churn_rq(&sc, &fabric, &RqRunOptions::default()));
    });
    let mut spread = sc;
    spread.shared_risk_placement = true;
    g.bench_function("poisson_12ev_k4_shared_risk", |b| {
        b.iter(|| run_churn_rq(&spread, &fabric, &RqRunOptions::default()));
    });
    g.finish();
}

fn reroute_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault/reroute");
    g.sample_size(10);
    // Masked all-pairs route recomputation on the paper's 250-host
    // fat-tree — what every mid-run fault paid before incremental
    // repair existed, and what mass fault deltas still pay.
    let mut topo = Topology::fat_tree(10, 1_000_000_000, 10_000);
    let core = topo.core_switches()[0];
    let mut mask = FaultMask::new();
    mask.fail_node(core);
    g.bench_function("masked_recompute_k10", |b| {
        b.iter(|| topo.compute_routes_masked(&mask));
    });

    // Incremental repair of the same failures: surgery plus a handful of
    // per-destination rebuilds instead of 250 BFS trees. The pristine
    // topology is cloned outside the timed section (iter_batched), so
    // the comparison against masked_recompute_k10 is repair-work only.
    // Note `core_switches()` returns every host-free switch (aggs too);
    // the true core layer is the last-added (k/2)² nodes.
    let pristine = Topology::fat_tree(10, 1_000_000_000, 10_000);
    let true_core = netsim::NodeId(pristine.node_count() as u32 - 1);
    // Single link failure: one agg–core uplink. The core keeps serving
    // 9 pods but loses its only path into the tenth, so that pod's 25
    // destination trees need a BFS rebuild.
    let mut link_mask = FaultMask::new();
    link_mask.fail_link(&pristine, true_core, 0);
    g.bench_function("repair_single_link_k10", |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut t| t.repair_routes(&link_mask),
            BatchSize::LargeInput,
        );
    });
    // Whole core-switch failure (pure surgery on a fat-tree: every
    // agg keeps an equal-cost sibling core, no BFS at all).
    let mut switch_mask = FaultMask::new();
    switch_mask.fail_node(true_core);
    g.bench_function("repair_switch_down_k10", |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut t| t.repair_routes(&switch_mask),
            BatchSize::LargeInput,
        );
    });
    // Restore repair: the switch comes back. Before this existed every
    // restoration paid the full masked recompute above; now it is pure
    // restore surgery (zero BFS on a fat-tree core).
    let mut failed = pristine.clone();
    failed.repair_routes(&switch_mask);
    let empty_mask = FaultMask::new();
    g.bench_function("repair_switch_up_k10", |b| {
        b.iter_batched(
            || failed.clone(),
            |mut t| t.repair_routes(&empty_mask),
            BatchSize::LargeInput,
        );
    });

    // Layered policies (4 FatPaths-style layers): per-layer restore
    // repair vs the full recompute it replaces — the guard that layered
    // restorations stay well under the full bill, on the k=10 fat-tree
    // and on a 150-host Jellyfish. (The old `RouteSet::NonMinimal`
    // path paid `masked_recompute_layered_*` on every restoration.)
    for (label, mut layered) in [
        ("k10", Topology::fat_tree(10, 1_000_000_000, 10_000)),
        (
            "jelly",
            Topology::jellyfish(50, 5, 3, 1_000_000_000, 10_000, 1),
        ),
    ] {
        layered.set_policy(netsim::RoutingPolicy::layered(4, 7));
        layered.compute_routes();
        // Victim: the first inter-switch link of the first switch (an
        // edge uplink on the fat-tree, a random-graph link on
        // Jellyfish).
        let victim = (0..layered.node_count() as u32)
            .map(netsim::NodeId)
            .filter(|&n| layered.kind(n) == netsim::NodeKind::Switch)
            .find_map(|n| {
                layered
                    .node_ports(n)
                    .iter()
                    .position(|p| layered.kind(p.peer) == netsim::NodeKind::Switch)
                    .map(|p| (n, p as u16))
            })
            .expect("fabric has switch-switch links");
        let mut link_mask = FaultMask::new();
        link_mask.fail_link(&layered, victim.0, victim.1);
        let mut layered_failed = layered.clone();
        let outcome = layered_failed.repair_routes(&link_mask);
        assert!(!outcome.full, "layered link repair must stay incremental");
        g.bench_function(format!("masked_recompute_layered_{label}"), |b| {
            b.iter_batched(
                || layered.clone(),
                |mut t| t.compute_routes_masked(&link_mask),
                BatchSize::LargeInput,
            );
        });
        g.bench_function(format!("repair_layered_restore_{label}"), |b| {
            b.iter_batched(
                || layered_failed.clone(),
                |mut t| {
                    let o = t.repair_routes(&empty_mask);
                    assert!(!o.full, "layered restore repair must stay incremental");
                    o
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, fault_recovery, recovery_tail, churn, reroute_cost);
criterion_main!(benches);
