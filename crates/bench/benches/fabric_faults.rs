//! Fabric-dynamics benchmarks: the cost of surviving a core-switch
//! failure, and the raw cost of a masked route recomputation (the
//! operation every mid-run fault pays for).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::{FaultMask, Topology};
use workload::{run_fault_rq, Fabric, FaultScenario, RqRunOptions};

fn fault_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault/recovery");
    g.sample_size(10);
    // A full Polyraptor fault run on the 16-host fabric: 4 x 128 KB
    // 3-replica writes, busiest core dies mid-transfer, all sessions
    // must complete.
    let sc = FaultScenario::fig1_failure(4, 128 << 10, 11);
    let fabric = Fabric::small();
    g.throughput(Throughput::Bytes((4 * 3 * (128 << 10)) as u64));
    g.bench_function("core_failure_rq_k4", |b| {
        b.iter(|| run_fault_rq(&sc, &fabric, &RqRunOptions::default()));
    });
    g.finish();
}

fn reroute_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault/reroute");
    g.sample_size(10);
    // Masked all-pairs route recomputation on the paper's 250-host
    // fat-tree — the per-fault control-plane bill.
    let mut topo = Topology::fat_tree(10, 1_000_000_000, 10_000);
    let core = topo.core_switches()[0];
    let mut mask = FaultMask::new();
    mask.fail_node(core);
    g.bench_function("masked_recompute_k10", |b| {
        b.iter(|| topo.compute_routes_masked(&mask));
    });
    g.finish();
}

criterion_group!(benches, fault_recovery, reroute_cost);
criterion_main!(benches);
