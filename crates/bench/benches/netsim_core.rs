//! Simulator-core benchmarks: raw event throughput of the fabric under
//! a saturating workload (bounds how large the figure runs can scale).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::{
    Agent, Ctx, Dest, FlowId, NodeKind, Packet, SimConfig, SimPayload, SimTime, Simulator, Topology,
};

#[derive(Debug, Clone)]
enum P {
    Data,
    Hdr,
}

impl SimPayload for P {
    fn is_control(&self) -> bool {
        matches!(self, P::Hdr)
    }
    fn trim(&self) -> Option<Self> {
        Some(P::Hdr)
    }
}

struct Blaster {
    dst: netsim::NodeId,
    n: u32,
    received: u64,
}

impl Agent<P> for Blaster {
    fn on_packet(&mut self, _p: Packet<P>, _ctx: &mut Ctx<P>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<P>) {
        for i in 0..self.n {
            ctx.send(Packet {
                src: ctx.node,
                dst: Dest::Host(self.dst),
                flow: FlowId(u64::from(ctx.node.0) << 32 | u64::from(i)),
                size: 1500,
                payload: P::Data,
            });
        }
    }
}

fn event_throughput(c: &mut Criterion) {
    // Both event-loop micro-optimisations land here: the hot loop
    // does one heap pop per node event (no peek-then-pop double
    // access), and `Arrive` boxes its packet so the heap sifts a
    // 48-byte key-plus-pointer instead of the whole payload. The
    // incast shape is push-pop interleaved (deep queues at the
    // victim); the all-pairs shape below is pop-dominated with a
    // wide heap — together they bound both sift directions.
    let mut g = c.benchmark_group("netsim/event_throughput");
    g.sample_size(10);
    // 15 hosts blast 200 packets each at one victim across a k=4
    // fat-tree: heavy queueing, trimming, multipath.
    g.throughput(Throughput::Elements(15 * 200));
    g.bench_function("incast_burst_k4", |b| {
        b.iter(|| {
            let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
            let hosts = topo.hosts().to_vec();
            let victim = hosts[0];
            let mut sim: Simulator<P, Blaster> = Simulator::new(topo, SimConfig::ndp(7));
            for &h in &hosts {
                sim.set_agent(
                    h,
                    Blaster {
                        dst: victim,
                        n: 200,
                        received: 0,
                    },
                );
            }
            for &h in &hosts[1..] {
                sim.schedule_timer(h, SimTime::ZERO, 0);
            }
            sim.run_to_completion();
            std::hint::black_box(sim.stats().events)
        })
    });
    // Every host blasts its diagonal peer: no single victim, so the
    // event heap stays wide and the loop spends its time in pops and
    // sifts rather than queue churn.
    g.throughput(Throughput::Elements(16 * 200));
    g.bench_function("all_pairs_burst_k4", |b| {
        b.iter(|| {
            let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
            let hosts = topo.hosts().to_vec();
            let n = hosts.len();
            let mut sim: Simulator<P, Blaster> = Simulator::new(topo, SimConfig::ndp(7));
            for (i, &h) in hosts.iter().enumerate() {
                sim.set_agent(
                    h,
                    Blaster {
                        dst: hosts[(i + n / 2) % n],
                        n: 200,
                        received: 0,
                    },
                );
            }
            for &h in &hosts {
                sim.schedule_timer(h, SimTime::ZERO, 0);
            }
            sim.run_to_completion();
            std::hint::black_box(sim.stats().events)
        })
    });
    g.finish();
}

fn fat_tree_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/fat_tree_build");
    g.sample_size(10);
    for k in [4usize, 10] {
        g.bench_function(format!("k={k}_with_routes"), |b| {
            b.iter(|| Topology::fat_tree(std::hint::black_box(k), 1_000_000_000, 10_000))
        });
    }
    g.finish();
}

fn switch_kind(t: &Topology) -> usize {
    (0..t.node_count())
        .filter(|&n| t.kind(netsim::NodeId(n as u32)) == NodeKind::Switch)
        .count()
}

fn routing_lookup(c: &mut Criterion) {
    let t = Topology::fat_tree(10, 1_000_000_000, 10_000);
    assert_eq!(switch_kind(&t), 125);
    let hosts = t.hosts().to_vec();
    let edge = t.edge_switch(hosts[0]);
    let mut g = c.benchmark_group("netsim/routing");
    g.bench_function("next_ports_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % hosts.len();
            if hosts[i] != hosts[0] && t.edge_switch(hosts[i]) != edge {
                std::hint::black_box(t.next_ports(edge, hosts[i]).len())
            } else {
                0
            }
        })
    });
    g.finish();
}

fn forwarding_flat_vs_nested(c: &mut Criterion) {
    // One forwarding decision = route-table lookup + ECMP-style pick.
    // The CSR arena resolves it with two offset reads into one flat
    // buffer; the pre-refactor layout chased three pointers
    // (`Vec<Vec<Vec<u16>>>`). The nested baseline here is rebuilt from
    // the public accessors, so the comparison tracks whatever the
    // arenas currently advertise.
    let t = Topology::fat_tree(10, 1_000_000_000, 10_000);
    let hosts = t.hosts().to_vec();
    let switches: Vec<netsim::NodeId> = (0..t.node_count() as u32)
        .map(netsim::NodeId)
        .filter(|&n| t.kind(n) == NodeKind::Switch)
        .collect();
    let nested: Vec<Vec<Vec<u16>>> = (0..t.node_count() as u32)
        .map(|n| {
            hosts
                .iter()
                .map(|&h| t.try_next_ports_on(0, netsim::NodeId(n), h).to_vec())
                .collect()
        })
        .collect();
    // A shared pseudo-random (switch, destination, flow) visit order,
    // long enough that neither layout stays resident in L1.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let pairs: Vec<(usize, usize, usize)> = (0..65536)
        .map(|_| {
            (
                switches[next() % switches.len()].0 as usize,
                next() % hosts.len(),
                next(),
            )
        })
        .collect();
    let mut g = c.benchmark_group("netsim/forwarding");
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("decide_flat_k10", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, h, f) in &pairs {
                let ports = t.try_next_ports_at(0, netsim::NodeId(s as u32), h);
                if !ports.is_empty() {
                    acc += u64::from(ports[f % ports.len()]);
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("decide_nested_k10", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(s, h, f) in &pairs {
                let ports = &nested[s][h];
                if !ports.is_empty() {
                    acc += u64::from(ports[f % ports.len()]);
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    event_throughput,
    fat_tree_construction,
    routing_lookup,
    forwarding_flat_vs_nested
);
criterion_main!(benches);
