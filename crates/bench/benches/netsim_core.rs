//! Simulator-core benchmarks: raw event throughput of the fabric under
//! a saturating workload (bounds how large the figure runs can scale).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::{
    Agent, Ctx, Dest, FlowId, NodeKind, Packet, SimConfig, SimPayload, SimTime, Simulator, Topology,
};

#[derive(Debug, Clone)]
enum P {
    Data,
    Hdr,
}

impl SimPayload for P {
    fn is_control(&self) -> bool {
        matches!(self, P::Hdr)
    }
    fn trim(&self) -> Option<Self> {
        Some(P::Hdr)
    }
}

struct Blaster {
    dst: netsim::NodeId,
    n: u32,
    received: u64,
}

impl Agent<P> for Blaster {
    fn on_packet(&mut self, _p: Packet<P>, _ctx: &mut Ctx<P>) {
        self.received += 1;
    }
    fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<P>) {
        for i in 0..self.n {
            ctx.send(Packet {
                src: ctx.node,
                dst: Dest::Host(self.dst),
                flow: FlowId(u64::from(ctx.node.0) << 32 | u64::from(i)),
                size: 1500,
                payload: P::Data,
            });
        }
    }
}

fn event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/event_throughput");
    g.sample_size(10);
    // 15 hosts blast 200 packets each at one victim across a k=4
    // fat-tree: heavy queueing, trimming, multipath.
    g.throughput(Throughput::Elements(15 * 200));
    g.bench_function("incast_burst_k4", |b| {
        b.iter(|| {
            let topo = Topology::fat_tree(4, 1_000_000_000, 10_000);
            let hosts = topo.hosts().to_vec();
            let victim = hosts[0];
            let mut sim: Simulator<P, Blaster> = Simulator::new(topo, SimConfig::ndp(7));
            for &h in &hosts {
                sim.set_agent(
                    h,
                    Blaster {
                        dst: victim,
                        n: 200,
                        received: 0,
                    },
                );
            }
            for &h in &hosts[1..] {
                sim.schedule_timer(h, SimTime::ZERO, 0);
            }
            sim.run_to_completion();
            std::hint::black_box(sim.stats().events)
        })
    });
    g.finish();
}

fn fat_tree_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/fat_tree_build");
    g.sample_size(10);
    for k in [4usize, 10] {
        g.bench_function(format!("k={k}_with_routes"), |b| {
            b.iter(|| Topology::fat_tree(std::hint::black_box(k), 1_000_000_000, 10_000))
        });
    }
    g.finish();
}

fn switch_kind(t: &Topology) -> usize {
    (0..t.node_count())
        .filter(|&n| t.kind(netsim::NodeId(n as u32)) == NodeKind::Switch)
        .count()
}

fn routing_lookup(c: &mut Criterion) {
    let t = Topology::fat_tree(10, 1_000_000_000, 10_000);
    assert_eq!(switch_kind(&t), 125);
    let hosts = t.hosts().to_vec();
    let edge = t.edge_switch(hosts[0]);
    let mut g = c.benchmark_group("netsim/routing");
    g.bench_function("next_ports_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % hosts.len();
            if hosts[i] != hosts[0] && t.edge_switch(hosts[i]) != edge {
                std::hint::black_box(t.next_ports(edge, hosts[i]).len())
            } else {
                0
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    event_throughput,
    fat_tree_construction,
    routing_lookup
);
criterion_main!(benches);
