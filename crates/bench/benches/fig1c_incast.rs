//! E3 (scaled) — Figure 1c: the Incast exchange.
//!
//! Shape check at one representative point (8 synchronized senders on
//! the 16-host fabric): Polyraptor sustains near line rate where TCP
//! collapses into RTOmin stalls. The full sweep (2..70 senders, 95% CI
//! over 5 seeds) is `--bin fig1c`.

use criterion::{criterion_group, criterion_main, Criterion};
use workload::{
    run_incast_rq, run_incast_tcp, Fabric, IncastScenario, RqRunOptions, TcpRunOptions,
};

fn print_point() {
    for (label, block) in [("256KB", 256usize << 10), ("70KB", 70 << 10)] {
        let sc = IncastScenario {
            senders: 8,
            block_bytes: block,
            seed: 1,
        };
        let rq = run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        let tcp = run_incast_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
        println!("# fig1c(scaled) 8 senders {label}: RQ {rq:.3} Gbps vs TCP {tcp:.3} Gbps");
    }
}

fn fig1c_scaled(c: &mut Criterion) {
    print_point();
    let mut g = c.benchmark_group("fig1c");
    g.sample_size(10);
    g.bench_function("rq_8senders_256KB", |b| {
        b.iter(|| {
            let sc = IncastScenario {
                senders: 8,
                block_bytes: 256 << 10,
                seed: 1,
            };
            run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default())
        })
    });
    g.bench_function("tcp_8senders_256KB", |b| {
        b.iter(|| {
            let sc = IncastScenario {
                senders: 8,
                block_bytes: 256 << 10,
                seed: 1,
            };
            run_incast_tcp(&sc, &Fabric::small(), &TcpRunOptions::default())
        })
    });
    g.finish();
}

criterion_group!(benches, fig1c_scaled);
criterion_main!(benches);
