//! E2 (scaled) — Figure 1b: multi-source fetch vs TCP partitioned fetch.
//!
//! Shape check: RQ-3snd ≥ RQ-1snd (replica load balancing) while
//! TCP-3snd sits near the per-stripe fair share. Full scale:
//! `cargo run --release -p polyraptor-bench --bin fig1b -- --full`.

use criterion::{criterion_group, criterion_main, Criterion};
use workload::{
    foreground_goodputs, run_storage_rq, run_storage_tcp, Fabric, RankCurve, RqRunOptions,
    StorageScenario, TcpRunOptions,
};

const SESSIONS: usize = 40;

fn print_medians() {
    for (label, senders, rq) in [
        ("RQ-1snd", 1usize, true),
        ("RQ-3snd", 3, true),
        ("TCP-1snd", 1, false),
        ("TCP-3snd", 3, false),
    ] {
        let sc = StorageScenario::fig1b(SESSIONS, senders, 1);
        let res = if rq {
            run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default())
        } else {
            run_storage_tcp(&sc, &Fabric::small(), &TcpRunOptions::default())
        };
        let c = RankCurve::new(foreground_goodputs(&res));
        println!("# fig1b(scaled) median {label}: {:.3} Gbps", c.median());
    }
}

fn fig1b_scaled(c: &mut Criterion) {
    print_medians();
    let mut g = c.benchmark_group("fig1b");
    g.sample_size(10);
    g.bench_function("rq_3snd_40sessions_k4", |b| {
        b.iter(|| {
            let sc = StorageScenario::fig1b(SESSIONS, 3, 1);
            run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default())
        })
    });
    g.bench_function("tcp_3snd_40sessions_k4", |b| {
        b.iter(|| {
            let sc = StorageScenario::fig1b(SESSIONS, 3, 1);
            run_storage_tcp(&sc, &Fabric::small(), &TcpRunOptions::default())
        })
    });
    g.finish();
}

criterion_group!(benches, fig1b_scaled);
criterion_main!(benches);
