//! Codec microbenchmarks (E5): encoder construction, per-symbol repair
//! cost (O(1) in K — the property that makes rateless sending cheap),
//! full decode at realistic loss, systematic-vs-legacy construction A/B,
//! and the GF(256) slice kernels everything above sits on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rq::{gf256, Decoder, Encoder};

fn data(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 + 17) as u8).collect()
}

fn encoder_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("rq/encoder_construction");
    g.sample_size(10);
    for k in [64usize, 256, 1024] {
        let d = data(k * 256);
        g.throughput(Throughput::Bytes(d.len() as u64));
        g.bench_function(format!("k={k}"), |b| {
            b.iter(|| Encoder::new(std::hint::black_box(&d), 256).unwrap())
        });
    }
    g.finish();
}

fn repair_symbol_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("rq/repair_symbol");
    g.sample_size(20);
    // Constant mean degree ⇒ repair cost independent of K.
    for k in [64usize, 1024] {
        let d = data(k * 1440);
        let enc = Encoder::new(&d, 1440).unwrap();
        g.throughput(Throughput::Bytes(1440));
        g.bench_function(format!("k={k}"), |b| {
            let mut esi = k as u32;
            b.iter(|| {
                esi += 1;
                enc.symbol(std::hint::black_box(esi))
            })
        });
    }
    g.finish();
}

fn decode_with_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("rq/decode_20pct_loss");
    g.sample_size(10);
    for k in [64usize, 256] {
        let d = data(k * 256);
        let enc = Encoder::new(&d, 256).unwrap();
        // 20% of source symbols lost, replaced by repairs (+2 overhead).
        let mut symbols: Vec<(u32, Vec<u8>)> = Vec::new();
        for esi in 0..k as u32 {
            if esi % 5 != 0 {
                symbols.push((esi, enc.symbol(esi)));
            }
        }
        let mut esi = k as u32;
        while symbols.len() < k + 2 {
            symbols.push((esi, enc.symbol(esi)));
            esi += 1;
        }
        g.throughput(Throughput::Bytes(d.len() as u64));
        g.bench_function(format!("k={k}"), |b| {
            b.iter_batched(
                || symbols.clone(),
                |syms| {
                    let mut dec = Decoder::new(enc.params());
                    for (esi, s) in syms {
                        dec.push(esi, s);
                    }
                    dec.try_decode().unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn systematic_fast_path(c: &mut Criterion) {
    // The zero-loss case must not pay any linear algebra (paper §2:
    // source symbols go straight to the application).
    let mut g = c.benchmark_group("rq/systematic_fast_path");
    g.sample_size(20);
    let k = 256usize;
    let d = data(k * 256);
    let enc = Encoder::new(&d, 256).unwrap();
    let symbols: Vec<(u32, Vec<u8>)> = (0..k as u32).map(|e| (e, enc.symbol(e))).collect();
    g.throughput(Throughput::Bytes(d.len() as u64));
    g.bench_function("k=256_lossless", |b| {
        b.iter_batched(
            || symbols.clone(),
            |syms| {
                let mut dec = Decoder::new(enc.params());
                for (esi, s) in syms {
                    dec.push(esi, s);
                }
                dec.try_decode().unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn systematic_vs_legacy(c: &mut Criterion) {
    // The tentpole A/B: the direct systematic construction vs the
    // solve-based legacy one, on both sides of the wire. Encode shows
    // the solve-free construction win; decode shows the shrinking
    // (seeded) solve against the fixed full-L solve at the same loss.
    let k = 256usize;
    let d = data(k * 256);

    let mut g = c.benchmark_group("rq/encode_ab");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(d.len() as u64));
    g.bench_function("systematic", |b| {
        b.iter(|| Encoder::new(std::hint::black_box(&d), 256).unwrap())
    });
    g.bench_function("legacy", |b| {
        b.iter(|| Encoder::legacy(std::hint::black_box(&d), 256).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("rq/decode_ab_10pct_loss");
    g.sample_size(10);
    for (label, enc) in [
        ("systematic", Encoder::new(&d, 256).unwrap()),
        ("legacy", Encoder::legacy(&d, 256).unwrap()),
    ] {
        let mut symbols: Vec<(u32, Vec<u8>)> = Vec::new();
        for esi in 0..k as u32 {
            if esi % 10 != 0 {
                symbols.push((esi, enc.symbol(esi)));
            }
        }
        let mut esi = k as u32;
        while symbols.len() < k + 2 {
            symbols.push((esi, enc.symbol(esi)));
            esi += 1;
        }
        g.throughput(Throughput::Bytes(d.len() as u64));
        g.bench_function(label, |b| {
            b.iter_batched(
                || symbols.clone(),
                |syms| {
                    let mut dec = Decoder::new(enc.params());
                    for (esi, s) in syms {
                        dec.push(esi, s);
                    }
                    dec.try_decode().unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn gf256_kernels(c: &mut Criterion) {
    // The solver and the HDPC construction are made of these two slice
    // ops; symbol-size slices are the real working set.
    let n = 1440usize;
    let src = data(n);
    let mut g = c.benchmark_group("rq/gf256");
    g.throughput(Throughput::Bytes(n as u64));
    g.bench_function("addmul_1440", |b| {
        let mut dst = data(n);
        let mut coef = 1u8;
        b.iter(|| {
            coef = coef.wrapping_mul(3).max(2);
            gf256::addmul(std::hint::black_box(&mut dst), &src, coef);
        })
    });
    g.bench_function("xor_assign_1440", |b| {
        let mut dst = data(n);
        b.iter(|| gf256::xor_assign(std::hint::black_box(&mut dst), &src))
    });
    g.bench_function("mul_slice_1440", |b| {
        let mut dst = data(n);
        let mut coef = 1u8;
        b.iter(|| {
            coef = coef.wrapping_mul(3).max(2);
            gf256::mul_slice(std::hint::black_box(&mut dst), coef);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    encoder_construction,
    repair_symbol_cost,
    decode_with_loss,
    systematic_fast_path,
    systematic_vs_legacy,
    gf256_kernels
);
criterion_main!(benches);
