//! Fault injection: deterministic plans of timed fabric events.
//!
//! A [`FaultPlan`] is a scripted sequence of link/switch failures,
//! repairs, and rate changes that the simulator executes **mid-run** at
//! their scheduled times (see `Simulator::schedule_faults`). Failures
//! are *detected* faults: the fabric recomputes its routing tables and
//! repairs multicast trees against the live [`FaultMask`], queued and
//! in-flight packets on the dead element are lost, and the simulator
//! counts both the losses and the reroutes. A [`FaultAction::RateChange`]
//! to zero, by contrast, models a *silent* failure — the link blackholes
//! traffic without the control plane noticing, which is the hardest case
//! for a transport (the `workload::hotspot` degradation uses this).
//!
//! The [`FaultMask`] is also usable standalone against
//! `Topology::compute_routes_masked` for what-if analysis (the
//! `fabric_invariants` property tests exercise single-failure
//! recoverability this way).

use std::collections::BTreeSet;

use crate::time::SimTime;
use crate::topology::{NodeId, Topology};

/// The set of links and nodes currently failed.
///
/// Links are tracked as *directed* `(node, port)` entries; the
/// `fail_link`/`restore_link` helpers insert both directions, so a
/// failed link is dead both ways. Determinism note: the sets are
/// `BTreeSet`s so iteration (and hence any derived recomputation) is
/// seed-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMask {
    links: BTreeSet<(u32, u16)>,
    nodes: BTreeSet<u32>,
}

impl FaultMask {
    /// A mask with nothing failed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }

    /// Fail the link behind `(node, port)`, both directions.
    pub fn fail_link(&mut self, topo: &Topology, node: NodeId, port: u16) {
        let p = topo.port(node, port);
        self.links.insert((node.0, port));
        self.links.insert((p.peer.0, p.peer_port));
    }

    /// Restore the link behind `(node, port)`, both directions.
    pub fn restore_link(&mut self, topo: &Topology, node: NodeId, port: u16) {
        let p = topo.port(node, port);
        self.links.remove(&(node.0, port));
        self.links.remove(&(p.peer.0, p.peer_port));
    }

    /// Fail a node (all its links become unusable).
    pub fn fail_node(&mut self, node: NodeId) {
        self.nodes.insert(node.0);
    }

    /// Restore a failed node.
    pub fn restore_node(&mut self, node: NodeId) {
        self.nodes.remove(&node.0);
    }

    /// Whether the link leaving `node` through `port` is failed.
    pub fn link_is_down(&self, node: NodeId, port: u16) -> bool {
        self.links.contains(&(node.0, port))
    }

    /// Whether a node is failed.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.nodes.contains(&node.0)
    }

    /// Whether the directed hop `(node, port)` is fully usable: the node
    /// itself, the link, and the far end are all up.
    pub fn port_is_up(&self, topo: &Topology, node: NodeId, port: u16) -> bool {
        !self.node_is_down(node)
            && !self.link_is_down(node, port)
            && !self.node_is_down(topo.port(node, port).peer)
    }

    /// Every failed directed `(node, port)` entry, in deterministic
    /// order. The simulator flushes these queues when routes converge:
    /// packets forwarded onto a dead link during the convergence window
    /// would otherwise strand there unaccounted.
    pub fn down_links(&self) -> impl Iterator<Item = (NodeId, u16)> + '_ {
        self.links.iter().map(|&(n, p)| (NodeId(n), p))
    }

    /// Directed `(node, port)` link entries failed in `self` but not in
    /// `earlier` — the link half of the delta
    /// [`Topology::repair_routes`](crate::topology::Topology::repair_routes)
    /// excises from the routing tables. Deterministic (set) order.
    pub fn new_links_since(&self, earlier: &FaultMask) -> Vec<(NodeId, u16)> {
        self.links
            .difference(&earlier.links)
            .map(|&(n, p)| (NodeId(n), p))
            .collect()
    }

    /// Nodes failed in `self` but not in `earlier` — the node half of
    /// the repair delta. Deterministic (set) order.
    pub fn new_nodes_since(&self, earlier: &FaultMask) -> Vec<NodeId> {
        self.nodes
            .difference(&earlier.nodes)
            .map(|&n| NodeId(n))
            .collect()
    }

    /// Whether `self` restores anything that `earlier` had failed.
    /// Restorations can shorten paths anywhere in the graph, so
    /// incremental route repair must fall back to a full recomputation
    /// whenever this is true.
    pub fn restores_since(&self, earlier: &FaultMask) -> bool {
        earlier.links.difference(&self.links).next().is_some()
            || earlier.nodes.difference(&self.nodes).next().is_some()
    }
}

/// One scripted fabric event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Detected link failure (both directions): queued packets on the
    /// two port queues are lost, in-flight packets on the wire are lost
    /// on arrival, and routes/multicast trees are recomputed.
    LinkDown {
        /// One endpoint of the link.
        node: NodeId,
        /// The failing port on `node`.
        port: u16,
    },
    /// Link repair (both directions); routes are recomputed.
    LinkUp {
        /// One endpoint of the link.
        node: NodeId,
        /// The repaired port on `node`.
        port: u16,
    },
    /// Detected switch failure: everything queued at the switch is lost,
    /// packets arriving at it (or in flight on its links) are lost, and
    /// routes/multicast trees are recomputed around it.
    SwitchDown {
        /// The failing switch (must be a switch, not a host).
        switch: NodeId,
    },
    /// Switch repair; routes are recomputed.
    SwitchUp {
        /// The repaired switch.
        switch: NodeId,
    },
    /// Set both directions of a link to `rate_bps` (the topology rate
    /// restores it). Zero blackholes the link **silently**: packets
    /// queue until overflow and no reroute happens — an undetected
    /// failure, unlike [`FaultAction::LinkDown`].
    RateChange {
        /// One endpoint of the link.
        node: NodeId,
        /// The affected port on `node`.
        port: u16,
        /// New rate in bits per second (0 = silent blackhole).
        rate_bps: u64,
    },
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute simulation time the action executes.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic script of timed fabric events.
///
/// Build one with the chainable helpers, hand it to
/// `Simulator::schedule_faults` before (or between) runs. Events firing
/// at the same instant execute in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.events.push(FaultEvent { at, action });
    }

    /// Chainable: detected link failure at `at`.
    pub fn link_down(mut self, at: SimTime, node: NodeId, port: u16) -> Self {
        self.push(at, FaultAction::LinkDown { node, port });
        self
    }

    /// Chainable: link repair at `at`.
    pub fn link_up(mut self, at: SimTime, node: NodeId, port: u16) -> Self {
        self.push(at, FaultAction::LinkUp { node, port });
        self
    }

    /// Chainable: detected switch failure at `at`.
    pub fn switch_down(mut self, at: SimTime, switch: NodeId) -> Self {
        self.push(at, FaultAction::SwitchDown { switch });
        self
    }

    /// Chainable: switch repair at `at`.
    pub fn switch_up(mut self, at: SimTime, switch: NodeId) -> Self {
        self.push(at, FaultAction::SwitchUp { switch });
        self
    }

    /// Chainable: rate change (0 = silent blackhole) at `at`.
    pub fn rate_change(mut self, at: SimTime, node: NodeId, port: u16, rate_bps: u64) -> Self {
        self.push(
            at,
            FaultAction::RateChange {
                node,
                port,
                rate_bps,
            },
        );
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeKind;

    fn line_topo() -> Topology {
        // h0 — s1 — h2
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        t
    }

    #[test]
    fn mask_fail_link_is_bidirectional() {
        let t = line_topo();
        let mut m = FaultMask::new();
        let (a, s) = (NodeId(0), NodeId(1));
        m.fail_link(&t, a, 0);
        assert!(m.link_is_down(a, 0));
        assert!(m.link_is_down(s, 0), "reverse direction also down");
        assert!(!m.port_is_up(&t, a, 0));
        m.restore_link(&t, a, 0);
        assert!(m.is_empty());
        assert!(m.port_is_up(&t, a, 0));
    }

    #[test]
    fn mask_node_down_kills_adjacent_hops() {
        let t = line_topo();
        let mut m = FaultMask::new();
        m.fail_node(NodeId(1));
        // Host -> dead switch hop unusable even though the link is fine.
        assert!(!m.port_is_up(&t, NodeId(0), 0));
        m.restore_node(NodeId(1));
        assert!(m.port_is_up(&t, NodeId(0), 0));
    }

    #[test]
    fn plan_builder_preserves_order() {
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_nanos(10), NodeId(1))
            .switch_up(SimTime::from_nanos(20), NodeId(1))
            .rate_change(SimTime::from_nanos(10), NodeId(0), 0, 0);
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.events()[0].action,
            FaultAction::SwitchDown { switch: NodeId(1) }
        );
        // Same-time events keep insertion order.
        assert_eq!(plan.events()[2].at, SimTime::from_nanos(10));
    }
}
