//! Fault injection: deterministic plans of timed fabric events.
//!
//! A [`FaultPlan`] is a scripted sequence of link/switch failures,
//! repairs, and rate changes that the simulator executes **mid-run** at
//! their scheduled times (see `Simulator::schedule_faults`). Failures
//! are *detected* faults: the fabric recomputes its routing tables and
//! repairs multicast trees against the live [`FaultMask`], queued and
//! in-flight packets on the dead element are lost, and the simulator
//! counts both the losses and the reroutes. A [`FaultAction::RateChange`]
//! to zero, by contrast, models a *silent* failure — the link blackholes
//! traffic without the control plane noticing, which is the hardest case
//! for a transport (the `workload::hotspot` degradation uses this).
//!
//! The [`FaultMask`] is also usable standalone against
//! `Topology::compute_routes_masked` for what-if analysis (the
//! `fabric_invariants` property tests exercise single-failure
//! recoverability this way).

use std::collections::BTreeSet;

use crate::time::SimTime;
use crate::topology::{NodeId, Topology};

/// The set of links and nodes currently failed.
///
/// Links are tracked as *directed* `(node, port)` entries; the
/// `fail_link`/`restore_link` helpers insert both directions, so a
/// failed link is dead both ways. Determinism note: the sets are
/// `BTreeSet`s so iteration (and hence any derived recomputation) is
/// seed-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMask {
    links: BTreeSet<(u32, u16)>,
    nodes: BTreeSet<u32>,
}

impl FaultMask {
    /// A mask with nothing failed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }

    /// Fail the link behind `(node, port)`, both directions.
    pub fn fail_link(&mut self, topo: &Topology, node: NodeId, port: u16) {
        let p = topo.port(node, port);
        self.links.insert((node.0, port));
        self.links.insert((p.peer.0, p.peer_port));
    }

    /// Restore the link behind `(node, port)`, both directions.
    pub fn restore_link(&mut self, topo: &Topology, node: NodeId, port: u16) {
        let p = topo.port(node, port);
        self.links.remove(&(node.0, port));
        self.links.remove(&(p.peer.0, p.peer_port));
    }

    /// Fail a node (all its links become unusable).
    pub fn fail_node(&mut self, node: NodeId) {
        self.nodes.insert(node.0);
    }

    /// Restore a failed node.
    pub fn restore_node(&mut self, node: NodeId) {
        self.nodes.remove(&node.0);
    }

    /// Whether the link leaving `node` through `port` is failed.
    pub fn link_is_down(&self, node: NodeId, port: u16) -> bool {
        self.links.contains(&(node.0, port))
    }

    /// Whether a node is failed.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.nodes.contains(&node.0)
    }

    /// Whether the directed hop `(node, port)` is fully usable: the node
    /// itself, the link, and the far end are all up.
    pub fn port_is_up(&self, topo: &Topology, node: NodeId, port: u16) -> bool {
        !self.node_is_down(node)
            && !self.link_is_down(node, port)
            && !self.node_is_down(topo.port(node, port).peer)
    }

    /// Every failed directed `(node, port)` entry, in deterministic
    /// order. The simulator flushes these queues when routes converge:
    /// packets forwarded onto a dead link during the convergence window
    /// would otherwise strand there unaccounted.
    pub fn down_links(&self) -> impl Iterator<Item = (NodeId, u16)> + '_ {
        self.links.iter().map(|&(n, p)| (NodeId(n), p))
    }

    /// Directed `(node, port)` link entries failed in `self` but not in
    /// `earlier` — the link half of the delta
    /// [`Topology::repair_routes`](crate::topology::Topology::repair_routes)
    /// excises from the routing tables. Deterministic (set) order.
    pub fn new_links_since(&self, earlier: &FaultMask) -> Vec<(NodeId, u16)> {
        self.links
            .difference(&earlier.links)
            .map(|&(n, p)| (NodeId(n), p))
            .collect()
    }

    /// Nodes failed in `self` but not in `earlier` — the node half of
    /// the repair delta. Deterministic (set) order.
    pub fn new_nodes_since(&self, earlier: &FaultMask) -> Vec<NodeId> {
        self.nodes
            .difference(&earlier.nodes)
            .map(|&n| NodeId(n))
            .collect()
    }

    /// Whether `self` restores anything that `earlier` had failed.
    pub fn restores_since(&self, earlier: &FaultMask) -> bool {
        earlier.links.difference(&self.links).next().is_some()
            || earlier.nodes.difference(&self.nodes).next().is_some()
    }

    /// Directed `(node, port)` link entries failed in `earlier` but no
    /// longer in `self` — the link half of a restoration delta, which
    /// [`Topology::repair_routes`](crate::topology::Topology::repair_routes)
    /// heals with bounded restore surgery. Deterministic (set) order.
    pub fn restored_links_since(&self, earlier: &FaultMask) -> Vec<(NodeId, u16)> {
        earlier
            .links
            .difference(&self.links)
            .map(|&(n, p)| (NodeId(n), p))
            .collect()
    }

    /// Nodes failed in `earlier` but no longer in `self` — the node half
    /// of a restoration delta. Deterministic (set) order.
    pub fn restored_nodes_since(&self, earlier: &FaultMask) -> Vec<NodeId> {
        earlier
            .nodes
            .difference(&self.nodes)
            .map(|&n| NodeId(n))
            .collect()
    }
}

/// One scripted fabric event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Detected link failure (both directions): queued packets on the
    /// two port queues are lost, in-flight packets on the wire are lost
    /// on arrival, and routes/multicast trees are recomputed.
    LinkDown {
        /// One endpoint of the link.
        node: NodeId,
        /// The failing port on `node`.
        port: u16,
    },
    /// Link repair (both directions); routes are recomputed.
    LinkUp {
        /// One endpoint of the link.
        node: NodeId,
        /// The repaired port on `node`.
        port: u16,
    },
    /// Detected node failure: everything queued at the node is lost,
    /// packets arriving at it (or in flight on its links) are lost, and
    /// routes/multicast trees are recomputed around it. Despite the
    /// name, **hosts are legal victims**: a host victim models a host /
    /// NIC failure — its access link goes dark, its queues flush, its
    /// sessions strand until the workload re-targets them (see
    /// `workload::churn`) or the host revives.
    SwitchDown {
        /// The failing node (switch, or host for a host/NIC failure).
        switch: NodeId,
    },
    /// Node repair; routes are recomputed. A repaired host's parked NIC
    /// (and its neighbours' queues towards it) resume transmitting.
    SwitchUp {
        /// The repaired node.
        switch: NodeId,
    },
    /// Set both directions of a link to `rate_bps` (the topology rate
    /// restores it). Zero blackholes the link **silently**: packets
    /// queue until overflow and no reroute happens — an undetected
    /// failure, unlike [`FaultAction::LinkDown`].
    RateChange {
        /// One endpoint of the link.
        node: NodeId,
        /// The affected port on `node`.
        port: u16,
        /// New rate in bits per second (0 = silent blackhole).
        rate_bps: u64,
    },
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute simulation time the action executes.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic script of timed fabric events.
///
/// Build one with the chainable helpers, hand it to
/// `Simulator::schedule_faults` before (or between) runs. Events firing
/// at the same instant execute in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.events.push(FaultEvent { at, action });
    }

    /// Chainable: detected link failure at `at`.
    pub fn link_down(mut self, at: SimTime, node: NodeId, port: u16) -> Self {
        self.push(at, FaultAction::LinkDown { node, port });
        self
    }

    /// Chainable: link repair at `at`.
    pub fn link_up(mut self, at: SimTime, node: NodeId, port: u16) -> Self {
        self.push(at, FaultAction::LinkUp { node, port });
        self
    }

    /// Chainable: detected switch failure at `at`.
    pub fn switch_down(mut self, at: SimTime, switch: NodeId) -> Self {
        self.push(at, FaultAction::SwitchDown { switch });
        self
    }

    /// Chainable: switch repair at `at`.
    pub fn switch_up(mut self, at: SimTime, switch: NodeId) -> Self {
        self.push(at, FaultAction::SwitchUp { switch });
        self
    }

    /// Chainable: host/NIC failure at `at` (a [`FaultAction::SwitchDown`]
    /// aimed at a host — see that variant for the semantics).
    pub fn host_down(self, at: SimTime, host: NodeId) -> Self {
        self.switch_down(at, host)
    }

    /// Chainable: host repair at `at`.
    pub fn host_up(self, at: SimTime, host: NodeId) -> Self {
        self.switch_up(at, host)
    }

    /// The hosts this plan takes down, with their failure instants and
    /// (when scripted) repair instants — what a workload needs to strand
    /// and re-target the victims' sessions. Insertion order.
    pub fn host_failures(&self, topo: &Topology) -> Vec<HostFailure> {
        let mut out: Vec<HostFailure> = Vec::new();
        for ev in &self.events {
            match ev.action {
                FaultAction::SwitchDown { switch }
                    if topo.kind(switch) == crate::topology::NodeKind::Host =>
                {
                    out.push(HostFailure {
                        host: switch,
                        at: ev.at,
                        repaired_at: None,
                    });
                }
                FaultAction::SwitchUp { switch } => {
                    if let Some(f) = out
                        .iter_mut()
                        .rev()
                        .find(|f| f.host == switch && f.repaired_at.is_none())
                    {
                        f.repaired_at = Some(ev.at);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Chainable: rate change (0 = silent blackhole) at `at`.
    pub fn rate_change(mut self, at: SimTime, node: NodeId, port: u16, rate_bps: u64) -> Self {
        self.push(
            at,
            FaultAction::RateChange {
                node,
                port,
                rate_bps,
            },
        );
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The failure instants of every down event (link and node alike),
    /// in insertion order — what fault reports correlate in-flight
    /// transfers against.
    pub fn down_instants(&self) -> Vec<SimTime> {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    FaultAction::LinkDown { .. } | FaultAction::SwitchDown { .. }
                )
            })
            .map(|e| e.at)
            .collect()
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One host failure scripted in a plan (see [`FaultPlan::host_failures`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFailure {
    /// The failed host.
    pub host: NodeId,
    /// When it goes down.
    pub at: SimTime,
    /// When the plan repairs it (`None` = permanent).
    pub repaired_at: Option<SimTime>,
}

/// Relative weights of the event classes a [`FaultProcess`] draws.
/// Classes whose weight is zero — or that have no candidate victims on
/// the given fabric — are simply never drawn.
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Detected switch–switch link failure (repaired after the process's
    /// repair delay, if any).
    pub link: f64,
    /// Transit-switch failure (host-free switches only, so no rack is
    /// isolated by a single event).
    pub switch: f64,
    /// Host/NIC failure — the replica-loss case the workload layer's
    /// session re-target exists for.
    pub host: f64,
    /// Link flap: down and back up within the flap delay, i.e. faster
    /// than the control plane converges — exercises coalescing.
    pub flap: f64,
}

impl FaultMix {
    /// Equal weight on all four classes.
    pub fn uniform() -> Self {
        Self {
            link: 1.0,
            switch: 1.0,
            host: 1.0,
            flap: 1.0,
        }
    }

    /// Links and flaps only (no element stays down for long).
    pub fn links_only() -> Self {
        Self {
            link: 1.0,
            switch: 0.0,
            host: 0.0,
            flap: 1.0,
        }
    }
}

/// A seeded Poisson process of fabric faults: exponential inter-arrival
/// gaps at a configured rate, each event drawing its class from a
/// [`FaultMix`] and its victim uniformly from the class's candidates.
/// [`FaultProcess::compile`] turns it into a deterministic [`FaultPlan`]
/// — same seed, same fabric ⇒ identical plan — so sustained fault churn
/// is scriptable and replayable like any single-fault scenario.
#[derive(Debug, Clone, Copy)]
pub struct FaultProcess {
    /// Fault events per second of simulated time.
    pub rate_per_sec: f64,
    /// Event class weights.
    pub mix: FaultMix,
    /// Repair each link/switch/host failure this long after it strikes
    /// (`None` = failures are permanent). Flaps repair after
    /// [`FaultProcess::flap_delay_ns`] regardless.
    pub repair_delay_ns: Option<u64>,
    /// Down-to-up delay of a flap event. Keep it below the simulator's
    /// `reroute_delay_ns` to exercise coalescing (the default 1 ms sits
    /// well under the 25 ms the fault scenarios use).
    pub flap_delay_ns: u64,
    /// RNG seed (arrival times, class draws, victim draws).
    pub seed: u64,
}

impl FaultProcess {
    /// A Poisson fault process at `rate_per_sec` with the given mix and
    /// repair delay; flap delay defaults to 1 ms and the seed to 0
    /// (override with the builder setters).
    pub fn poisson(rate_per_sec: f64, mix: FaultMix, repair_delay_ns: Option<u64>) -> Self {
        assert!(rate_per_sec > 0.0, "fault rate must be positive");
        Self {
            rate_per_sec,
            mix,
            repair_delay_ns,
            flap_delay_ns: 1_000_000,
            seed: 0,
        }
    }

    /// Builder: set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the flap down-to-up delay.
    pub fn flap_delay(mut self, ns: u64) -> Self {
        self.flap_delay_ns = ns;
        self
    }

    /// Compile `events` fault events over `topo` starting at `start`
    /// into a deterministic plan. Victim candidates per class: links =
    /// switch–switch links, switches = host-free (transit) switches,
    /// hosts = all hosts. Classes with zero weight or no candidates are
    /// never drawn; panics if that leaves no class at all.
    pub fn compile(&self, topo: &Topology, start: SimTime, events: usize) -> FaultPlan {
        use crate::topology::NodeKind;
        let mut links: Vec<(NodeId, u16)> = Vec::new();
        for n in 0..topo.node_count() as u32 {
            let node = NodeId(n);
            if topo.kind(node) != NodeKind::Switch {
                continue;
            }
            for (pi, p) in topo.node_ports(node).iter().enumerate() {
                if topo.kind(p.peer) == NodeKind::Switch && p.peer.0 > n {
                    links.push((node, pi as u16));
                }
            }
        }
        let switches = topo.core_switches();
        let hosts = topo.hosts().to_vec();
        // (weight, class) pairs that can actually fire on this fabric.
        let classes: Vec<(f64, u8)> = [
            (self.mix.link, 0u8, !links.is_empty()),
            (self.mix.switch, 1, !switches.is_empty()),
            (self.mix.host, 2, !hosts.is_empty()),
            (self.mix.flap, 3, !links.is_empty()),
        ]
        .into_iter()
        .filter(|&(w, _, has)| w > 0.0 && has)
        .map(|(w, c, _)| (w, c))
        .collect();
        let total: f64 = classes.iter().map(|&(w, _)| w).sum();
        assert!(
            total > 0.0,
            "fault mix has no drawable class on this fabric"
        );
        let mut rng = crate::rng::Pcg32::new(self.seed ^ 0xFA_17_90_15);
        let mean_gap_ns = 1e9 / self.rate_per_sec;
        let mut t = start.as_nanos() as f64;
        let mut plan = FaultPlan::new();
        // Outage windows already scheduled, keyed by victim. Re-failing
        // an element that is still down would corrupt the model: the
        // mask is a set, so the *first* scheduled repair would revive it
        // and silently truncate the second outage. Victims are redrawn
        // (bounded, deterministic) until one is up at the event instant.
        let mut down_until: std::collections::BTreeMap<DownKey, u64> =
            std::collections::BTreeMap::new();
        let link_key = |n: NodeId, p: u16| -> DownKey {
            let back = topo.port(n, p);
            if (n.0, p) <= (back.peer.0, back.peer_port) {
                DownKey::Link(n.0, p)
            } else {
                DownKey::Link(back.peer.0, back.peer_port)
            }
        };
        for _ in 0..events {
            t += rng.exp(mean_gap_ns);
            let at = SimTime::from_nanos(t as u64);
            let mut draw = rng.f64() * total;
            let mut class = classes[classes.len() - 1].1;
            for &(w, c) in &classes {
                if draw < w {
                    class = c;
                    break;
                }
                draw -= w;
            }
            let up_delay = if class == 3 {
                Some(self.flap_delay_ns)
            } else {
                self.repair_delay_ns
            };
            let until = up_delay.map_or(u64::MAX, |d| at.as_nanos() + d);
            match class {
                0 | 3 => {
                    let Some((node, port)) = draw_up_victim(&mut rng, &links, |&(n, p)| {
                        down_until
                            .get(&link_key(n, p))
                            .is_none_or(|&u| u <= at.as_nanos())
                    }) else {
                        continue; // every candidate is down right now
                    };
                    down_until.insert(link_key(node, port), until);
                    plan.push(at, FaultAction::LinkDown { node, port });
                    if let Some(d) = up_delay {
                        plan.push(at + d, FaultAction::LinkUp { node, port });
                    }
                }
                1 | 2 => {
                    let candidates = if class == 1 { &switches } else { &hosts };
                    let Some(victim) = draw_up_victim(&mut rng, candidates, |&n| {
                        down_until
                            .get(&DownKey::Node(n.0))
                            .is_none_or(|&u| u <= at.as_nanos())
                    }) else {
                        continue;
                    };
                    down_until.insert(DownKey::Node(victim.0), until);
                    plan.push(at, FaultAction::SwitchDown { switch: victim });
                    if let Some(d) = self.repair_delay_ns {
                        plan.push(at + d, FaultAction::SwitchUp { switch: victim });
                    }
                }
                _ => unreachable!("classes are 0..=3"),
            }
        }
        plan
    }
}

/// Canonical identity of a failable element during plan compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DownKey {
    /// Lower endpoint's (node, port) of a link.
    Link(u32, u16),
    Node(u32),
}

/// Draw a victim uniformly from `candidates`, redrawing (bounded,
/// deterministic) while the pick is still down; `None` if no up victim
/// was found — the caller skips the event rather than corrupting an
/// outage window already scheduled on the victim.
fn draw_up_victim<T: Copy>(
    rng: &mut crate::rng::Pcg32,
    candidates: &[T],
    is_up: impl Fn(&T) -> bool,
) -> Option<T> {
    for _ in 0..32 {
        let pick = candidates[rng.below(candidates.len() as u64) as usize];
        if is_up(&pick) {
            return Some(pick);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeKind;

    fn line_topo() -> Topology {
        // h0 — s1 — h2
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        t
    }

    #[test]
    fn mask_fail_link_is_bidirectional() {
        let t = line_topo();
        let mut m = FaultMask::new();
        let (a, s) = (NodeId(0), NodeId(1));
        m.fail_link(&t, a, 0);
        assert!(m.link_is_down(a, 0));
        assert!(m.link_is_down(s, 0), "reverse direction also down");
        assert!(!m.port_is_up(&t, a, 0));
        m.restore_link(&t, a, 0);
        assert!(m.is_empty());
        assert!(m.port_is_up(&t, a, 0));
    }

    #[test]
    fn mask_node_down_kills_adjacent_hops() {
        let t = line_topo();
        let mut m = FaultMask::new();
        m.fail_node(NodeId(1));
        // Host -> dead switch hop unusable even though the link is fine.
        assert!(!m.port_is_up(&t, NodeId(0), 0));
        m.restore_node(NodeId(1));
        assert!(m.port_is_up(&t, NodeId(0), 0));
    }

    #[test]
    fn plan_builder_preserves_order() {
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_nanos(10), NodeId(1))
            .switch_up(SimTime::from_nanos(20), NodeId(1))
            .rate_change(SimTime::from_nanos(10), NodeId(0), 0, 0);
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.events()[0].action,
            FaultAction::SwitchDown { switch: NodeId(1) }
        );
        // Same-time events keep insertion order.
        assert_eq!(plan.events()[2].at, SimTime::from_nanos(10));
    }
}
