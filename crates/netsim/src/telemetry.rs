//! Fabric telemetry: time-series probes, event annotations, and a
//! flight recorder — off by default with zero hot-path cost.
//!
//! The simulator is generic over a [`TelemetrySink`]. The default sink,
//! [`NoTelemetry`], is a unit type whose methods are empty bodies: the
//! compiler monomorphizes every hook to nothing, so a recorder-less
//! simulator is *the same machine code* as before telemetry existed
//! (the `bench_smoke` gate holds this to within noise). The
//! runtime-switchable sink is `Option<Recorder>`: `None` costs one
//! always-false time comparison per event, `Some` records.
//!
//! Recording is **pull-free and heap-free**: no probe events are pushed
//! into the simulator's event heap and no RNG is consumed, so enabling
//! telemetry cannot perturb event ordering, sequence numbers, or random
//! draws — byte-identical-per-seed results are preserved structurally,
//! not by luck (property-tested in `tests/telemetry.rs`). Buckets are
//! closed lazily: when the event loop is about to dispatch an event at
//! or past the open bucket's boundary, the simulator snapshots its
//! counters first. Counters only change at events, so the lazy snapshot
//! is *exact* — identical to what an eager probe at the boundary would
//! have seen.
//!
//! Three data products:
//! - **Buckets** ([`Bucket`]): fixed-window deltas of the fabric
//!   counters (deliver/trim/drop/fault-loss rates, per-layer
//!   utilisation) plus sparse per-port samples (queue depth, per-port
//!   trim/drop/tx deltas) for every switch port that was non-idle.
//! - **Annotations** ([`Annotation`]): timestamped fabric events —
//!   faults, restorations, reroutes, layer re-assignments, anomalies.
//! - **Flight recorder**: a bounded ring of the most recent
//!   annotations; an anomaly ([`AnomalyKind`]) freezes a copy of the
//!   ring into [`Recorder::dumps`] for post-mortem debugging.
//!
//! Flow/session spans ([`FlowSpanEvent`]) are recorded by transport
//! agents (gated by their own config), collected post-run, and merged
//! with the recorder's data by the exporters in `workload::telemetry`.

use std::collections::HashMap;

use crate::queue::QueueStats;
use crate::sim::FabricStats;
use crate::time::SimTime;
use crate::topology::RoutingPolicy;

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Bucket width in nanoseconds (default 1 ms).
    pub window_ns: u64,
    /// Flight-recorder capacity in annotations (default 256).
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            window_ns: 1_000_000,
            ring_capacity: 256,
        }
    }
}

/// Why a flight-recorder dump was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A transport timeout fired (work the fabric failed to carry).
    Timeout,
    /// A reroute fell back to a full route recomputation — the
    /// incremental-repair contract says this never happens once routes
    /// exist, so seeing one mid-run is worth a post-mortem.
    FullRecompute,
    /// A session lost a replica to a host failure (stranded until
    /// re-targeted).
    StrandedSession,
}

/// A timestamped fabric event worth annotating on a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// One direction's link went down (fault injection).
    LinkDown {
        /// Transmitting node of the failed direction.
        node: u32,
        /// Port on `node`.
        port: u16,
    },
    /// A previously failed link was restored.
    LinkUp {
        /// Transmitting node of the restored direction.
        node: u32,
        /// Port on `node`.
        port: u16,
    },
    /// A switch or host went down.
    NodeDown {
        /// The victim.
        node: u32,
    },
    /// A switch or host came back.
    NodeUp {
        /// The revived node.
        node: u32,
    },
    /// Silent rate degradation/restoration of a link.
    RateChange {
        /// One end of the link.
        node: u32,
        /// Port on `node`.
        port: u16,
        /// New rate in bits per second (0 = blackhole).
        rate_bps: u64,
    },
    /// The control plane brought routes up to date with the fault mask.
    Reroute {
        /// Whether this was a full recomputation (vs incremental
        /// surgery).
        full: bool,
        /// Destination columns rebuilt.
        dests_rebuilt: u32,
        /// Restorations healed incrementally in this repair.
        restored: u32,
    },
    /// A flow was moved off a routing layer whose path to the
    /// destination died at a hop.
    LayerReassign {
        /// The flow's id.
        flow: u64,
        /// Destination host.
        dst: u32,
        /// Layer the flow was hashed to.
        from: u8,
        /// Layer it was moved to.
        to: u8,
    },
    /// An anomaly was flagged (also freezes a flight-recorder dump).
    Anomaly(AnomalyKind),
}

impl FabricEvent {
    /// Coarse category, used as the trace-event `cat` field:
    /// `"fault"`, `"reroute"`, `"layer"`, or `"anomaly"`.
    pub fn category(&self) -> &'static str {
        match self {
            FabricEvent::LinkDown { .. }
            | FabricEvent::LinkUp { .. }
            | FabricEvent::NodeDown { .. }
            | FabricEvent::NodeUp { .. }
            | FabricEvent::RateChange { .. } => "fault",
            FabricEvent::Reroute { .. } => "reroute",
            FabricEvent::LayerReassign { .. } => "layer",
            FabricEvent::Anomaly(_) => "anomaly",
        }
    }

    /// Human-readable label, used as the trace-event name.
    pub fn label(&self) -> String {
        match self {
            FabricEvent::LinkDown { node, port } => format!("link down {node}:{port}"),
            FabricEvent::LinkUp { node, port } => format!("link up {node}:{port}"),
            FabricEvent::NodeDown { node } => format!("node down {node}"),
            FabricEvent::NodeUp { node } => format!("node up {node}"),
            FabricEvent::RateChange {
                node,
                port,
                rate_bps,
            } => format!("rate {node}:{port} -> {rate_bps} bps"),
            FabricEvent::Reroute {
                full,
                dests_rebuilt,
                restored,
            } => format!(
                "reroute {} ({dests_rebuilt} dests, {restored} restored)",
                if *full { "full" } else { "incremental" },
            ),
            FabricEvent::LayerReassign {
                flow,
                dst,
                from,
                to,
            } => {
                format!("flow {flow}->h{dst} layer {from}->{to}")
            }
            FabricEvent::Anomaly(kind) => format!("anomaly: {kind:?}"),
        }
    }
}

/// A [`FabricEvent`] with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: FabricEvent,
}

/// Point-in-time state of one switch port, handed to the sink at bucket
/// boundaries (and at [`TelemetrySink::finish`]).
#[derive(Debug, Clone, Copy)]
pub struct PortProbe {
    /// Owning switch.
    pub node: u32,
    /// Port index on the switch.
    pub port: u16,
    /// Instantaneous queue depth in packets (data + headers).
    pub depth: u32,
    /// Cumulative queue counters at the probe instant.
    pub queue: QueueStats,
}

/// One port's activity inside one bucket (counters are deltas over the
/// bucket window; `depth` is the depth at the bucket's closing edge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortSample {
    /// Owning switch.
    pub node: u32,
    /// Port index on the switch.
    pub port: u16,
    /// Queue depth in packets at the bucket's closing edge.
    pub depth: u32,
    /// Packets enqueued intact during the bucket.
    pub enqueued: u64,
    /// Packets trimmed to headers during the bucket.
    pub trimmed: u64,
    /// Packets dropped during the bucket.
    pub dropped: u64,
    /// Bytes transmitted during the bucket.
    pub tx_bytes: u64,
}

/// One fixed-interval bucket of fabric activity. All counters are
/// deltas over `[start, end)`; events at exactly the closing boundary
/// land in the *next* bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive start of the window.
    pub start: SimTime,
    /// Exclusive end of the window (a final partial bucket ends at the
    /// run's end instead of a window boundary).
    pub end: SimTime,
    /// Packets delivered to host agents during the bucket.
    pub delivered: u64,
    /// Packets trimmed to headers during the bucket.
    pub trimmed: u64,
    /// Packets dropped (congestion) during the bucket.
    pub dropped: u64,
    /// Packets lost to fabric faults during the bucket.
    pub lost_to_fault: u64,
    /// Per-layer unicast forwards during the bucket.
    pub layer_forwarded: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-layer trims during the bucket.
    pub layer_trimmed: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-layer drops during the bucket.
    pub layer_dropped: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-port activity, sparse: only ports with a non-zero depth or a
    /// non-zero counter delta appear (idle fabric ⇒ empty).
    pub ports: Vec<PortSample>,
}

impl Bucket {
    /// Window length in nanoseconds (never zero).
    pub fn width_ns(&self) -> u64 {
        self.end.since(self.start).max(1)
    }

    /// Total trims in the bucket per second of sim time.
    pub fn trim_rate(&self) -> f64 {
        self.trimmed as f64 * 1e9 / self.width_ns() as f64
    }

    /// Total queue depth (packets) across sampled ports at the closing
    /// edge.
    pub fn total_depth(&self) -> u64 {
        self.ports.iter().map(|p| u64::from(p.depth)).sum()
    }
}

/// A bounded ring of the most recent annotations — the flight
/// recorder's storage.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<Annotation>,
    cap: usize,
    /// Next write position once the ring is full.
    head: usize,
}

impl RingBuffer {
    /// An empty ring retaining at most `cap` annotations.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "flight recorder needs capacity >= 1");
        Self {
            buf: Vec::with_capacity(cap.min(1024)),
            cap,
            head: 0,
        }
    }

    /// Append, evicting the oldest entry once full.
    pub fn push(&mut self, a: Annotation) {
        if self.buf.len() < self.cap {
            self.buf.push(a);
        } else {
            self.buf[self.head] = a;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained annotations, oldest first.
    pub fn snapshot(&self) -> Vec<Annotation> {
        let mut v = Vec::with_capacity(self.buf.len());
        v.extend_from_slice(&self.buf[self.head..]);
        v.extend_from_slice(&self.buf[..self.head]);
        v
    }
}

/// A frozen flight-recorder snapshot, taken when an anomaly fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// When the anomaly fired.
    pub at: SimTime,
    /// What fired it.
    pub anomaly: AnomalyKind,
    /// The ring contents at that instant, oldest first (includes the
    /// anomaly annotation itself as the newest entry).
    pub events: Vec<Annotation>,
}

/// The active telemetry sink: buckets, annotations, and the flight
/// recorder. Construct with [`Recorder::new`] and install as
/// `Option<Recorder>` on the simulator (or pass `Recorder` directly as
/// the sink type for an always-on simulator).
#[derive(Debug, Clone)]
pub struct Recorder {
    cfg: TelemetryConfig,
    /// Exclusive end of the currently open bucket, in ns.
    boundary_ns: u64,
    /// Fabric counters at the open bucket's start.
    prev: FabricStats,
    /// Cumulative (enqueued, trimmed, dropped, tx_bytes) per port at the
    /// open bucket's start. Only consulted at bucket boundaries, so the
    /// HashMap's iteration order never matters (probes arrive in the
    /// simulator's deterministic port order).
    prev_ports: HashMap<(u32, u16), (u64, u64, u64, u64)>,
    buckets: Vec<Bucket>,
    annotations: Vec<Annotation>,
    ring: RingBuffer,
    dumps: Vec<FlightDump>,
    finished: bool,
}

impl Recorder {
    /// A recorder with the given window and ring capacity.
    ///
    /// # Panics
    /// Panics if the window is zero (the boundary would never advance).
    pub fn new(cfg: TelemetryConfig) -> Self {
        assert!(cfg.window_ns > 0, "telemetry window must be positive");
        Self {
            cfg,
            boundary_ns: cfg.window_ns,
            prev: FabricStats::default(),
            prev_ports: HashMap::new(),
            buckets: Vec::new(),
            annotations: Vec::new(),
            ring: RingBuffer::new(cfg.ring_capacity),
            dumps: Vec::new(),
            finished: false,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Closed buckets so far, in time order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// All annotations recorded, in time order.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// Flight-recorder dumps taken so far.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// The live flight-recorder ring.
    pub fn ring(&self) -> &RingBuffer {
        &self.ring
    }

    /// Close the bucket ending at the current boundary and open the
    /// next one.
    fn roll_bucket(&mut self, end: SimTime, stats: &FabricStats, ports: &[PortProbe]) {
        let start = SimTime::from_nanos(self.boundary_ns - self.cfg.window_ns);
        self.push_bucket(start, end, stats, ports);
        self.boundary_ns += self.cfg.window_ns;
    }

    fn push_bucket(&mut self, start: SimTime, end: SimTime, s: &FabricStats, ports: &[PortProbe]) {
        let p = &self.prev;
        let mut layer_forwarded = [0u64; RoutingPolicy::MAX_LAYERS];
        let mut layer_trimmed = [0u64; RoutingPolicy::MAX_LAYERS];
        let mut layer_dropped = [0u64; RoutingPolicy::MAX_LAYERS];
        for l in 0..RoutingPolicy::MAX_LAYERS {
            layer_forwarded[l] = s.layer_forwarded[l] - p.layer_forwarded[l];
            layer_trimmed[l] = s.layer_trimmed[l] - p.layer_trimmed[l];
            layer_dropped[l] = s.layer_dropped[l] - p.layer_dropped[l];
        }
        let mut samples = Vec::new();
        for probe in ports {
            let key = (probe.node, probe.port);
            let q = probe.queue;
            let now = (q.enqueued, q.trimmed, q.dropped, q.tx_bytes);
            let was = self.prev_ports.insert(key, now).unwrap_or_default();
            let sample = PortSample {
                node: probe.node,
                port: probe.port,
                depth: probe.depth,
                enqueued: now.0 - was.0,
                trimmed: now.1 - was.1,
                dropped: now.2 - was.2,
                tx_bytes: now.3 - was.3,
            };
            if sample.depth > 0
                || sample.enqueued > 0
                || sample.trimmed > 0
                || sample.dropped > 0
                || sample.tx_bytes > 0
            {
                samples.push(sample);
            }
        }
        self.buckets.push(Bucket {
            start,
            end,
            delivered: s.delivered - p.delivered,
            trimmed: s.trimmed - p.trimmed,
            dropped: s.dropped - p.dropped,
            lost_to_fault: s.lost_to_fault - p.lost_to_fault,
            layer_forwarded,
            layer_trimmed,
            layer_dropped,
            ports: samples,
        });
        self.prev = *s;
    }
}

/// The simulator's telemetry hook surface. Implementations must be
/// cheap when disabled: `next_boundary` is the only method called on
/// the per-event path (once, for a single time comparison).
pub trait TelemetrySink {
    /// Exclusive end of the currently open bucket. The simulator closes
    /// buckets *before* dispatching any event at or past this instant.
    /// Return [`SimTime::MAX`] to disable sampling entirely.
    fn next_boundary(&self) -> SimTime {
        SimTime::MAX
    }

    /// Close the bucket ending at `next_boundary()` against the current
    /// cumulative counters and per-switch-port probes. Implementations
    /// must advance `next_boundary` by one window, or the event loop's
    /// catch-up would never terminate.
    fn close_bucket(&mut self, _stats: &FabricStats, _ports: &[PortProbe]) {}

    /// Record a timestamped fabric event.
    fn record(&mut self, _at: SimTime, _event: FabricEvent) {}

    /// End of run: close the final (partial) bucket at `now`.
    fn finish(&mut self, _now: SimTime, _stats: &FabricStats, _ports: &[PortProbe]) {}

    /// Whether anything is recording — lets callers skip probe
    /// collection wholesale.
    fn enabled(&self) -> bool {
        false
    }
}

/// The default sink: a unit type whose empty hook bodies monomorphize
/// away, leaving the simulator's hot path untouched (gated by
/// `bench_smoke`'s telemetry ratio).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl TelemetrySink for NoTelemetry {}

impl TelemetrySink for Recorder {
    fn next_boundary(&self) -> SimTime {
        SimTime::from_nanos(self.boundary_ns)
    }

    fn close_bucket(&mut self, stats: &FabricStats, ports: &[PortProbe]) {
        let end = SimTime::from_nanos(self.boundary_ns);
        self.roll_bucket(end, stats, ports);
    }

    fn record(&mut self, at: SimTime, event: FabricEvent) {
        let a = Annotation { at, event };
        self.annotations.push(a);
        self.ring.push(a);
        if let FabricEvent::Anomaly(kind) = event {
            self.dumps.push(FlightDump {
                at,
                anomaly: kind,
                events: self.ring.snapshot(),
            });
        }
    }

    fn finish(&mut self, now: SimTime, stats: &FabricStats, ports: &[PortProbe]) {
        if self.finished {
            return;
        }
        self.finished = true;
        // `now >= start` always holds (the event loop closes buckets
        // before dispatching past them), but `now == start` is possible
        // when the run's last event sat exactly on a boundary — its
        // effects still belong to the final bucket, so emit it even
        // zero-width.
        let start = SimTime::from_nanos(self.boundary_ns - self.cfg.window_ns);
        self.push_bucket(start, now, stats, ports);
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// The runtime-switchable sink the workload runners use: `None` costs
/// one always-false boundary comparison per event; `Some` records.
impl TelemetrySink for Option<Recorder> {
    fn next_boundary(&self) -> SimTime {
        match self {
            Some(r) => TelemetrySink::next_boundary(r),
            None => SimTime::MAX,
        }
    }

    fn close_bucket(&mut self, stats: &FabricStats, ports: &[PortProbe]) {
        if let Some(r) = self {
            TelemetrySink::close_bucket(r, stats, ports);
        }
    }

    fn record(&mut self, at: SimTime, event: FabricEvent) {
        if let Some(r) = self {
            TelemetrySink::record(r, at, event);
        }
    }

    fn finish(&mut self, now: SimTime, stats: &FabricStats, ports: &[PortProbe]) {
        if let Some(r) = self {
            TelemetrySink::finish(r, now, stats, ports);
        }
    }

    fn enabled(&self) -> bool {
        self.is_some()
    }
}

/// What happened to a session, from its receiver's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanMark {
    /// The receiver opened the session (first pull scheduling).
    Open,
    /// The session decoded/completed.
    Close,
    /// The keep-alive sweep opened a recovery round for a quiet
    /// session.
    PullRound,
    /// A recovery re-pull was issued to a stranded sender (`peer`).
    Repull,
    /// A dead replica's remaining share was re-targeted at a surviving
    /// sender (`peer`).
    Retarget,
    /// A sender (`peer`) was written off after a host failure; the
    /// session is stranded until re-targeted.
    Stranded,
    /// A stranded sender (`peer`) revived (scripted host repair): the
    /// session re-admitted it as a pull target. No credit crosses the
    /// strand/revive boundary — the revived sender earns licenses only
    /// through the keep-alive sweep's probing re-pulls.
    Unstranded,
}

/// One mark in a flow/session span, recorded by a transport agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpanEvent {
    /// When the mark was recorded.
    pub at: SimTime,
    /// Session id.
    pub session: u64,
    /// The recording host (the session's receiver).
    pub node: u32,
    /// Peer host involved, if any (`u32::MAX` for session-level marks).
    pub peer: u32,
    /// What happened.
    pub mark: SpanMark,
}

impl FlowSpanEvent {
    /// Sentinel for marks with no specific peer.
    pub const NO_PEER: u32 = u32::MAX;
}

/// Builds a Chrome-trace ("Trace Event Format") JSON document by hand —
/// the workspace has no serde, and the format is simple enough that
/// string assembly with escaping is the honest implementation. The
/// output loads in Perfetto (`ui.perfetto.dev`) and `chrome://tracing`.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → the trace format's microsecond timestamps.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the process `pid` (shown as a track group in Perfetto).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Name the thread `(pid, tid)` (one track in Perfetto).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// A complete ("X") span from `start_ns` lasting `dur_ns`.
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        start_ns: u64,
        dur_ns: u64,
    ) {
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{},\"dur\":{}}}",
            json_escape(name),
            json_escape(cat),
            ts_us(start_ns),
            ts_us(dur_ns.max(1)),
        ));
    }

    /// An instant ("i") marker at `at_ns`, thread-scoped.
    pub fn instant(&mut self, name: &str, cat: &str, pid: u32, tid: u32, at_ns: u64) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{},\"s\":\"t\"}}",
            json_escape(name),
            json_escape(cat),
            ts_us(at_ns),
        ));
    }

    /// A counter ("C") sample at `at_ns`; `series` is (name, value)
    /// pairs plotted as stacked series of the counter track `name`.
    pub fn counter(&mut self, name: &str, pid: u32, at_ns: u64, series: &[(&str, f64)]) {
        let args = series
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), fmt_f64(*v)))
            .collect::<Vec<_>>()
            .join(",");
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{pid},\"ts\":{},\"args\":{{{args}}}}}",
            json_escape(name),
            ts_us(at_ns),
        ));
    }

    /// Assemble the final JSON document.
    pub fn build(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Format an f64 as JSON (finite; NaN/inf would corrupt the document).
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite value in trace");
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(node: u32, port: u16, depth: u32, trimmed: u64) -> PortProbe {
        PortProbe {
            node,
            port,
            depth,
            queue: QueueStats {
                enqueued: 10,
                trimmed,
                dropped: 0,
                tx_bytes: 1500,
                max_depth: depth as usize,
            },
        }
    }

    #[test]
    fn ring_wraps_and_snapshots_oldest_first() {
        let mut ring = RingBuffer::new(4);
        let at = |n: u64| SimTime::from_nanos(n);
        for n in 0..6u64 {
            ring.push(Annotation {
                at: at(n),
                event: FabricEvent::NodeDown { node: n as u32 },
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        let snap = ring.snapshot();
        let order: Vec<u64> = snap.iter().map(|a| a.at.as_nanos()).collect();
        // 0 and 1 were evicted; 2..=5 retained oldest-first.
        assert_eq!(order, vec![2, 3, 4, 5]);
    }

    #[test]
    fn ring_below_capacity_keeps_insertion_order() {
        let mut ring = RingBuffer::new(8);
        for n in 0..3u64 {
            ring.push(Annotation {
                at: SimTime::from_nanos(n),
                event: FabricEvent::NodeUp { node: 0 },
            });
        }
        let order: Vec<u64> = ring.snapshot().iter().map(|a| a.at.as_nanos()).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn bucket_boundaries_align_to_windows() {
        let mut r = Recorder::new(TelemetryConfig {
            window_ns: 100,
            ring_capacity: 4,
        });
        // The simulator closes buckets before dispatching an event at or
        // past the boundary; emulate an event at t=250 (crosses two
        // boundaries) and a run ending at t=310.
        let mut stats = FabricStats::default();
        assert_eq!(TelemetrySink::next_boundary(&r), SimTime::from_nanos(100));
        stats.delivered = 7;
        TelemetrySink::close_bucket(&mut r, &stats, &[]);
        assert_eq!(TelemetrySink::next_boundary(&r), SimTime::from_nanos(200));
        TelemetrySink::close_bucket(&mut r, &stats, &[]);
        assert_eq!(TelemetrySink::next_boundary(&r), SimTime::from_nanos(300));
        stats.delivered = 9;
        TelemetrySink::finish(&mut r, SimTime::from_nanos(310), &stats, &[]);
        let b = r.buckets();
        assert_eq!(b.len(), 3);
        assert_eq!((b[0].start.as_nanos(), b[0].end.as_nanos()), (0, 100));
        assert_eq!((b[1].start.as_nanos(), b[1].end.as_nanos()), (100, 200));
        // Final partial bucket runs from the last closed boundary to the
        // run's end, not to the next window edge.
        assert_eq!((b[2].start.as_nanos(), b[2].end.as_nanos()), (200, 310));
        assert_eq!(b[0].delivered, 7);
        assert_eq!(b[1].delivered, 0);
        assert_eq!(b[2].delivered, 2);
        // finish() is idempotent: a second call adds nothing.
        TelemetrySink::finish(&mut r, SimTime::from_nanos(400), &stats, &[]);
        assert_eq!(r.buckets().len(), 3);
    }

    #[test]
    fn port_samples_are_deltas_and_sparse() {
        let mut r = Recorder::new(TelemetryConfig {
            window_ns: 100,
            ring_capacity: 4,
        });
        let stats = FabricStats::default();
        TelemetrySink::close_bucket(&mut r, &stats, &[probe(5, 1, 3, 2), probe(5, 2, 0, 0)]);
        // Port (5,2) had depth 0 but non-zero cumulative counters on its
        // first probe — it appears once, then goes quiet.
        assert_eq!(r.buckets()[0].ports.len(), 2);
        TelemetrySink::close_bucket(&mut r, &stats, &[probe(5, 1, 0, 2), probe(5, 2, 0, 0)]);
        // Second bucket: port 1's trim count did not move and its depth
        // is 0; port 2 likewise — only deltas appear, so nothing does.
        assert!(r.buckets()[1].ports.is_empty());
        let first = &r.buckets()[0].ports[0];
        assert_eq!((first.node, first.port, first.depth), (5, 1, 3));
        assert_eq!(first.trimmed, 2);
    }

    #[test]
    fn anomaly_freezes_a_dump() {
        let mut r = Recorder::new(TelemetryConfig {
            window_ns: 1_000,
            ring_capacity: 3,
        });
        let at = SimTime::from_nanos;
        TelemetrySink::record(&mut r, at(1), FabricEvent::LinkDown { node: 9, port: 2 });
        TelemetrySink::record(
            &mut r,
            at(2),
            FabricEvent::Reroute {
                full: false,
                dests_rebuilt: 4,
                restored: 0,
            },
        );
        assert!(r.dumps().is_empty());
        TelemetrySink::record(&mut r, at(3), FabricEvent::Anomaly(AnomalyKind::Timeout));
        assert_eq!(r.dumps().len(), 1);
        let dump = &r.dumps()[0];
        assert_eq!(dump.at, at(3));
        assert_eq!(dump.anomaly, AnomalyKind::Timeout);
        // The dump holds the ring contents including the anomaly itself.
        assert_eq!(dump.events.len(), 3);
        assert!(matches!(
            dump.events[2].event,
            FabricEvent::Anomaly(AnomalyKind::Timeout)
        ));
    }

    #[test]
    fn disabled_option_sink_never_samples() {
        let sink: Option<Recorder> = None;
        assert_eq!(TelemetrySink::next_boundary(&sink), SimTime::MAX);
        assert!(!TelemetrySink::enabled(&sink));
    }

    #[test]
    fn trace_builder_emits_valid_shape() {
        let mut tb = TraceBuilder::new();
        tb.process_name(0, "fabric");
        tb.instant("link down \"9\":2", "fault", 0, 0, 1_500);
        tb.complete("session 3", "span", 12, 3, 1_000, 2_500);
        tb.counter(
            "trim rate",
            0,
            2_000,
            &[("trims_per_s", 1234.5), ("drops", 0.0)],
        );
        let json = tb.build();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        // The quote inside the instant name is escaped.
        assert!(json.contains("link down \\\"9\\\":2"));
        // 1500 ns → 1.500 µs.
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"trims_per_s\":1234.500"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn event_labels_and_categories() {
        assert_eq!(FabricEvent::NodeDown { node: 3 }.category(), "fault");
        assert_eq!(
            FabricEvent::Reroute {
                full: true,
                dests_rebuilt: 10,
                restored: 1
            }
            .category(),
            "reroute"
        );
        assert_eq!(
            FabricEvent::LayerReassign {
                flow: 1,
                dst: 2,
                from: 0,
                to: 1
            }
            .category(),
            "layer"
        );
        assert_eq!(
            FabricEvent::Anomaly(AnomalyKind::StrandedSession).category(),
            "anomaly"
        );
        assert!(FabricEvent::NodeDown { node: 3 }
            .label()
            .contains("node down 3"));
    }
}
