//! The discrete-event simulation driver.
//!
//! The simulator owns the topology, one [`PortQueue`] per (node, port),
//! the multicast group tables, and one transport [`Agent`] per host. It
//! processes four event kinds in deterministic `(time, sequence)` order:
//! packet arrivals, port transmissions, agent timers, and scripted
//! fabric faults (see [`crate::fault`]).
//!
//! Hosts hand packets to their NIC queue; switches forward within the
//! packet's routing layer (assigned per flow, see
//! [`LayerAssign`], with re-assignment away from layers whose path to
//! the destination is dead) picking among the layer's advertised ports
//! by per-flow ECMP hash or per-packet spraying, or along a registered
//! multicast tree (built on the minimal layer). The link model is
//! store-and-forward: a packet arrives at the next node after
//! serialization + propagation.
//!
//! When a fault event executes mid-run, the simulator flushes the dead
//! element's queues, recomputes the routing tables against the live
//! [`FaultMask`], repairs every registered multicast tree, and drops
//! packets that were in flight on the failed link (they "arrive" on a
//! wire that no longer exists). All of it is accounted in
//! [`FabricStats`]: `lost_to_fault`, `reroutes`, `trees_repaired`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use crate::fault::{FaultAction, FaultMask, FaultPlan};
use crate::packet::{Dest, GroupId, Packet, SimPayload};
use crate::queue::{Enqueued, PortQueue, QueueConfig, QueueStats};
use crate::rng::Pcg32;
use crate::telemetry::{AnomalyKind, FabricEvent, NoTelemetry, PortProbe, TelemetrySink};
use crate::time::{serialization_ns, SimTime};
use crate::topology::{NodeId, NodeKind, RoutingPolicy, Topology};

/// Transport hook: one agent runs on every host and receives packets and
/// timers addressed to that host. Implementations queue outgoing packets
/// and timers on the [`Ctx`]; the simulator applies them after the
/// callback returns (no re-entrancy).
pub trait Agent<P: SimPayload> {
    /// A packet destined to this host (or a group it joined) arrived.
    fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<P>);
    /// A previously scheduled timer fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<P>);
}

/// Effect buffer handed to agent callbacks.
pub struct Ctx<P> {
    /// Current simulation time.
    pub now: SimTime,
    /// The host this agent runs on.
    pub node: NodeId,
    sends: Vec<Packet<P>>,
    timers: Vec<(SimTime, u64)>,
}

impl<P> Ctx<P> {
    fn new(now: SimTime, node: NodeId) -> Self {
        Self {
            now,
            node,
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// A detached context for unit-testing agents outside a simulator.
    /// Effects queued on it are inspectable via [`Ctx::queued_sends`] and
    /// simply discarded on drop.
    pub fn detached(now: SimTime, node: NodeId) -> Self {
        Self::new(now, node)
    }

    /// Packets queued so far (test inspection).
    pub fn queued_sends(&self) -> &[Packet<P>] {
        &self.sends
    }

    /// Timers queued so far (test inspection).
    pub fn queued_timers(&self) -> &[(SimTime, u64)] {
        &self.timers
    }

    /// Transmit a packet from this host (enters the NIC queue).
    pub fn send(&mut self, pkt: Packet<P>) {
        self.sends.push(pkt);
    }

    /// Fire `on_timer(token)` at absolute time `at`.
    pub fn timer_at(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, token));
    }

    /// Fire `on_timer(token)` after `delay_ns`.
    pub fn timer_after(&mut self, delay_ns: u64, token: u64) {
        let at = self.now + delay_ns;
        self.timers.push((at, token));
    }
}

/// Path selection among equal-cost ports (within the assigned routing
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Per-flow ECMP: hash of (flow id, switch id) picks the port —
    /// every packet of a flow follows one path (TCP-friendly).
    EcmpFlow,
    /// Per-packet spraying: uniform random port per packet (what
    /// Polyraptor wants; reordering is harmless under fountain coding).
    Spray,
}

/// How unicast traffic is assigned to routing layers (see
/// [`RoutingPolicy`]) — the pluggable flow→layer strategy, and the
/// extension point for FatPaths-style flowlet/loss-driven switching.
/// With a single-layer (minimal) policy it degenerates to classic
/// single-table forwarding.
///
/// Note there is deliberately no per-*packet* (or per-hop) layer
/// spraying: a packet that mixes layers across hops has no single
/// weighted-distance potential bounding its walk, so loop freedom and
/// the 2× stretch bound would be lost. Per-packet path diversity comes
/// from [`RouteMode::Spray`] *within* the assigned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerAssign {
    /// Per-flow hash (the FatPaths default): every packet of a flow
    /// rides one layer, so a flow sees stable path characteristics and
    /// every switch agrees on the layer without per-packet state.
    /// Flows are re-assigned away from a layer whose path to the
    /// destination is dead at a hop (no advertised port, or every
    /// advertised port locally known down) — at most one move per
    /// (flow, destination) per convergence window, counted in
    /// [`FabricStats::layer_reassignments`]; the moves are forgotten
    /// when routes converge (layers only reweight links, so after a
    /// repair every layer reaches everything the fabric reaches).
    FlowHash,
}

/// Simulator-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Queue discipline on switch ports.
    pub switch_queue: QueueConfig,
    /// Queue discipline on host NICs (deep drop-tail by default: host
    /// memory is plentiful; transports self-limit).
    pub host_queue: QueueConfig,
    /// Path selection policy (within the assigned layer).
    pub route: RouteMode,
    /// Flow→layer assignment strategy (irrelevant under a single-layer
    /// routing policy).
    pub layer_assign: LayerAssign,
    /// Control-plane convergence time: a detected fault kills traffic
    /// immediately, but routes (and multicast trees) are only recomputed
    /// this many nanoseconds later — during the window, packets keep
    /// being forwarded into the dead element and are lost. 0 = instant
    /// reroute (an idealised control plane).
    pub reroute_delay_ns: u64,
    /// RNG seed (spraying decisions).
    pub seed: u64,
    /// Worker threads for route (re)computation (applied to the
    /// topology via [`Topology::set_parallelism`]): 1 = serial (the
    /// default, the exact pre-parallel code path), 0 = one per
    /// available core. Results are byte-identical at every setting —
    /// a throughput knob only, so determinism per seed is unaffected.
    pub parallelism: usize,
}

impl SimConfig {
    /// NDP-style fabric (Polyraptor runs): trimming switches + spraying.
    pub fn ndp(seed: u64) -> Self {
        Self {
            switch_queue: QueueConfig::NDP_DEFAULT,
            host_queue: QueueConfig::DropTail { cap_pkts: 100_000 },
            route: RouteMode::Spray,
            layer_assign: LayerAssign::FlowHash,
            reroute_delay_ns: 0,
            seed,
            parallelism: 1,
        }
    }

    /// Classic fabric (TCP runs): drop-tail switches + per-flow ECMP.
    pub fn classic(seed: u64) -> Self {
        Self {
            switch_queue: QueueConfig::DROPTAIL_DEFAULT,
            host_queue: QueueConfig::DropTail { cap_pkts: 100_000 },
            route: RouteMode::EcmpFlow,
            layer_assign: LayerAssign::FlowHash,
            reroute_delay_ns: 0,
            seed,
            parallelism: 1,
        }
    }
}

#[derive(Debug)]
enum EventKind<P> {
    /// Packet fully received at the far end of `(from, port)`
    /// (store-and-forward). Carrying the transmitting side lets the
    /// dispatcher drop packets whose link died while they were on the
    /// wire.
    Arrive {
        /// Transmitting node.
        from: NodeId,
        /// Transmitting port on `from`.
        port: u16,
        /// The packet.
        pkt: Packet<P>,
    },
    /// Port `port` of `node` finished a transmission; send the next one.
    Dequeue(NodeId, u16),
    /// Agent timer.
    Timer(NodeId, u64),
    /// Scripted fabric fault (see [`crate::fault`]).
    Fault(FaultAction),
    /// Deferred route recomputation (control-plane convergence after a
    /// fault; coalesces multiple pending faults into one recompute).
    Reroute,
}

struct Event<P> {
    at: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Event<P> {}
impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Aggregated fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets delivered to host agents.
    pub delivered: u64,
    /// Packets dropped anywhere in the fabric (congestion).
    pub dropped: u64,
    /// Packets trimmed to headers.
    pub trimmed: u64,
    /// Events processed.
    pub events: u64,
    /// Packets lost to fabric faults: flushed from a dead element's
    /// queues, in flight on a failed link, arriving at a dead switch, or
    /// addressed to a destination the fault mask disconnected.
    pub lost_to_fault: u64,
    /// Route recomputations triggered by fault events (incremental
    /// repairs and full recomputations combined).
    pub reroutes: u64,
    /// Reroutes served by incremental [`Topology::repair_routes`]
    /// surgery instead of a full recomputation.
    pub reroutes_incremental: u64,
    /// Destination trees rebuilt by per-destination BFS across all
    /// reroutes (full recomputations count every destination).
    pub route_dests_rebuilt: u64,
    /// Multicast trees rebuilt during reroutes.
    pub trees_repaired: u64,
    /// Down+up pairs of the same element that both landed inside one
    /// convergence window: the pair cancels out of the pending mask
    /// delta, so the deferred reroute sees a no-op — a flapping link
    /// costs its flushed packets, never a route recomputation.
    pub flaps_coalesced: u64,
    /// Reroutes whose delta contained restorations that were healed by
    /// bounded restore surgery (per-destination rebuilds only where a
    /// distance could shrink) instead of a full recomputation.
    pub restores_incremental: u64,
    /// Per-layer utilisation: unicast packets forwarded at switches,
    /// indexed by the routing layer that carried them (single-layer
    /// policies count everything in slot 0; slots past the policy's
    /// layer count stay 0).
    pub layer_forwarded: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-layer share of [`FabricStats::trimmed`]: trims suffered by
    /// unicast packets at the switch hop that forwarded them, indexed by
    /// the routing layer that carried them. Host-NIC and multicast trims
    /// count in the global total only, so the array can sum below it.
    pub layer_trimmed: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-layer share of [`FabricStats::dropped`], attributed like
    /// [`FabricStats::layer_trimmed`].
    pub layer_dropped: [u64; RoutingPolicy::MAX_LAYERS],
    /// Flows moved away from a layer whose path to the destination was
    /// dead at a hop — either no advertised port there, or every
    /// advertised port locally known down — onto a live layer. At most
    /// one move per (flow, destination) per convergence window.
    pub layer_reassignments: u64,
}

/// Canonical identity of a failable element, for flap tracking: links
/// are keyed by the lower of their two directed `(node, port)` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FaultKey {
    Link(u32, u16),
    Node(u32),
}

/// A registered multicast group: membership is retained so the
/// forwarding tree can be rebuilt when faults change the fabric.
struct Group {
    sender: NodeId,
    receivers: Vec<NodeId>,
    table: HashMap<NodeId, Vec<u16>>,
}

/// The deterministic packet-level simulator.
///
/// The third type parameter is the telemetry sink (see
/// [`crate::telemetry`]): the default [`NoTelemetry`] monomorphizes
/// every hook to nothing, `Option<Recorder>` is the runtime-switchable
/// sink, and a bare `Recorder` is always-on. Enabling telemetry never
/// perturbs results: no probe events enter the heap and no RNG is
/// consumed, so event order and every random draw are unchanged.
pub struct Simulator<P: SimPayload, A: Agent<P>, T: TelemetrySink = NoTelemetry> {
    topo: Topology,
    config: SimConfig,
    queues: Vec<Vec<PortQueue<P>>>,
    busy: Vec<Vec<bool>>,
    agents: Vec<Option<A>>,
    // BTreeMap: tree repair iterates the groups, and iteration order
    // must be seed-stable for determinism.
    groups: BTreeMap<GroupId, Group>,
    next_group: u32,
    events: BinaryHeap<Reverse<Event<P>>>,
    seq: u64,
    now: SimTime,
    rng: Pcg32,
    stats: FabricStats,
    /// Live fault state (dead links/switches). Routing tables lag it by
    /// the configured control-plane convergence delay.
    mask: FaultMask,
    /// A deferred reroute is already scheduled (coalesces bursts of
    /// fault events into one recompute).
    reroute_pending: bool,
    /// Elements that went down since the last applied reroute — an Up
    /// for one of these inside the same convergence window is a
    /// coalesced flap (the pair cancels out of the pending delta).
    pending_down: std::collections::BTreeSet<FaultKey>,
    /// Per-port rate overrides (hotspot/failure injection); keyed by
    /// (node, port), in bits per second. Zero means the link is down.
    rate_overrides: HashMap<(u32, u16), u64>,
    /// Per-(flow, destination) layer re-assignments under
    /// [`LayerAssign::FlowHash`]: a flow moved away from a dead layer
    /// keeps its new layer until the next applied reroute (the repaired
    /// tables make every layer whole again, so the map is cleared there
    /// — bounding it to one convergence window's flows). Never
    /// iterated, so the HashMap does not threaten determinism.
    layer_overrides: HashMap<(u64, u32), u8>,
    /// Telemetry sink (default: the zero-cost [`NoTelemetry`]).
    telemetry: T,
}

impl<P: SimPayload, A: Agent<P>> Simulator<P, A> {
    /// Build a simulator over a routed topology, with telemetry
    /// compiled out (the zero-cost [`NoTelemetry`] sink).
    pub fn new(topo: Topology, config: SimConfig) -> Self {
        Self::with_telemetry(topo, config, NoTelemetry)
    }
}

impl<P: SimPayload, A: Agent<P>, T: TelemetrySink> Simulator<P, A, T> {
    /// Build a simulator over a routed topology with an explicit
    /// telemetry sink — pass `None::<Recorder>` for a runtime-switchable
    /// sink that is currently off, or `Some(Recorder::new(..))` to
    /// record.
    pub fn with_telemetry(mut topo: Topology, config: SimConfig, telemetry: T) -> Self {
        topo.set_parallelism(config.parallelism);
        let queues = (0..topo.node_count())
            .map(|n| {
                let node = NodeId(n as u32);
                let qc = match topo.kind(node) {
                    NodeKind::Host => config.host_queue,
                    NodeKind::Switch => config.switch_queue,
                };
                topo.node_ports(node)
                    .iter()
                    .map(|_| PortQueue::new(qc))
                    .collect()
            })
            .collect();
        let busy = (0..topo.node_count())
            .map(|n| vec![false; topo.node_ports(NodeId(n as u32)).len()])
            .collect();
        let agents = (0..topo.node_count()).map(|_| None).collect();
        Self {
            rng: Pcg32::new(config.seed),
            topo,
            config,
            queues,
            busy,
            agents,
            groups: BTreeMap::new(),
            next_group: 0,
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            stats: FabricStats::default(),
            mask: FaultMask::new(),
            reroute_pending: false,
            pending_down: std::collections::BTreeSet::new(),
            rate_overrides: HashMap::new(),
            layer_overrides: HashMap::new(),
            telemetry,
        }
    }

    /// Degrade (or restore) one direction of a link: packets leaving
    /// `node` through `port` serialize at `rate_bps` instead of the
    /// topology rate. `0` takes the direction down entirely (packets
    /// queue until the queue overflows — a silent failure, the hardest
    /// kind). Used for hotspot/failure-injection experiments; call
    /// between `run_until` slices to script changes over time.
    pub fn set_link_rate(&mut self, node: NodeId, port: u16, rate_bps: u64) {
        assert!(
            (port as usize) < self.topo.node_ports(node).len(),
            "no such port"
        );
        if rate_bps == self.topo.port(node, port).rate_bps {
            self.rate_overrides.remove(&(node.0, port));
        } else {
            self.rate_overrides.insert((node.0, port), rate_bps);
        }
        // Restoring a downed link must restart its transmit loop if
        // packets queued up in the meantime.
        if rate_bps > 0
            && !self.busy[node.0 as usize][port as usize]
            && !self.queues[node.0 as usize][port as usize].is_empty()
        {
            self.push_event(self.now, EventKind::Dequeue(node, port));
        }
    }

    /// Current effective rate of a port (honouring overrides).
    pub fn effective_rate(&self, node: NodeId, port: u16) -> u64 {
        self.rate_overrides
            .get(&(node.0, port))
            .copied()
            .unwrap_or_else(|| self.topo.port(node, port).rate_bps)
    }

    /// The topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Fabric counters so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The telemetry sink (read-only).
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// Mutable access to the telemetry sink — install a recorder
    /// (`*sim.telemetry_mut() = Some(Recorder::new(..))`) or take the
    /// recorded data out after a run.
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// Close the final (partial) telemetry bucket against the current
    /// counters. Call once after the last `run_until` slice, before
    /// taking the recorder out; a no-op when telemetry is off.
    pub fn finish_telemetry(&mut self) {
        if !self.telemetry.enabled() {
            return;
        }
        let probes = self.collect_port_probes();
        let (now, stats) = (self.now, self.stats);
        self.telemetry.finish(now, &stats, &probes);
    }

    /// Flag an anomaly on the telemetry sink (freezes a flight-recorder
    /// dump). Workloads call this post-run for transport-level
    /// anomalies — timeouts, stranded sessions — that the fabric cannot
    /// see itself.
    pub fn note_anomaly(&mut self, kind: AnomalyKind) {
        let now = self.now;
        self.telemetry.record(now, FabricEvent::Anomaly(kind));
    }

    /// Snapshot every switch port's depth and cumulative counters, in
    /// deterministic (node, port) order. Only called at bucket
    /// boundaries and at [`Simulator::finish_telemetry`].
    fn collect_port_probes(&self) -> Vec<PortProbe> {
        let mut probes = Vec::new();
        for n in 0..self.topo.node_count() {
            if self.topo.kind(NodeId(n as u32)) != NodeKind::Switch {
                continue;
            }
            for (p, q) in self.queues[n].iter().enumerate() {
                probes.push(PortProbe {
                    node: n as u32,
                    port: p as u16,
                    depth: q.len() as u32,
                    queue: q.stats(),
                });
            }
        }
        probes
    }

    /// Catch the sink up to `upto`: close every bucket whose boundary
    /// the event loop is about to cross. Counters only change at
    /// events, so closing lazily here is exactly equivalent to an eager
    /// probe at each boundary — without polluting the event heap (which
    /// would perturb sequence numbers and break per-seed byte
    /// identity).
    #[cold]
    fn close_telemetry_buckets(&mut self, upto: SimTime) {
        while upto >= self.telemetry.next_boundary() {
            let probes = self.collect_port_probes();
            let stats = self.stats;
            self.telemetry.close_bucket(&stats, &probes);
        }
    }

    /// Queue statistics of one port.
    pub fn queue_stats(&self, node: NodeId, port: u16) -> QueueStats {
        self.queues[node.0 as usize][port as usize].stats()
    }

    /// Sum of queue statistics over every switch port.
    pub fn switch_queue_totals(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for n in 0..self.topo.node_count() {
            if self.topo.kind(NodeId(n as u32)) != NodeKind::Switch {
                continue;
            }
            for q in &self.queues[n] {
                let s = q.stats();
                total.enqueued += s.enqueued;
                total.trimmed += s.trimmed;
                total.dropped += s.dropped;
                total.tx_bytes += s.tx_bytes;
                total.max_depth = total.max_depth.max(s.max_depth);
            }
        }
        total
    }

    /// Install the agent for a host.
    pub fn set_agent(&mut self, host: NodeId, agent: A) {
        assert_eq!(self.topo.kind(host), NodeKind::Host, "agents run on hosts");
        self.agents[host.0 as usize] = Some(agent);
    }

    /// Immutable access to a host's agent.
    pub fn agent(&self, host: NodeId) -> &A {
        self.agents[host.0 as usize]
            .as_ref()
            .expect("no agent installed")
    }

    /// Mutable access to a host's agent (between runs).
    pub fn agent_mut(&mut self, host: NodeId) -> &mut A {
        self.agents[host.0 as usize]
            .as_mut()
            .expect("no agent installed")
    }

    /// Iterate over installed agents.
    pub fn agents(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.agents
            .iter()
            .enumerate()
            .filter_map(|(n, a)| a.as_ref().map(|a| (NodeId(n as u32), a)))
    }

    /// Register a multicast tree from `sender` to `receivers`.
    ///
    /// The tree is the union of shortest paths with up-path choices keyed
    /// deterministically by (group, switch), so one copy of each packet
    /// crosses any shared link and branching happens as low as possible —
    /// the DCCast-style forwarding-tree model the paper's multicast
    /// experiments assume.
    pub fn register_group(&mut self, sender: NodeId, receivers: &[NodeId]) -> GroupId {
        assert!(!receivers.is_empty(), "multicast group needs receivers");
        let gid = GroupId(self.next_group);
        self.next_group += 1;
        for &r in receivers {
            assert_ne!(r, sender, "sender cannot be a group receiver");
            assert!(
                !self.topo.try_next_ports(sender, r).is_empty(),
                "group receiver {} unreachable from sender {} at registration",
                r.0,
                sender.0
            );
        }
        let table = self.build_tree(gid, sender, receivers);
        self.groups.insert(
            gid,
            Group {
                sender,
                receivers: receivers.to_vec(),
                table,
            },
        );
        gid
    }

    /// Union of per-receiver paths with choices keyed deterministically
    /// by (group, switch): one copy per shared link, branching as low as
    /// possible. Receivers unreachable under the current routes (a fault
    /// cut them off) are skipped — during repair the tree covers the
    /// reachable membership.
    fn build_tree(
        &self,
        gid: GroupId,
        sender: NodeId,
        receivers: &[NodeId],
    ) -> HashMap<NodeId, Vec<u16>> {
        let mut table: HashMap<NodeId, Vec<u16>> = HashMap::new();
        for &r in receivers {
            if self.topo.try_next_ports(sender, r).is_empty() {
                continue;
            }
            let mut at = sender;
            while at != r {
                let choices = self.topo.next_ports(at, r);
                let pick =
                    choices[(crate::rng::Pcg32::new((u64::from(gid.0) << 32) ^ u64::from(at.0))
                        .below(choices.len() as u64)) as usize];
                let entry = table.entry(at).or_default();
                if !entry.contains(&pick) {
                    entry.push(pick);
                }
                at = self.topo.port(at, pick).peer;
            }
        }
        table
    }

    /// Schedule every event of a fault plan for mid-run execution. May
    /// be called multiple times (plans merge).
    ///
    /// # Panics
    /// Panics if any event lies before the current simulation time — a
    /// past-dated event would drag the clock backwards and corrupt every
    /// relative timestamp computed while dispatching it.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            assert!(
                ev.at >= self.now,
                "fault event at {} is in the simulator's past (now {})",
                ev.at,
                self.now
            );
            self.push_event(ev.at, EventKind::Fault(ev.action));
        }
    }

    /// The live fault mask (what is currently failed).
    pub fn fault_mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Schedule a timer for a host agent (used by workloads to start
    /// sessions).
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push_event(at, EventKind::Timer(node, token));
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<P>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.events.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    /// Run until the event queue drains or `deadline` passes. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > deadline {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            // Telemetry bucket boundaries are honoured lazily: an event
            // at or past the open bucket's end closes it first, so a
            // bucket never includes later activity. One always-false
            // comparison when telemetry is off (`next_boundary` is MAX).
            if ev.at >= self.telemetry.next_boundary() {
                self.close_telemetry_buckets(ev.at);
            }
            self.now = ev.at;
            self.dispatch(ev.kind);
            processed += 1;
        }
        self.stats.events += processed;
        processed
    }

    /// Run until no events remain (workloads bound their own horizon via
    /// timers, so this terminates once all transfers finish).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    fn dispatch(&mut self, kind: EventKind<P>) {
        match kind {
            EventKind::Arrive { from, port, pkt } => {
                let to = self.topo.port(from, port).peer;
                // The packet was on the wire; if the link died under it
                // or the far end is dead, it never really arrives.
                if self.mask.link_is_down(from, port) || self.mask.node_is_down(to) {
                    self.stats.lost_to_fault += 1;
                    return;
                }
                match self.topo.kind(to) {
                    NodeKind::Host => self.deliver_to_agent(to, pkt),
                    NodeKind::Switch => self.forward(to, pkt),
                }
            }
            EventKind::Dequeue(node, port) => self.transmit_next(node, port),
            EventKind::Timer(node, token) => {
                let mut ctx = Ctx::new(self.now, node);
                let agent = self.agents[node.0 as usize]
                    .as_mut()
                    .expect("timer for a host without an agent");
                agent.on_timer(token, &mut ctx);
                self.apply_ctx(ctx);
            }
            EventKind::Fault(action) => self.apply_fault(action),
            EventKind::Reroute => {
                self.reroute_pending = false;
                self.reroute();
            }
        }
    }

    /// Canonical flap-tracking key of a link (the lower directed entry).
    fn link_key(&self, node: NodeId, port: u16) -> FaultKey {
        let back = self.topo.port(node, port);
        let (a, b) = ((node.0, port), (back.peer.0, back.peer_port));
        let (n, p) = a.min(b);
        FaultKey::Link(n, p)
    }

    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown { node, port } => {
                self.telemetry
                    .record(self.now, FabricEvent::LinkDown { node: node.0, port });
                let back = *self.topo.port(node, port);
                self.mask.fail_link(&self.topo, node, port);
                self.pending_down.insert(self.link_key(node, port));
                self.flush_port(node, port);
                self.flush_port(back.peer, back.peer_port);
                self.request_reroute();
            }
            FaultAction::LinkUp { node, port } => {
                self.telemetry
                    .record(self.now, FabricEvent::LinkUp { node: node.0, port });
                let back = *self.topo.port(node, port);
                self.mask.restore_link(&self.topo, node, port);
                if self.pending_down.remove(&self.link_key(node, port)) {
                    // Down and up inside one convergence window: the
                    // pair cancels out of the pending reroute's delta.
                    self.stats.flaps_coalesced += 1;
                }
                self.request_reroute();
                self.kick_port(node, port);
                self.kick_port(back.peer, back.peer_port);
            }
            FaultAction::SwitchDown { switch } => {
                // Hosts are legal victims: a host going down models a
                // host/NIC failure — its access link goes dark and its
                // queued traffic is lost, exactly like a switch victim.
                self.telemetry
                    .record(self.now, FabricEvent::NodeDown { node: switch.0 });
                self.mask.fail_node(switch);
                self.pending_down.insert(FaultKey::Node(switch.0));
                for p in 0..self.topo.node_ports(switch).len() as u16 {
                    self.flush_port(switch, p);
                }
                self.request_reroute();
            }
            FaultAction::SwitchUp { switch } => {
                self.telemetry
                    .record(self.now, FabricEvent::NodeUp { node: switch.0 });
                self.mask.restore_node(switch);
                if self.pending_down.remove(&FaultKey::Node(switch.0)) {
                    self.stats.flaps_coalesced += 1;
                }
                self.request_reroute();
                // Neighbours may have queued towards the repaired node
                // while it routed around (and a repaired host's own NIC
                // may have parked traffic); restart any idle ports.
                for p in 0..self.topo.node_ports(switch).len() as u16 {
                    let back = *self.topo.port(switch, p);
                    self.kick_port(back.peer, back.peer_port);
                    self.kick_port(switch, p);
                }
            }
            FaultAction::RateChange {
                node,
                port,
                rate_bps,
            } => {
                // Silent degradation: both directions change speed, no
                // reroute, no flush (rate 0 blackholes undetected).
                self.telemetry.record(
                    self.now,
                    FabricEvent::RateChange {
                        node: node.0,
                        port,
                        rate_bps,
                    },
                );
                let back = *self.topo.port(node, port);
                self.set_link_rate(node, port, rate_bps);
                self.set_link_rate(back.peer, back.peer_port, rate_bps);
            }
        }
    }

    /// Drop everything queued on a port, accounting the loss to faults.
    fn flush_port(&mut self, node: NodeId, port: u16) {
        let lost = self.queues[node.0 as usize][port as usize].flush();
        self.stats.lost_to_fault += lost as u64;
    }

    /// Restart an idle port's transmit loop if packets are waiting.
    fn kick_port(&mut self, node: NodeId, port: u16) {
        if !self.busy[node.0 as usize][port as usize]
            && !self.queues[node.0 as usize][port as usize].is_empty()
        {
            self.push_event(self.now, EventKind::Dequeue(node, port));
        }
    }

    /// Schedule a route recomputation after the configured control-plane
    /// convergence delay, unless one is already pending.
    fn request_reroute(&mut self) {
        if self.reroute_pending {
            return;
        }
        self.reroute_pending = true;
        self.push_event(self.now + self.config.reroute_delay_ns, EventKind::Reroute);
    }

    /// Bring the routing tables up to date with the live fault mask —
    /// incrementally where the mask only grew (see
    /// [`Topology::repair_routes`]), from scratch otherwise — and repair
    /// multicast trees (receivers a fault cut off are skipped until a
    /// later repair restores them).
    fn reroute(&mut self) {
        self.pending_down.clear();
        // Layer re-assignments were a stale-window measure: the repaired
        // tables below reflect the live mask, and layers only reweight
        // links (never remove them), so every layer reaches everything
        // the fabric reaches again — flows return to their hashed
        // layer. Forgetting the overrides also bounds their memory to
        // one convergence window's flows.
        self.layer_overrides.clear();
        let outcome = self.topo.repair_routes(&self.mask);
        self.telemetry.record(
            self.now,
            FabricEvent::Reroute {
                full: outcome.full,
                dests_rebuilt: outcome.dests_rebuilt as u32,
                restored: outcome.restored as u32,
            },
        );
        if outcome.full {
            // The incremental-repair contract says a mid-run reroute
            // never falls back to a full recomputation once routes
            // exist — flag it (and freeze a flight-recorder dump) so a
            // regression is debuggable from the trace alone.
            self.telemetry
                .record(self.now, FabricEvent::Anomaly(AnomalyKind::FullRecompute));
        }
        self.stats.reroutes += 1;
        if !outcome.full {
            self.stats.reroutes_incremental += 1;
            if outcome.restored > 0 {
                self.stats.restores_incremental += 1;
            }
        }
        self.stats.route_dests_rebuilt += outcome.dests_rebuilt as u64;
        // Stale routes during the convergence window may have enqueued
        // packets onto dead links, where the parked transmit loop would
        // strand them unaccounted forever; flush them as fault losses
        // (the new routes can no longer choose those ports).
        let dead: Vec<(NodeId, u16)> = self.mask.down_links().collect();
        for (node, port) in dead {
            self.flush_port(node, port);
        }
        // Multicast-tree repair is incremental too: after a failure-only
        // reroute, a tree whose hops are all still alive keeps
        // delivering on its recorded (alive) ports, so only trees
        // crossing a dead element are rebuilt. A full reroute may have
        // restored capacity, which can re-attach previously cut-off
        // receivers — every tree is rebuilt then.
        let gids: Vec<GroupId> = self.groups.keys().copied().collect();
        for gid in gids {
            if !outcome.full && !self.group_crosses_fault(&self.groups[&gid]) {
                continue;
            }
            let g = &self.groups[&gid];
            let (sender, receivers) = (g.sender, g.receivers.clone());
            let table = self.build_tree(gid, sender, &receivers);
            self.groups.get_mut(&gid).expect("group exists").table = table;
            self.stats.trees_repaired += 1;
        }
    }

    /// Whether any hop recorded in a multicast tree's forwarding table
    /// is unusable under the live fault mask (dead node, dead link, or
    /// dead far end).
    fn group_crosses_fault(&self, group: &Group) -> bool {
        group.table.iter().any(|(&node, ports)| {
            self.mask.node_is_down(node)
                || ports
                    .iter()
                    .any(|&p| !self.mask.port_is_up(&self.topo, node, p))
        })
    }

    fn deliver_to_agent(&mut self, node: NodeId, pkt: Packet<P>) {
        // A host receives packets addressed to it or to a group whose
        // tree terminates here; anything else is a routing bug.
        if let Dest::Host(h) = pkt.dst {
            assert_eq!(h, node, "unicast packet delivered to wrong host");
        }
        self.stats.delivered += 1;
        let mut ctx = Ctx::new(self.now, node);
        let agent = self.agents[node.0 as usize]
            .as_mut()
            .expect("packet delivered to a host without an agent");
        agent.on_packet(pkt, &mut ctx);
        self.apply_ctx(ctx);
    }

    fn apply_ctx(&mut self, ctx: Ctx<P>) {
        let node = ctx.node;
        for (at, token) in ctx.timers {
            self.push_event(at, EventKind::Timer(node, token));
        }
        for pkt in ctx.sends {
            // Host NIC: hosts have exactly one port (index 0).
            self.enqueue_and_kick(node, 0, pkt);
        }
    }

    /// Whether `layer` has at least one advertised port at `node`
    /// towards `dst` that is locally usable (link and far end up under
    /// the live mask — switch-local knowledge, no control plane
    /// required).
    fn layer_live(&self, layer: usize, node: NodeId, dst_index: usize) -> bool {
        self.topo
            .try_next_ports_at(layer, node, dst_index)
            .iter()
            .any(|&p| self.mask.port_is_up(&self.topo, node, p))
    }

    fn forward(&mut self, node: NodeId, pkt: Packet<P>) {
        match pkt.dst {
            Dest::Host(dst) => {
                // The layer machinery (hash, override lookup,
                // re-assignment) only exists under multi-layer
                // policies; the single-layer default skips it entirely
                // — forwarding's hot path stays exactly the
                // pre-layering code.
                // One host-index resolution per packet; every route
                // lookup below is then a direct arena slice.
                let dst_index = self.topo.host_index(dst);
                let n_layers = self.topo.layer_count();
                let mut layer = 0;
                if n_layers > 1 {
                    let LayerAssign::FlowHash = self.config.layer_assign;
                    let override_entry = self.layer_overrides.get(&(pkt.flow.0, dst.0)).copied();
                    let assigned = override_entry
                        .map(|l| l as usize)
                        .unwrap_or_else(|| layer_choice(pkt.flow, n_layers));
                    // Re-assignment away from a layer whose path to the
                    // destination is dead at this hop: scan the other
                    // layers round-robin for one with a live advertised
                    // port. At most one move per (flow, destination)
                    // per convergence window — an existing override is
                    // never overwritten, or two half-dead layers could
                    // ping-pong a packet between neighbouring switches
                    // for the whole stale window. A layer with live
                    // ports keeps its traffic even if some of its ports
                    // are dead (the pick below may still lose packets
                    // during the convergence window, as before).
                    layer = assigned;
                    if override_entry.is_none() && !self.layer_live(assigned, node, dst_index) {
                        if let Some(alt) = (1..n_layers)
                            .map(|k| (assigned + k) % n_layers)
                            .find(|&l| self.layer_live(l, node, dst_index))
                        {
                            layer = alt;
                            self.stats.layer_reassignments += 1;
                            self.layer_overrides.insert((pkt.flow.0, dst.0), alt as u8);
                            self.telemetry.record(
                                self.now,
                                FabricEvent::LayerReassign {
                                    flow: pkt.flow.0,
                                    dst: dst.0,
                                    from: assigned as u8,
                                    to: alt as u8,
                                },
                            );
                        }
                    }
                }
                let choices = self.topo.try_next_ports_at(layer, node, dst_index);
                if choices.is_empty() {
                    // The destination is unreachable under the current
                    // fault mask; outside faults this is a config bug.
                    assert!(
                        !self.mask.is_empty() || self.stats.reroutes > 0,
                        "no route from switch {} to host {} (routes computed?)",
                        node.0,
                        dst.0
                    );
                    self.stats.lost_to_fault += 1;
                    return;
                }
                self.stats.layer_forwarded[layer] += 1;
                let port = match self.config.route {
                    RouteMode::EcmpFlow => choices[ecmp_choice(pkt.flow, node, choices.len())],
                    RouteMode::Spray => choices[self.rng.below(choices.len() as u64) as usize],
                };
                match self.enqueue_and_kick(node, port, pkt) {
                    Enqueued::Trimmed => self.stats.layer_trimmed[layer] += 1,
                    Enqueued::Dropped => self.stats.layer_dropped[layer] += 1,
                    Enqueued::Queued => {}
                }
            }
            Dest::Group(gid) => {
                let group = self.groups.get(&gid).expect("unregistered multicast group");
                let Some(ports) = group.table.get(&node) else {
                    // Tree does not branch here. After a repair, packets
                    // already inside the old tree can be stranded at
                    // switches the new tree no longer visits — those are
                    // fault losses. Otherwise it is a forwarding bug.
                    assert!(
                        self.stats.reroutes > 0,
                        "group packet at switch {} outside its tree",
                        node.0
                    );
                    self.stats.lost_to_fault += 1;
                    return;
                };
                let ports = ports.clone();
                for port in ports {
                    self.enqueue_and_kick(node, port, pkt.clone());
                }
            }
        }
    }

    /// Enqueue on a port and restart its transmit loop if idle. Returns
    /// the queue's verdict so callers that know the packet's routing
    /// layer can attribute trims/drops per layer.
    fn enqueue_and_kick(&mut self, node: NodeId, port: u16, pkt: Packet<P>) -> Enqueued {
        let outcome = self.queues[node.0 as usize][port as usize].enqueue(pkt);
        match outcome {
            Enqueued::Dropped => {
                self.stats.dropped += 1;
                return outcome;
            }
            Enqueued::Trimmed => self.stats.trimmed += 1,
            Enqueued::Queued => {}
        }
        if !self.busy[node.0 as usize][port as usize] {
            self.transmit_next(node, port);
        }
        outcome
    }

    fn transmit_next(&mut self, node: NodeId, port: u16) {
        let rate = self.effective_rate(node, port);
        let faulted = self.mask.node_is_down(node) || self.mask.link_is_down(node, port);
        if rate == 0 || faulted {
            // Link down (silent rate-0 blackhole or detected fault):
            // leave the port idle; queued packets wait for a possible
            // repair (and overflow per queue discipline).
            self.busy[node.0 as usize][port as usize] = false;
            return;
        }
        let Some(pkt) = self.queues[node.0 as usize][port as usize].dequeue() else {
            self.busy[node.0 as usize][port as usize] = false;
            return;
        };
        self.busy[node.0 as usize][port as usize] = true;
        let link = *self.topo.port(node, port);
        let ser = serialization_ns(pkt.size, rate);
        self.push_event(
            self.now + ser + link.prop_ns,
            EventKind::Arrive {
                from: node,
                port,
                pkt,
            },
        );
        self.push_event(self.now + ser, EventKind::Dequeue(node, port));
    }
}

/// The equal-cost choice per-flow ECMP makes at `node`: a deterministic
/// hash of (flow, switch), so consecutive switches pick independently
/// but per-flow-stably. Exposed so experiment code can predict a flow's
/// pinned path (e.g. to aim a fault event at a switch the baseline
/// traffic actually crosses).
pub fn ecmp_choice(flow: crate::packet::FlowId, node: NodeId, n_choices: usize) -> usize {
    let h = crate::rng::Pcg32::new(flow.0 ^ (u64::from(node.0) << 40)).next_u32();
    h as usize % n_choices
}

/// The routing layer [`LayerAssign::FlowHash`] assigns a flow to: a
/// deterministic hash of the flow id alone, so every switch agrees on
/// the flow's layer without per-packet state — equivalent to the source
/// stamping the layer in the packet header, as FatPaths does. Exposed
/// so experiment code can predict a flow's layer.
pub fn layer_choice(flow: crate::packet::FlowId, n_layers: usize) -> usize {
    if n_layers <= 1 {
        return 0;
    }
    let h = crate::rng::Pcg32::new(flow.0 ^ 0x7A9E_12C4_55AA_01FE).next_u32();
    h as usize % n_layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Data(u32),
        Hdr(u32),
        Pull,
    }

    impl SimPayload for P {
        fn is_control(&self) -> bool {
            !matches!(self, P::Data(_))
        }
        fn trim(&self) -> Option<Self> {
            match self {
                P::Data(i) => Some(P::Hdr(*i)),
                other => Some(other.clone()),
            }
        }
    }

    /// Test agent: records receptions; sends a preloaded batch on timer 0.
    struct Echo {
        to_send: Vec<Packet<P>>,
        received: Vec<(SimTime, P)>,
    }

    impl Agent<P> for Echo {
        fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<P>) {
            self.received.push((ctx.now, pkt.payload));
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<P>) {
            for pkt in self.to_send.drain(..) {
                ctx.send(pkt);
            }
        }
    }

    fn data_pkt(src: NodeId, dst: NodeId, i: u32) -> Packet<P> {
        Packet {
            src,
            dst: Dest::Host(dst),
            flow: FlowId(7),
            size: 1500,
            payload: P::Data(i),
        }
    }

    fn two_host_sim(config: SimConfig) -> (Simulator<P, Echo>, NodeId, NodeId) {
        // host A — switch — host B
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        let mut sim = Simulator::new(t, config);
        sim.set_agent(
            a,
            Echo {
                to_send: vec![],
                received: vec![],
            },
        );
        sim.set_agent(
            b,
            Echo {
                to_send: vec![],
                received: vec![],
            },
        );
        (sim, a, b)
    }

    /// Two senders, one receiver: the switch's receiver port is a 2:1
    /// bottleneck, so simultaneous bursts congest it.
    fn incast_sim(config: SimConfig) -> (Simulator<P, Echo>, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let c = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(c, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        let mut sim = Simulator::new(t, config);
        for h in [a, b, c] {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        (sim, a, c, b)
    }

    #[test]
    fn single_packet_latency_exact() {
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(1));
        sim.agent_mut(a).to_send.push(data_pkt(a, b, 0));
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert_eq!(rec.len(), 1);
        // Two store-and-forward hops: 2 × (12µs ser + 10µs prop).
        assert_eq!(rec[0].0, SimTime::from_nanos(2 * (12_000 + 10_000)));
    }

    #[test]
    fn fifo_pipelining() {
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(1));
        for i in 0..3 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert_eq!(rec.len(), 3);
        // In order, spaced by one serialization delay.
        assert_eq!(rec[0].1, P::Data(0));
        assert_eq!(rec[1].0 - rec[0].0, 12_000);
        assert_eq!(rec[2].0 - rec[1].0, 12_000);
    }

    #[test]
    fn trimming_under_burst() {
        // Two hosts blast 20 packets each into a shared receiver port
        // (2:1 overload): the 8-packet NDP data queue must overflow and
        // the overflow must be trimmed, never dropped.
        let (mut sim, a, c, b) = incast_sim(SimConfig::ndp(1));
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            sim.agent_mut(c).to_send.push(data_pkt(c, b, 100 + i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.schedule_timer(c, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert_eq!(rec.len(), 40, "every packet arrives, full or trimmed");
        let full = rec.iter().filter(|(_, p)| matches!(p, P::Data(_))).count();
        let trimmed = rec.iter().filter(|(_, p)| matches!(p, P::Hdr(_))).count();
        assert_eq!(full + trimmed, 40);
        assert!(
            trimmed > 0,
            "2:1 overload must overflow the 8-packet data queue"
        );
        assert_eq!(sim.stats().trimmed as usize, trimmed);
        assert_eq!(sim.stats().dropped, 0);
        assert_eq!(sim.switch_queue_totals().trimmed as usize, trimmed);
    }

    #[test]
    fn droptail_drops_under_burst() {
        let mut cfg = SimConfig::classic(1);
        cfg.switch_queue = QueueConfig::DropTail { cap_pkts: 4 };
        let (mut sim, a, c, b) = incast_sim(cfg);
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            sim.agent_mut(c).to_send.push(data_pkt(c, b, 100 + i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.schedule_timer(c, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert!(rec.len() < 40, "drop-tail must lose packets");
        assert!(sim.stats().dropped > 0);
    }

    #[test]
    fn control_overtakes_data() {
        // Host C backlogs the receiver port with data; a pull from host A
        // sent later must overtake queued data thanks to the priority
        // header queue.
        let (mut sim, a, c, b) = incast_sim(SimConfig::ndp(1));
        for i in 0..10 {
            sim.agent_mut(c).to_send.push(data_pkt(c, b, i));
        }
        sim.agent_mut(a).to_send.push(Packet {
            src: a,
            dst: Dest::Host(b),
            flow: FlowId(9),
            size: 64,
            payload: P::Pull,
        });
        sim.schedule_timer(c, SimTime::ZERO, 0);
        // Give C a head start so the switch queue is backlogged when the
        // pull arrives.
        sim.schedule_timer(a, SimTime::from_micros(40), 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        let pull_pos = rec.iter().position(|(_, p)| *p == P::Pull).unwrap();
        assert!(
            pull_pos < rec.len() - 1,
            "pull should overtake queued data at the switch"
        );
    }

    #[test]
    fn multicast_delivers_to_all() {
        // One sender, three receivers on a k=4 fat-tree.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(3));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let (s, r1, r2, r3) = (hosts[0], hosts[3], hosts[7], hosts[12]);
        let gid = sim.register_group(s, &[r1, r2, r3]);
        sim.agent_mut(s).to_send.push(Packet {
            src: s,
            dst: Dest::Group(gid),
            flow: FlowId(1),
            size: 1500,
            payload: P::Data(0),
        });
        sim.schedule_timer(s, SimTime::ZERO, 0);
        sim.run_to_completion();
        for &r in &[r1, r2, r3] {
            assert_eq!(sim.agent(r).received.len(), 1, "receiver {} missed", r.0);
        }
        // Non-members received nothing.
        assert_eq!(sim.agent(hosts[1]).received.len(), 0);
    }

    #[test]
    fn multicast_tree_shares_sender_uplink() {
        // The whole point of multicast in Fig 1a: one copy leaves the
        // sender regardless of replica count.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(3));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let s = hosts[0];
        let receivers = [hosts[5], hosts[9], hosts[13]];
        let gid = sim.register_group(s, &receivers);
        for i in 0..50 {
            sim.agent_mut(s).to_send.push(Packet {
                src: s,
                dst: Dest::Group(gid),
                flow: FlowId(1),
                size: 1500,
                payload: P::Data(i),
            });
        }
        sim.schedule_timer(s, SimTime::ZERO, 0);
        sim.run_to_completion();
        // Sender's NIC transmitted each packet exactly once.
        let nic = sim.queue_stats(s, 0);
        assert_eq!(nic.tx_bytes, 50 * 1500);
        for &r in &receivers {
            assert_eq!(sim.agent(r).received.len(), 50);
        }
    }

    #[test]
    fn spray_uses_multiple_paths() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]); // inter-pod: 2 uplinks
        let edge = t.edge_switch(src);
        let up_ports: Vec<u16> = t.next_ports(edge, dst).to_vec();
        assert_eq!(up_ports.len(), 2);
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(5));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..100 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        sim.run_to_completion();
        let tx0 = sim.queue_stats(edge, up_ports[0]).tx_bytes;
        let tx1 = sim.queue_stats(edge, up_ports[1]).tx_bytes;
        assert!(
            tx0 > 0 && tx1 > 0,
            "spraying must use both uplinks ({tx0}, {tx1})"
        );
    }

    #[test]
    fn ecmp_pins_one_path() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let up_ports: Vec<u16> = t.next_ports(edge, dst).to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::classic(5));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..100 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        sim.run_to_completion();
        let tx0 = sim.queue_stats(edge, up_ports[0]).tx_bytes;
        let tx1 = sim.queue_stats(edge, up_ports[1]).tx_bytes;
        assert!(
            (tx0 == 0) != (tx1 == 0),
            "per-flow ECMP must pin exactly one uplink ({tx0}, {tx1})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| -> Vec<(SimTime, P)> {
            let (mut sim, a, b) = two_host_sim(SimConfig::ndp(seed));
            for i in 0..30 {
                sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            }
            sim.schedule_timer(a, SimTime::ZERO, 0);
            sim.run_to_completion();
            sim.agents[b.0 as usize].take().unwrap().received
        };
        assert_eq!(run(42), run(42), "same seed ⇒ identical trace");
    }

    /// A k=4 fat-tree with Echo agents everywhere, plus the (src, dst)
    /// inter-pod pair and one aggregation switch in src's pod — the
    /// natural victim: spraying uses both aggs, so killing one catches
    /// in-flight packets while the survivor keeps the pair connected.
    fn fat_tree_sim(seed: u64) -> (Simulator<P, Echo>, NodeId, NodeId, NodeId) {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let agg = t
            .node_ports(edge)
            .iter()
            .map(|p| p.peer)
            .find(|&n| t.kind(n) == NodeKind::Switch)
            .expect("edge switch has aggregation uplinks");
        let mut sim = Simulator::new(t, SimConfig::ndp(seed));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        (sim, src, dst, agg)
    }

    #[test]
    fn switch_failure_reroutes_and_drops_in_flight() {
        let (mut sim, src, dst, agg) = fat_tree_sim(9);
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        // The NIC drains one packet per 12 us, so the stream spans
        // ~480 us; kill the agg mid-stream and restore near the end.
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_micros(100), agg)
            .switch_up(SimTime::from_micros(400), agg);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.reroutes, 2, "down + up each recompute routes");
        assert!(
            stats.lost_to_fault > 0,
            "mid-stream agg death must catch packets in flight or queued"
        );
        let got = sim.agent(dst).received.len();
        assert_eq!(
            got as u64 + stats.lost_to_fault,
            40,
            "every packet either arrives or is accounted as a fault loss"
        );
        assert!(
            got >= 30,
            "the surviving agg must carry the stream (got {got})"
        );
        assert_eq!(stats.dropped, 0, "no congestion drops at this load");
    }

    #[test]
    fn link_failure_loses_queued_packets_and_recovers() {
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(4));
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        // The a—switch link dies with most of the burst still queued in
        // a's NIC, then comes back; the flushed packets are gone for
        // good but traffic sent after the repair flows again.
        let plan = FaultPlan::new()
            .link_down(SimTime::from_micros(30), a, 0)
            .link_up(SimTime::from_micros(200), a, 0);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert!(stats.lost_to_fault >= 15, "queued burst flushed");
        // After repair the link works: send another packet.
        sim.agent_mut(a).to_send.push(data_pkt(a, b, 99));
        sim.schedule_timer(a, SimTime::from_micros(500), 0);
        sim.run_to_completion();
        assert!(sim.agent(b).received.iter().any(|(_, p)| *p == P::Data(99)));
    }

    #[test]
    fn convergence_window_strands_nothing() {
        // With a non-zero convergence delay, the stale routes keep
        // spraying onto the dead link until the deferred reroute fires;
        // those packets must be flushed and accounted as fault losses,
        // never silently stranded in a parked queue.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let up = t
            .node_ports(edge)
            .iter()
            .position(|p| t.kind(p.peer) == NodeKind::Switch)
            .expect("edge has uplinks") as u16;
        let mut cfg = SimConfig::ndp(13);
        cfg.reroute_delay_ns = 200_000; // 200 us of stale routing
        let mut sim = Simulator::new(t, cfg);
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        let plan = FaultPlan::new().link_down(SimTime::from_micros(100), edge, up);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        let got = sim.agent(dst).received.len();
        assert!(stats.lost_to_fault > 0, "the dead uplink must cost packets");
        assert_eq!(
            got as u64 + stats.lost_to_fault,
            40,
            "every packet arrives or is accounted as a fault loss"
        );
        assert!(got >= 20, "the surviving uplink carries the rest");
    }

    #[test]
    fn multicast_tree_repair_after_core_failure() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let cores = t.core_switches();
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(8));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let s = hosts[0];
        let receivers = [hosts[5], hosts[9], hosts[13]];
        let gid = sim.register_group(s, &receivers);
        // Kill a core the tree actually crosses (the tests module can
        // see the private table; min-id keeps the HashMap's arbitrary
        // key order out of the test); the repair must re-tree around it.
        let victim = *sim.groups[&gid]
            .table
            .keys()
            .filter(|n| cores.contains(n))
            .min()
            .expect("inter-pod multicast tree crosses a core");
        let plan = FaultPlan::new().switch_down(SimTime::from_micros(100), victim);
        sim.schedule_faults(&plan);
        // Stream packets across the failure instant.
        for i in 0..100 {
            sim.agent_mut(s).to_send.push(Packet {
                src: s,
                dst: Dest::Group(gid),
                flow: FlowId(1),
                size: 1500,
                payload: P::Data(i),
            });
        }
        sim.schedule_timer(s, SimTime::ZERO, 0);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.trees_repaired, 1, "the one group was rebuilt");
        for &r in &receivers {
            // Packets caught inside the old tree at repair time can miss
            // a receiver without a per-receiver loss record (the new
            // tree re-covers them only partially), so the bound is
            // deliberately loose: the repair must restore delivery.
            let got = sim.agent(r).received.len();
            assert!(got >= 90, "repair must restore delivery (got {got})");
            assert!(got <= 100, "no duplicate deliveries (got {got})");
        }
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let (mut sim, src, dst, agg) = fat_tree_sim(11);
            for i in 0..60 {
                sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
            }
            sim.schedule_timer(src, SimTime::ZERO, 0);
            let plan = FaultPlan::new()
                .switch_down(SimTime::from_micros(80), agg)
                .switch_up(SimTime::from_micros(500), agg);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            let stats = sim.stats();
            let trace = sim.agents[dst.0 as usize].take().unwrap().received;
            (stats, trace)
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2, "same seed + plan ⇒ identical stats");
        assert_eq!(t1, t2, "same seed + plan ⇒ identical delivery trace");
    }

    #[test]
    fn switch_down_on_host_kills_and_revives_the_host() {
        // Host victims are a behaviour, not a panic: the host's access
        // link goes dark (arrivals lost, queued traffic flushed) and a
        // later SwitchUp brings it back.
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(1));
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        // Kill the *receiver* host mid-burst, revive near the end.
        let plan = FaultPlan::new()
            .host_down(SimTime::from_micros(100), b)
            .host_up(SimTime::from_micros(400), b);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.reroutes, 2, "down + up each reroute");
        assert!(
            stats.lost_to_fault > 0,
            "mid-burst host death must cost packets"
        );
        let got = sim.agent(b).received.len();
        assert!(got < 20, "the dead window's packets are gone");
        // After the repair the host receives again.
        sim.agent_mut(a).to_send.push(data_pkt(a, b, 99));
        sim.schedule_timer(a, SimTime::from_micros(500), 0);
        sim.run_to_completion();
        assert!(sim.agent(b).received.iter().any(|(_, p)| *p == P::Data(99)));
    }

    #[test]
    fn switch_and_host_victims_account_identically() {
        // The same FaultAction handles both victim kinds: killing the
        // sender host parks its NIC (packets flushed once, then queued
        // unsent), killing the switch flushes the fabric — both surface
        // as lost_to_fault, never as silent strands.
        let run = |kill_host: bool| {
            let (mut sim, a, b) = two_host_sim(SimConfig::ndp(2));
            for i in 0..10 {
                sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            }
            sim.schedule_timer(a, SimTime::ZERO, 0);
            let victim = if kill_host { a } else { NodeId(1) };
            let plan = FaultPlan::new().switch_down(SimTime::from_micros(30), victim);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            (sim.stats(), sim.agent(b).received.len())
        };
        let (host_stats, host_got) = run(true);
        let (switch_stats, switch_got) = run(false);
        assert!(host_stats.lost_to_fault > 0 && switch_stats.lost_to_fault > 0);
        assert!(host_got < 10, "host death cut the stream");
        assert!(switch_got < 10, "switch death cut the stream");
        assert_eq!(host_stats.reroutes, 1);
        assert_eq!(switch_stats.reroutes, 1);
    }

    #[test]
    fn flap_inside_convergence_window_coalesces_to_noop() {
        // A link that goes down and comes back before the deferred
        // reroute fires must cost zero full recomputes: the pair cancels
        // out of the pending delta and the reroute is a no-op repair.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let up = t
            .node_ports(edge)
            .iter()
            .position(|p| t.kind(p.peer) == NodeKind::Switch)
            .expect("edge has uplinks") as u16;
        let mut cfg = SimConfig::ndp(21);
        cfg.reroute_delay_ns = 200_000;
        let mut sim = Simulator::new(t, cfg);
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        // Down at 100 µs, up at 150 µs — inside the 200 µs window.
        let plan = FaultPlan::new()
            .link_down(SimTime::from_micros(100), edge, up)
            .link_up(SimTime::from_micros(150), edge, up);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.flaps_coalesced, 1, "the pair coalesced");
        assert_eq!(stats.reroutes, 1, "one deferred reroute fired");
        assert_eq!(
            stats.reroutes_incremental, 1,
            "the no-op delta must never fall back to a full recompute"
        );
        assert_eq!(stats.route_dests_rebuilt, 0, "nothing to rebuild");
        let got = sim.agent(dst).received.len();
        assert_eq!(
            got as u64 + stats.lost_to_fault,
            40,
            "flap losses stay accounted"
        );
        assert!(got > 0, "traffic resumes over the restored link");
    }

    #[test]
    fn restoration_after_convergence_repairs_incrementally() {
        // Down and up in *separate* convergence windows: the up-reroute
        // carries a restoration delta, which must be healed by restore
        // surgery, not a full recompute.
        let (mut sim, src, dst, agg) = fat_tree_sim(23);
        for i in 0..60 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_micros(80), agg)
            .switch_up(SimTime::from_micros(500), agg);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.reroutes, 2);
        assert_eq!(stats.flaps_coalesced, 0, "windows were separate");
        assert_eq!(
            stats.restores_incremental, 1,
            "the restoration reroute must use restore surgery"
        );
        assert_eq!(stats.reroutes_incremental, 2, "both reroutes incremental");
    }

    #[test]
    fn layered_policy_spreads_flows_and_counts_per_layer() {
        // Many distinct flows on a 4-layer fat-tree: the flow hash must
        // land traffic on several layers, and the per-layer utilisation
        // counters must account every switch-forwarded unicast packet.
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        t.set_policy(crate::topology::RoutingPolicy::layered(4, 5));
        t.compute_routes();
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(5));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let (src, dst) = (hosts[0], hosts[15]);
        for i in 0..64 {
            let mut pkt = data_pkt(src, dst, i);
            pkt.flow = FlowId(u64::from(i)); // one flow per packet
            sim.agent_mut(src).to_send.push(pkt);
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        sim.run_to_completion();
        assert_eq!(sim.agent(dst).received.len(), 64);
        let stats = sim.stats();
        assert_eq!(stats.layer_reassignments, 0, "healthy fabric: no moves");
        let used = stats.layer_forwarded.iter().filter(|&&c| c > 0).count();
        assert!(used >= 2, "64 flows must spread over >= 2 of 4 layers");
        assert_eq!(
            stats.layer_forwarded[4..].iter().sum::<u64>(),
            0,
            "slots past the layer count stay empty"
        );
    }

    #[test]
    fn dead_layer_reassigns_flows_mid_window() {
        // Diamond fabric a—sA—{s1|s2}—sB—b under a 2-layer policy. Find
        // a policy seed whose layer 1 advertises the s1 branch as sA's
        // only port towards b, and a flow hashed onto layer 1; killing
        // the sA—s1 link mid-stream with a long convergence window must
        // then re-assign the flow onto the live layer at sA instead of
        // blackholing it until the deferred reroute.
        let build = |seed: u64| -> (Topology, NodeId, NodeId, NodeId) {
            let mut t = Topology::new();
            let a = t.add_node(NodeKind::Host);
            let sa = t.add_node(NodeKind::Switch);
            let s1 = t.add_node(NodeKind::Switch);
            let s2 = t.add_node(NodeKind::Switch);
            let sb = t.add_node(NodeKind::Switch);
            let b = t.add_node(NodeKind::Host);
            t.connect(a, sa, 1_000_000_000, 10_000);
            t.connect(sa, s1, 1_000_000_000, 10_000); // sa port 1
            t.connect(sa, s2, 1_000_000_000, 10_000); // sa port 2
            t.connect(s1, sb, 1_000_000_000, 10_000);
            t.connect(s2, sb, 1_000_000_000, 10_000);
            t.connect(sb, b, 1_000_000_000, 10_000);
            t.set_policy(crate::topology::RoutingPolicy::layered(2, seed));
            t.compute_routes();
            (t, a, sa, b)
        };
        let seed = (0..64)
            .find(|&s| {
                let (t, _, sa, b) = build(s);
                t.try_next_ports_on(1, sa, b) == [1u16]
            })
            .expect("some seed prefers the s1 branch on layer 1");
        let (t, a, sa, b) = build(seed);
        let flow = (0..64)
            .map(FlowId)
            .find(|&f| layer_choice(f, 2) == 1)
            .expect("some flow hashes onto layer 1");
        let mut cfg = SimConfig::ndp(3);
        cfg.reroute_delay_ns = 500_000; // long stale-routing window
        let mut sim = Simulator::new(t, cfg);
        for h in [a, b] {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..30 {
            let mut pkt = data_pkt(a, b, i);
            pkt.flow = flow;
            sim.agent_mut(a).to_send.push(pkt);
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        // The NIC drains one packet per 12 µs; kill the s1 branch at
        // 100 µs with most of the stream still to come.
        let plan = FaultPlan::new().link_down(SimTime::from_micros(100), sa, 1);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert!(
            stats.layer_reassignments >= 1,
            "the dead layer must shed its flow"
        );
        // Without re-assignment the flow would blackhole at sA for the
        // whole 500 µs window (its layer advertises only the dead
        // port); with it, packets keep arriving mid-window over the
        // live layer. (The live layer still sprays across its own
        // port set — stale-window losses on the dead port remain, as
        // for any flow, so not every packet survives.)
        let rec = &sim.agent(b).received;
        let post_fault = rec
            .iter()
            .filter(|(at, _)| *at > SimTime::from_micros(100))
            .count();
        assert!(
            post_fault >= 5,
            "re-assigned flow must keep delivering mid-window (got {post_fault})"
        );
        assert_eq!(
            rec.len() as u64 + stats.lost_to_fault,
            30,
            "every packet arrives or is accounted as a fault loss"
        );
    }

    #[test]
    fn poisson_fault_process_is_deterministic_and_mixed() {
        use crate::fault::{FaultMix, FaultProcess};
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let proc = FaultProcess::poisson(1000.0, FaultMix::uniform(), Some(2_000_000)).seed(7);
        let a = proc.compile(&t, SimTime::from_micros(100), 24);
        let b = proc.compile(&t, SimTime::from_micros(100), 24);
        assert_eq!(a, b, "same seed ⇒ identical plan");
        let c = proc.seed(8).compile(&t, SimTime::from_micros(100), 24);
        assert_ne!(a, c, "different seed ⇒ different plan");
        // Every down has a scripted repair, times are non-decreasing
        // per element class, and the mix covers hosts.
        let downs = a
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    FaultAction::LinkDown { .. } | FaultAction::SwitchDown { .. }
                )
            })
            .count();
        let ups = a.events().len() - downs;
        assert_eq!(downs, 24, "one down per drawn event");
        assert_eq!(ups, downs, "every failure is repaired");
        let host_failures = a.host_failures(&t);
        assert!(
            !host_failures.is_empty(),
            "uniform mix over 24 events should draw a host"
        );
        assert!(host_failures.iter().all(|f| f.repaired_at.is_some()));
    }

    use crate::telemetry::{AnomalyKind, FabricEvent, Recorder, TelemetryConfig};

    /// The fat-tree fault scenario of `switch_failure_reroutes_and_
    /// drops_in_flight`, with a recorder installed: annotations carry
    /// the fault and reroute story, buckets tile the run exactly, and
    /// their deltas sum to the end-of-run aggregates.
    #[test]
    fn recorder_annotates_faults_and_buckets_sum_to_totals() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let agg = t
            .node_ports(edge)
            .iter()
            .map(|p| p.peer)
            .find(|&n| t.kind(n) == NodeKind::Switch)
            .expect("edge switch has aggregation uplinks");
        let rec = Recorder::new(TelemetryConfig {
            window_ns: 50_000, // 50 µs windows over a ~500 µs run
            ring_capacity: 8,
        });
        let mut sim: Simulator<P, Echo, Option<Recorder>> =
            Simulator::with_telemetry(t, SimConfig::ndp(9), Some(rec));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_micros(100), agg)
            .switch_up(SimTime::from_micros(400), agg);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        sim.finish_telemetry();
        let stats = sim.stats();
        let rec = sim.telemetry_mut().take().expect("recorder installed");

        let ann = rec.annotations();
        assert!(ann
            .iter()
            .any(|a| a.event == FabricEvent::NodeDown { node: agg.0 }
                && a.at == SimTime::from_micros(100)));
        assert!(ann
            .iter()
            .any(|a| a.event == FabricEvent::NodeUp { node: agg.0 }));
        assert_eq!(
            ann.iter()
                .filter(|a| matches!(a.event, FabricEvent::Reroute { .. }))
                .count(),
            2,
            "down + up each recompute routes"
        );
        // No anomalies in a healthy incremental-repair run, hence no
        // flight-recorder dumps.
        assert!(rec.dumps().is_empty());

        let b = rec.buckets();
        assert!(!b.is_empty());
        for w in b.windows(2) {
            assert_eq!(w[0].end, w[1].start, "buckets tile the run");
        }
        assert_eq!(b[0].start, SimTime::ZERO);
        let delivered: u64 = b.iter().map(|x| x.delivered).sum();
        let lost: u64 = b.iter().map(|x| x.lost_to_fault).sum();
        assert_eq!(delivered, stats.delivered, "bucket deltas sum to totals");
        assert_eq!(lost, stats.lost_to_fault);
        // Switch ports carried the stream: buckets hold sparse per-port
        // samples with transmit activity.
        assert!(b
            .iter()
            .any(|x| x.ports.iter().any(|p| p.tx_bytes > 0 && p.enqueued > 0)));
    }

    /// Enabling the recorder must not perturb the run: same seed, same
    /// received payload sequence, same FabricStats — telemetry reads
    /// the simulation, never shapes it.
    #[test]
    fn recorder_on_is_byte_identical_to_off() {
        fn drive<T: crate::telemetry::TelemetrySink>(
            mut sim: Simulator<P, Echo, T>,
        ) -> (Vec<(SimTime, P)>, FabricStats) {
            let hosts = sim.topology().hosts().to_vec();
            let (src, dst) = (hosts[0], hosts[15]);
            let agg = {
                let t = sim.topology();
                let edge = t.edge_switch(src);
                t.node_ports(edge)
                    .iter()
                    .map(|p| p.peer)
                    .find(|&n| t.kind(n) == NodeKind::Switch)
                    .expect("edge switch has aggregation uplinks")
            };
            for i in 0..40 {
                sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
            }
            sim.schedule_timer(src, SimTime::ZERO, 0);
            let plan = FaultPlan::new()
                .switch_down(SimTime::from_micros(100), agg)
                .switch_up(SimTime::from_micros(400), agg);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            let received = sim.agent(dst).received.clone();
            (received, sim.stats())
        }
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let mut off: Simulator<P, Echo, Option<Recorder>> =
            Simulator::with_telemetry(t.clone(), SimConfig::ndp(9), None);
        let mut on: Simulator<P, Echo, Option<Recorder>> = Simulator::with_telemetry(
            t.clone(),
            SimConfig::ndp(9),
            Some(Recorder::new(TelemetryConfig::default())),
        );
        let mut baseline: Simulator<P, Echo> = Simulator::new(t.clone(), SimConfig::ndp(9));
        for sim_hosts in [&mut off, &mut on] {
            for &h in t.hosts() {
                sim_hosts.set_agent(
                    h,
                    Echo {
                        to_send: vec![],
                        received: vec![],
                    },
                );
            }
        }
        for &h in t.hosts() {
            baseline.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let a = drive(off);
        let b = drive(on);
        let c = drive(baseline);
        assert_eq!(a, b, "recorder on vs off: identical trace and stats");
        assert_eq!(a, c, "Option sink vs compiled-out sink: identical");
    }

    #[test]
    fn note_anomaly_freezes_dump_with_recent_history() {
        let rec = Recorder::new(TelemetryConfig {
            window_ns: 1_000_000,
            ring_capacity: 4,
        });
        let t = {
            let mut t = Topology::new();
            let a = t.add_node(NodeKind::Host);
            let s = t.add_node(NodeKind::Switch);
            let b = t.add_node(NodeKind::Host);
            t.connect(a, s, 1_000_000_000, 10_000);
            t.connect(b, s, 1_000_000_000, 10_000);
            t.compute_routes();
            t
        };
        let mut sim: Simulator<P, Echo, Option<Recorder>> =
            Simulator::with_telemetry(t, SimConfig::ndp(1), Some(rec));
        let plan = FaultPlan::new()
            .link_down(SimTime::from_micros(10), NodeId(0), 0)
            .link_up(SimTime::from_micros(20), NodeId(0), 0);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        sim.note_anomaly(AnomalyKind::Timeout);
        let rec = sim.telemetry_mut().take().unwrap();
        assert_eq!(rec.dumps().len(), 1);
        let dump = &rec.dumps()[0];
        // The ring held the fault/reroute history leading up to the
        // anomaly (cap 4: the newest 4 of link-down, reroute, link-up,
        // reroute, anomaly).
        assert_eq!(dump.events.len(), 4);
        assert!(matches!(
            dump.events.last().unwrap().event,
            FabricEvent::Anomaly(AnomalyKind::Timeout)
        ));
    }
}
