//! The discrete-event simulation driver.
//!
//! The simulator owns the topology, one [`PortQueue`] per (node, port),
//! the multicast group tables, and one transport [`Agent`] per host. It
//! processes packet arrivals, port transmissions, agent timers, and
//! scripted fabric faults (see [`crate::fault`]) in deterministic
//! `(time, rank, sequence)` order, where `rank` 0 is the global
//! control plane (faults and reroutes) and rank `n + 1` is node `n`:
//! every event is keyed by the node that *authored* it and a per-node
//! sequence counter, so the order is a pure function of the simulated
//! causality — not of the order the implementation happened to push
//! events — and a sharded run (see [`crate::shard`]) reproduces the
//! serial schedule byte for byte.
//!
//! Hosts hand packets to their NIC queue; switches forward within the
//! packet's routing layer (assigned per flow, see
//! [`LayerAssign`], with re-assignment away from layers whose path to
//! the destination is dead) picking among the layer's advertised ports
//! by per-flow ECMP hash or per-packet spraying, or along a registered
//! multicast tree (built on the minimal layer). The link model is
//! store-and-forward: a packet arrives at the next node after
//! serialization + propagation.
//!
//! When a fault event executes mid-run, the simulator flushes the dead
//! element's queues, recomputes the routing tables against the live
//! [`FaultMask`], repairs every registered multicast tree, and drops
//! packets that were in flight on the failed link (they "arrive" on a
//! wire that no longer exists). All of it is accounted in
//! [`FabricStats`]: `lost_to_fault`, `reroutes`, `trees_repaired`.
//!
//! Internally the simulator keeps two heaps: the node heap (arrivals,
//! dequeues, timers — everything a single node authors and a single
//! node consumes) and the much smaller global heap (faults and
//! reroutes, which mutate fabric-wide state). The serial hot loop pops
//! the node heap once per event and only compares against an O(1) peek
//! of the global head; the sharded runner gives every shard its own
//! node heap and executes the global heap at synchronisation barriers.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use crate::fault::{FaultAction, FaultMask, FaultPlan};
use crate::packet::{Dest, GroupId, Packet, SimPayload};
use crate::queue::{Enqueued, PortQueue, QueueConfig, QueueStats};
use crate::rng::Pcg32;
use crate::shard::ShardPlan;
use crate::telemetry::{AnomalyKind, FabricEvent, NoTelemetry, PortProbe, TelemetrySink};
use crate::time::{serialization_ns, SimTime};
use crate::topology::{NodeId, NodeKind, RoutingPolicy, Topology};

/// Transport hook: one agent runs on every host and receives packets and
/// timers addressed to that host. Implementations queue outgoing packets
/// and timers on the [`Ctx`]; the simulator applies them after the
/// callback returns (no re-entrancy).
pub trait Agent<P: SimPayload> {
    /// A packet destined to this host (or a group it joined) arrived.
    fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<P>);
    /// A previously scheduled timer fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<P>);
}

/// Effect buffer handed to agent callbacks.
pub struct Ctx<P> {
    /// Current simulation time.
    pub now: SimTime,
    /// The host this agent runs on.
    pub node: NodeId,
    sends: Vec<Packet<P>>,
    timers: Vec<(SimTime, u64)>,
}

impl<P> Ctx<P> {
    fn new(now: SimTime, node: NodeId) -> Self {
        Self {
            now,
            node,
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// A detached context for unit-testing agents outside a simulator.
    /// Effects queued on it are inspectable via [`Ctx::queued_sends`] and
    /// simply discarded on drop.
    pub fn detached(now: SimTime, node: NodeId) -> Self {
        Self::new(now, node)
    }

    /// Packets queued so far (test inspection).
    pub fn queued_sends(&self) -> &[Packet<P>] {
        &self.sends
    }

    /// Timers queued so far (test inspection).
    pub fn queued_timers(&self) -> &[(SimTime, u64)] {
        &self.timers
    }

    /// Transmit a packet from this host (enters the NIC queue).
    pub fn send(&mut self, pkt: Packet<P>) {
        self.sends.push(pkt);
    }

    /// Fire `on_timer(token)` at absolute time `at`.
    pub fn timer_at(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, token));
    }

    /// Fire `on_timer(token)` after `delay_ns`.
    pub fn timer_after(&mut self, delay_ns: u64, token: u64) {
        let at = self.now + delay_ns;
        self.timers.push((at, token));
    }
}

/// Path selection among equal-cost ports (within the assigned routing
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Per-flow ECMP: hash of (flow id, switch id) picks the port —
    /// every packet of a flow follows one path (TCP-friendly).
    EcmpFlow,
    /// Per-packet spraying: uniform random port per packet (what
    /// Polyraptor wants; reordering is harmless under fountain coding).
    Spray,
}

/// How unicast traffic is assigned to routing layers (see
/// [`RoutingPolicy`]) — the pluggable flow→layer strategy, and the
/// extension point for FatPaths-style flowlet/loss-driven switching.
/// With a single-layer (minimal) policy it degenerates to classic
/// single-table forwarding.
///
/// Note there is deliberately no per-*packet* (or per-hop) layer
/// spraying: a packet that mixes layers across hops has no single
/// weighted-distance potential bounding its walk, so loop freedom and
/// the 2× stretch bound would be lost. Per-packet path diversity comes
/// from [`RouteMode::Spray`] *within* the assigned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerAssign {
    /// Per-flow hash (the FatPaths default): every packet of a flow
    /// rides one layer, so a flow sees stable path characteristics and
    /// every switch agrees on the layer without per-packet state.
    /// The first switch a packet enters stamps the assigned layer into
    /// the packet (exactly FatPaths' source stamping); downstream hops
    /// honour the stamp. Flows are re-assigned away from a layer whose
    /// path to the destination is dead at a hop (no advertised port, or
    /// every advertised port locally known down) — at most one move per
    /// (switch, flow, destination) per convergence window, counted in
    /// [`FabricStats::layer_reassignments`]; the moves are forgotten
    /// when routes converge (layers only reweight links, so after a
    /// repair every layer reaches everything the fabric reaches).
    FlowHash,
}

/// Simulator-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Queue discipline on switch ports.
    pub switch_queue: QueueConfig,
    /// Queue discipline on host NICs (deep drop-tail by default: host
    /// memory is plentiful; transports self-limit).
    pub host_queue: QueueConfig,
    /// Path selection policy (within the assigned layer).
    pub route: RouteMode,
    /// Flow→layer assignment strategy (irrelevant under a single-layer
    /// routing policy).
    pub layer_assign: LayerAssign,
    /// Control-plane convergence time: a detected fault kills traffic
    /// immediately, but routes (and multicast trees) are only recomputed
    /// this many nanoseconds later — during the window, packets keep
    /// being forwarded into the dead element and are lost. 0 = instant
    /// reroute (an idealised control plane).
    pub reroute_delay_ns: u64,
    /// RNG seed (spraying decisions).
    pub seed: u64,
    /// Worker threads for route (re)computation (applied to the
    /// topology via [`Topology::set_parallelism`]): 1 = serial (the
    /// default, the exact pre-parallel code path), 0 = one per
    /// available core. Results are byte-identical at every setting —
    /// a throughput knob only, so determinism per seed is unaffected.
    pub parallelism: usize,
    /// Event-loop shards (see [`crate::shard`]): 1 = the serial loop
    /// (the default), 0 = one shard per available core, `n` = partition
    /// the fabric into up to `n` switch-group shards and run them on
    /// scoped threads under conservative time-window synchronisation.
    /// Results are byte-identical per seed at every setting — like
    /// [`SimConfig::parallelism`], a throughput knob, never a behaviour
    /// knob.
    pub shards: usize,
}

impl SimConfig {
    /// NDP-style fabric (Polyraptor runs): trimming switches + spraying.
    pub fn ndp(seed: u64) -> Self {
        Self {
            switch_queue: QueueConfig::NDP_DEFAULT,
            host_queue: QueueConfig::DropTail { cap_pkts: 100_000 },
            route: RouteMode::Spray,
            layer_assign: LayerAssign::FlowHash,
            reroute_delay_ns: 0,
            seed,
            parallelism: 1,
            shards: 1,
        }
    }

    /// Classic fabric (TCP runs): drop-tail switches + per-flow ECMP.
    pub fn classic(seed: u64) -> Self {
        Self {
            switch_queue: QueueConfig::DROPTAIL_DEFAULT,
            host_queue: QueueConfig::DropTail { cap_pkts: 100_000 },
            route: RouteMode::EcmpFlow,
            layer_assign: LayerAssign::FlowHash,
            reroute_delay_ns: 0,
            seed,
            parallelism: 1,
            shards: 1,
        }
    }
}

/// Internal payload wrapper carrying the packet's routing-layer stamp.
///
/// The first switch a packet enters assigns its layer and stamps it
/// here ([`LAYER_UNSTAMPED`] until then); downstream switches honour
/// the stamp, so layer assignment needs no fabric-global state — the
/// property that lets shards forward without sharing a map. Queues and
/// events carry `Packet<Stamped<P>>`; agents only ever see the bare
/// `P` (packets are unwrapped at delivery and wrapped at the NIC).
#[derive(Debug, Clone)]
pub(crate) struct Stamped<P> {
    pub(crate) inner: P,
    pub(crate) layer: u8,
}

/// Sentinel layer stamp: not yet assigned by a switch.
pub(crate) const LAYER_UNSTAMPED: u8 = u8::MAX;

impl<P: SimPayload> SimPayload for Stamped<P> {
    fn is_control(&self) -> bool {
        self.inner.is_control()
    }
    fn trim(&self) -> Option<Self> {
        // Trimming keeps the stamp: a trimmed header still rides its
        // flow's layer.
        self.inner.trim().map(|t| Stamped {
            inner: t,
            layer: self.layer,
        })
    }
}

fn wrap_packet<P>(pkt: Packet<P>) -> Packet<Stamped<P>> {
    Packet {
        src: pkt.src,
        dst: pkt.dst,
        flow: pkt.flow,
        size: pkt.size,
        payload: Stamped {
            inner: pkt.payload,
            layer: LAYER_UNSTAMPED,
        },
    }
}

fn unwrap_packet<P>(pkt: Packet<Stamped<P>>) -> Packet<P> {
    Packet {
        src: pkt.src,
        dst: pkt.dst,
        flow: pkt.flow,
        size: pkt.size,
        payload: pkt.payload.inner,
    }
}

/// Events a single node authors and a single node consumes. These live
/// on the node heap (per-shard in a sharded run).
#[derive(Debug)]
pub(crate) enum NodeEvent<P> {
    /// Packet fully received at the far end of `(from, port)`
    /// (store-and-forward). Carrying the transmitting side lets the
    /// dispatcher drop packets whose link died while they were on the
    /// wire. Boxed: `Arrive` dwarfs the other variants, and heap sift
    /// moves every event by value — a thin event is most of the event
    /// loop's memory traffic.
    Arrive {
        /// Transmitting node.
        from: NodeId,
        /// Transmitting port on `from`.
        port: u16,
        /// The packet.
        pkt: Box<Packet<Stamped<P>>>,
    },
    /// Port `port` of `node` finished a transmission; send the next one.
    Dequeue(NodeId, u16),
    /// Agent timer.
    Timer(NodeId, u64),
}

/// Fabric-global events: they mutate state every shard reads (fault
/// mask, routing tables, multicast trees), so they execute serially at
/// synchronisation barriers in a sharded run. They live on their own
/// small heap.
#[derive(Debug)]
pub(crate) enum GlobalEvent {
    /// Scripted fabric fault (see [`crate::fault`]).
    Fault(FaultAction),
    /// Deferred route recomputation (control-plane convergence after a
    /// fault; coalesces multiple pending faults into one recompute).
    Reroute,
}

/// Rank of global events in the `(time, rank, seq)` key: they sort
/// before any node event at the same instant (node `n` has rank
/// `n + 1`), which pins the convergence-window semantics — a reroute
/// at `t` is visible to every packet arriving at `t`.
pub(crate) const GLOBAL_RANK: u32 = 0;

/// A heap entry. Ordered by `(at, rank, seq)` where `rank` identifies
/// the *author* (0 = the global control plane, `n + 1` = node `n`) and
/// `seq` is the author's private counter. The key is a pure function
/// of simulated causality: node `n` authors the same events with the
/// same counters whether it runs on the serial loop or on any shard,
/// so serial and sharded schedules are identical. Since `(rank, seq)`
/// never repeats, the order is total — no tie ever falls through to
/// implementation-defined push order.
#[derive(Debug)]
pub(crate) struct Ev<K> {
    pub(crate) at: SimTime,
    pub(crate) rank: u32,
    pub(crate) seq: u64,
    pub(crate) kind: K,
}

impl<K> Ev<K> {
    pub(crate) fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.rank, self.seq)
    }
}

impl<K> PartialEq for Ev<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<K> Eq for Ev<K> {}
impl<K> PartialOrd for Ev<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K> Ord for Ev<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Aggregated fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets delivered to host agents.
    pub delivered: u64,
    /// Packets dropped anywhere in the fabric (congestion).
    pub dropped: u64,
    /// Packets trimmed to headers.
    pub trimmed: u64,
    /// Events processed.
    pub events: u64,
    /// Packets lost to fabric faults: flushed from a dead element's
    /// queues, in flight on a failed link, arriving at a dead switch, or
    /// addressed to a destination the fault mask disconnected.
    pub lost_to_fault: u64,
    /// Route recomputations triggered by fault events (incremental
    /// repairs and full recomputations combined).
    pub reroutes: u64,
    /// Reroutes served by incremental [`Topology::repair_routes`]
    /// surgery instead of a full recomputation.
    pub reroutes_incremental: u64,
    /// Destination trees rebuilt by per-destination BFS across all
    /// reroutes (full recomputations count every destination).
    pub route_dests_rebuilt: u64,
    /// Multicast trees rebuilt during reroutes.
    pub trees_repaired: u64,
    /// Down+up pairs of the same element that both landed inside one
    /// convergence window: the pair cancels out of the pending mask
    /// delta, so the deferred reroute sees a no-op — a flapping link
    /// costs its flushed packets, never a route recomputation.
    pub flaps_coalesced: u64,
    /// Reroutes whose delta contained restorations that were healed by
    /// bounded restore surgery (per-destination rebuilds only where a
    /// distance could shrink) instead of a full recomputation.
    pub restores_incremental: u64,
    /// Per-layer utilisation: unicast packets forwarded at switches,
    /// indexed by the routing layer that carried them (single-layer
    /// policies count everything in slot 0; slots past the policy's
    /// layer count stay 0).
    pub layer_forwarded: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-layer share of [`FabricStats::trimmed`]: trims suffered by
    /// unicast packets at the switch hop that forwarded them, indexed by
    /// the routing layer that carried them. Host-NIC and multicast trims
    /// count in the global total only, so the array can sum below it.
    pub layer_trimmed: [u64; RoutingPolicy::MAX_LAYERS],
    /// Per-layer share of [`FabricStats::dropped`], attributed like
    /// [`FabricStats::layer_trimmed`].
    pub layer_dropped: [u64; RoutingPolicy::MAX_LAYERS],
    /// Flows moved away from a layer whose path to the destination was
    /// dead at a hop — either no advertised port there, or every
    /// advertised port locally known down — onto a live layer. At most
    /// one move per (switch, flow, destination) per convergence window.
    pub layer_reassignments: u64,
    /// Synchronisation epochs executed by the sharded event loop (0 in
    /// a serial run). Shard-machinery counter: it varies with the shard
    /// count by construction — compare runs across shard counts with
    /// [`FabricStats::shard_invariant`].
    pub shard_epochs: u64,
    /// Packets handed between shards through the per-epoch mailboxes
    /// (0 in a serial run; shard-machinery counter, see
    /// [`FabricStats::shard_invariant`]).
    pub cross_shard_packets: u64,
    /// Epochs in which a shard's window closed before it could execute
    /// a single local event — the conservative horizon held it back (0
    /// in a serial run; shard-machinery counter, see
    /// [`FabricStats::shard_invariant`]).
    pub horizon_stalls: u64,
}

impl FabricStats {
    /// Accumulate another counter set into this one (all fields are
    /// additive; used to merge per-shard lanes into run totals).
    pub(crate) fn absorb(&mut self, other: &FabricStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.trimmed += other.trimmed;
        self.events += other.events;
        self.lost_to_fault += other.lost_to_fault;
        self.reroutes += other.reroutes;
        self.reroutes_incremental += other.reroutes_incremental;
        self.route_dests_rebuilt += other.route_dests_rebuilt;
        self.trees_repaired += other.trees_repaired;
        self.flaps_coalesced += other.flaps_coalesced;
        self.restores_incremental += other.restores_incremental;
        for i in 0..RoutingPolicy::MAX_LAYERS {
            self.layer_forwarded[i] += other.layer_forwarded[i];
            self.layer_trimmed[i] += other.layer_trimmed[i];
            self.layer_dropped[i] += other.layer_dropped[i];
        }
        self.layer_reassignments += other.layer_reassignments;
        self.shard_epochs += other.shard_epochs;
        self.cross_shard_packets += other.cross_shard_packets;
        self.horizon_stalls += other.horizon_stalls;
    }

    /// These counters with the shard-machinery fields
    /// ([`FabricStats::shard_epochs`], [`FabricStats::cross_shard_packets`],
    /// [`FabricStats::horizon_stalls`]) zeroed. Every other field is
    /// byte-identical across shard counts per seed; the machinery
    /// counters describe the runner, not the simulated fabric, so
    /// cross-shard-count comparisons go through this view.
    pub fn shard_invariant(&self) -> FabricStats {
        let mut s = *self;
        s.shard_epochs = 0;
        s.cross_shard_packets = 0;
        s.horizon_stalls = 0;
        s
    }
}

/// Canonical identity of a failable element, for flap tracking: links
/// are keyed by the lower of their two directed `(node, port)` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FaultKey {
    Link(u32, u16),
    Node(u32),
}

/// A registered multicast group: membership is retained so the
/// forwarding tree can be rebuilt when faults change the fabric.
pub(crate) struct Group {
    sender: NodeId,
    receivers: Vec<NodeId>,
    pub(crate) table: HashMap<NodeId, Vec<u16>>,
}

/// Per-switch flat open-addressing memo of layer re-assignments, keyed
/// by `(flow, destination)` — the CSR-flattening treatment applied to
/// the old fabric-global `HashMap` on the forwarding hot path. Exact
/// full-key compare (no folded-hash false hits), power-of-two capacity,
/// lazy allocation (a healthy fabric never allocates), cleared at every
/// applied reroute. Per-switch rather than global so shards never share
/// forwarding state.
#[derive(Debug, Clone, Default)]
pub(crate) struct LayerMemo {
    keys: Vec<(u64, u32)>,
    vals: Vec<u8>,
    len: usize,
}

/// Empty-slot sentinel in [`LayerMemo::vals`] (never a valid layer:
/// layers are bounded by [`RoutingPolicy::MAX_LAYERS`]).
const MEMO_EMPTY: u8 = u8::MAX;

fn memo_hash(flow: u64, dst: u32) -> u64 {
    let mut z = flow ^ (u64::from(dst) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LayerMemo {
    /// Index of the key's slot: its current one, or the empty slot an
    /// insert would claim.
    fn slot(&self, flow: u64, dst: u32) -> usize {
        let mask = self.vals.len() - 1;
        let mut i = memo_hash(flow, dst) as usize & mask;
        loop {
            if self.vals[i] == MEMO_EMPTY || self.keys[i] == (flow, dst) {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn get(&self, flow: u64, dst: u32) -> Option<u8> {
        if self.len == 0 {
            return None;
        }
        let i = self.slot(flow, dst);
        (self.vals[i] != MEMO_EMPTY).then(|| self.vals[i])
    }

    fn insert(&mut self, flow: u64, dst: u32, layer: u8) {
        debug_assert_ne!(layer, MEMO_EMPTY);
        // Grow at 7/8 load so the linear probe stays short.
        if self.vals.is_empty() || self.len * 8 >= self.vals.len() * 7 {
            self.grow();
        }
        let i = self.slot(flow, dst);
        if self.vals[i] == MEMO_EMPTY {
            self.keys[i] = (flow, dst);
            self.len += 1;
        }
        self.vals[i] = layer;
    }

    pub(crate) fn clear(&mut self) {
        if self.len > 0 {
            self.vals.fill(MEMO_EMPTY);
            self.len = 0;
        }
    }

    fn grow(&mut self) {
        let cap = (self.vals.len() * 2).max(16);
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        self.keys = vec![(0, 0); cap];
        self.vals = vec![MEMO_EMPTY; cap];
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != MEMO_EMPTY {
                let i = self.slot(k.0, k.1);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

/// Everything one node owns: its port queues, transmit state, agent,
/// RNG stream, event counter, and layer memo. Cells are stored grouped
/// by shard so the sharded runner can hand each worker a disjoint
/// `&mut` slice; all node-event dispatch mutates exactly one cell.
pub(crate) struct NodeCell<P: SimPayload, A> {
    pub(crate) node: NodeId,
    pub(crate) queues: Vec<PortQueue<Stamped<P>>>,
    pub(crate) busy: Vec<bool>,
    pub(crate) agent: Option<A>,
    /// Per-node RNG stream (spraying decisions), forked from the
    /// config seed in node-id order — a function of (seed, node), so
    /// the stream is identical at every shard count.
    pub(crate) rng: Pcg32,
    /// The node's private event counter: the `seq` of every event this
    /// node authors. Advances only when the node dispatches, so it is
    /// shard-invariant.
    pub(crate) seq: u64,
    pub(crate) memo: LayerMemo,
}

impl<P: SimPayload, A> NodeCell<P, A> {
    pub(crate) fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// Fabric-global mutable state: the fault mask, route/reroute
/// bookkeeping, multicast groups, and the control plane's own stats
/// and event counter. Only the serial loop or shard worker 0 (under a
/// write lock, at a barrier) mutates it; node dispatch reads it.
pub(crate) struct Control {
    /// Live fault state (dead links/switches). Routing tables lag it by
    /// the configured control-plane convergence delay.
    pub(crate) mask: FaultMask,
    /// A deferred reroute is already scheduled (coalesces bursts of
    /// fault events into one recompute).
    pub(crate) reroute_pending: bool,
    /// Elements that went down since the last applied reroute — an Up
    /// for one of these inside the same convergence window is a
    /// coalesced flap (the pair cancels out of the pending delta).
    pending_down: std::collections::BTreeSet<FaultKey>,
    /// Per-port rate overrides (hotspot/failure injection); keyed by
    /// (node, port), in bits per second. Zero means the link is down.
    rate_overrides: HashMap<(u32, u16), u64>,
    // BTreeMap: tree repair iterates the groups, and iteration order
    // must be seed-stable for determinism.
    pub(crate) groups: BTreeMap<GroupId, Group>,
    next_group: u32,
    /// Counters the control plane owns (reroutes, repairs, flaps, its
    /// own processed events); node-context counters accumulate in
    /// [`Lane::stats`] and the two merge in [`Simulator::stats`].
    pub(crate) stats: FabricStats,
    /// The global author's private event counter (rank 0 events).
    pub(crate) gseq: u64,
}

/// Per-execution-lane scratch: the stats a lane's node dispatch
/// accumulates, the events it emits (routed to heaps or mailboxes by
/// the driver), and the telemetry notes it buffers. The serial loop
/// owns one persistent lane; each shard worker gets a fresh one that
/// merges into it at run end.
pub(crate) struct Lane<P> {
    pub(crate) stats: FabricStats,
    pub(crate) out: Vec<Ev<NodeEvent<P>>>,
    /// Telemetry events emitted during node dispatch, keyed by the
    /// authoring event so a sharded run can replay them to the sink in
    /// exact serial order at synchronisation points.
    pub(crate) notes: Vec<(SimTime, u32, u64, FabricEvent)>,
}

impl<P> Default for Lane<P> {
    fn default() -> Self {
        Self {
            stats: FabricStats::default(),
            out: Vec::new(),
            notes: Vec::new(),
        }
    }
}

/// The read-only context node dispatch runs against: topology and
/// config are immutable for a whole run; control only changes at
/// global events, which are barriers in a sharded run.
pub(crate) struct Env<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) config: &'a SimConfig,
    pub(crate) control: &'a Control,
    pub(crate) tele_on: bool,
}

/// The per-node slice of a global event's effect. The shared part of a
/// fault/reroute (mask, tables, telemetry annotations) applies once;
/// these ops touch individual cells and are applied by whichever
/// execution lane owns the cell, in list order — so per-node effect
/// order is identical in serial and sharded runs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LocalOp {
    /// Drop everything queued on the port, accounting to
    /// `lost_to_fault`.
    Flush(NodeId, u16),
    /// Restart the port's transmit loop if it is idle with packets
    /// waiting.
    Kick(NodeId, u16),
    /// Forget every switch's layer re-assignment memo — issued at
    /// every mask change (the memos cache a pure function of the
    /// mask era) and at applied reroutes (repaired tables make every
    /// layer whole again).
    ClearMemos,
}

/// The deterministic packet-level simulator.
///
/// The third type parameter is the telemetry sink (see
/// [`crate::telemetry`]): the default [`NoTelemetry`] monomorphizes
/// every hook to nothing, `Option<Recorder>` is the runtime-switchable
/// sink, and a bare `Recorder` is always-on. Enabling telemetry never
/// perturbs results: no probe events enter the heap and no RNG is
/// consumed, so event order and every random draw are unchanged.
pub struct Simulator<P: SimPayload, A: Agent<P>, T: TelemetrySink = NoTelemetry> {
    pub(crate) topo: Topology,
    pub(crate) config: SimConfig,
    /// Shard partition, present iff the resolved shard count exceeds 1
    /// on this topology; `None` runs the serial loop.
    pub(crate) plan: Option<ShardPlan>,
    /// One cell per node, stored grouped by shard (identity order when
    /// unsharded); [`Simulator::cell_of`] maps node id → slot.
    pub(crate) cells: Vec<NodeCell<P, A>>,
    pub(crate) cell_of: Vec<u32>,
    /// The node-event heap (all shards' events between runs).
    pub(crate) nevents: BinaryHeap<Reverse<Ev<NodeEvent<P>>>>,
    /// The global-event heap (faults, reroutes).
    pub(crate) gevents: BinaryHeap<Reverse<Ev<GlobalEvent>>>,
    pub(crate) control: Control,
    /// The serial loop's lane; sharded workers merge their lanes into
    /// it at run end, so its stats accumulate across both modes.
    pub(crate) lane: Lane<P>,
    pub(crate) now: SimTime,
    /// Telemetry sink (default: the zero-cost [`NoTelemetry`]).
    pub(crate) telemetry: T,
}

impl<P: SimPayload, A: Agent<P>> Simulator<P, A> {
    /// Build a simulator over a routed topology, with telemetry
    /// compiled out (the zero-cost [`NoTelemetry`] sink).
    pub fn new(topo: Topology, config: SimConfig) -> Self {
        Self::with_telemetry(topo, config, NoTelemetry)
    }
}

impl<P: SimPayload, A: Agent<P>, T: TelemetrySink> Simulator<P, A, T> {
    /// Build a simulator over a routed topology with an explicit
    /// telemetry sink — pass `None::<Recorder>` for a runtime-switchable
    /// sink that is currently off, or `Some(Recorder::new(..))` to
    /// record.
    pub fn with_telemetry(mut topo: Topology, config: SimConfig, telemetry: T) -> Self {
        topo.set_parallelism(config.parallelism);
        let n = topo.node_count();
        let requested = crate::par::resolve(config.shards);
        let plan = if requested > 1 {
            let p = ShardPlan::build(&topo, requested);
            (p.shards > 1).then_some(p)
        } else {
            None
        };
        // Per-node RNG streams fork from the config seed in node-id
        // order: a pure function of (seed, node), independent of the
        // shard layout.
        let mut root = Pcg32::new(config.seed);
        let mut rngs: Vec<Pcg32> = (0..n).map(|i| root.fork(i as u64)).collect();
        // Cells are stored grouped by shard (ascending node id within
        // each shard) so the sharded runner can split them into
        // disjoint contiguous worker slices.
        let order: Vec<u32> = match &plan {
            Some(p) => p.order.clone(),
            None => (0..n as u32).collect(),
        };
        let mut cell_of = vec![0u32; n];
        for (slot, &node) in order.iter().enumerate() {
            cell_of[node as usize] = slot as u32;
        }
        let mut cells = Vec::with_capacity(n);
        for &node in &order {
            let node = NodeId(node);
            let qc = match topo.kind(node) {
                NodeKind::Host => config.host_queue,
                NodeKind::Switch => config.switch_queue,
            };
            let ports = topo.node_ports(node).len();
            cells.push(NodeCell {
                node,
                queues: (0..ports).map(|_| PortQueue::new(qc)).collect(),
                busy: vec![false; ports],
                agent: None,
                rng: std::mem::replace(&mut rngs[node.0 as usize], Pcg32::new(0)),
                seq: 0,
                memo: LayerMemo::default(),
            });
        }
        Self {
            topo,
            config,
            plan,
            cells,
            cell_of,
            nevents: BinaryHeap::new(),
            gevents: BinaryHeap::new(),
            control: Control {
                mask: FaultMask::new(),
                reroute_pending: false,
                pending_down: std::collections::BTreeSet::new(),
                rate_overrides: HashMap::new(),
                groups: BTreeMap::new(),
                next_group: 0,
                stats: FabricStats::default(),
                gseq: 0,
            },
            lane: Lane::default(),
            now: SimTime::ZERO,
            telemetry,
        }
    }

    fn cell(&self, node: NodeId) -> &NodeCell<P, A> {
        &self.cells[self.cell_of[node.0 as usize] as usize]
    }

    fn cell_mut(&mut self, node: NodeId) -> &mut NodeCell<P, A> {
        let slot = self.cell_of[node.0 as usize] as usize;
        &mut self.cells[slot]
    }

    /// Push an event authored by `node` (rank `node + 1`, the node's
    /// own counter) onto the node heap.
    fn push_node_event(&mut self, node: NodeId, at: SimTime, kind: NodeEvent<P>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.cell_mut(node).next_seq();
        self.nevents.push(Reverse(Ev {
            at,
            rank: node.0 + 1,
            seq,
            kind,
        }));
    }

    /// Push a global event (rank 0, the control plane's counter).
    fn push_global_event(&mut self, at: SimTime, kind: GlobalEvent) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.control.gseq;
        self.control.gseq += 1;
        self.gevents.push(Reverse(Ev {
            at,
            rank: GLOBAL_RANK,
            seq,
            kind,
        }));
    }

    /// Degrade (or restore) one direction of a link: packets leaving
    /// `node` through `port` serialize at `rate_bps` instead of the
    /// topology rate. `0` takes the direction down entirely (packets
    /// queue until the queue overflows — a silent failure, the hardest
    /// kind). Used for hotspot/failure-injection experiments; call
    /// between `run_until` slices to script changes over time.
    pub fn set_link_rate(&mut self, node: NodeId, port: u16, rate_bps: u64) {
        assert!(
            (port as usize) < self.topo.node_ports(node).len(),
            "no such port"
        );
        if rate_bps == self.topo.port(node, port).rate_bps {
            self.control.rate_overrides.remove(&(node.0, port));
        } else {
            self.control.rate_overrides.insert((node.0, port), rate_bps);
        }
        // Restoring a downed link must restart its transmit loop if
        // packets queued up in the meantime.
        if rate_bps > 0 {
            let now = self.now;
            let cell = self.cell(node);
            if !cell.busy[port as usize] && !cell.queues[port as usize].is_empty() {
                self.push_node_event(node, now, NodeEvent::Dequeue(node, port));
            }
        }
    }

    /// Current effective rate of a port (honouring overrides).
    pub fn effective_rate(&self, node: NodeId, port: u16) -> u64 {
        self.control
            .rate_overrides
            .get(&(node.0, port))
            .copied()
            .unwrap_or_else(|| self.topo.port(node, port).rate_bps)
    }

    /// The topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Fabric counters so far (control-plane and node-lane counters
    /// merged).
    pub fn stats(&self) -> FabricStats {
        let mut s = self.control.stats;
        s.absorb(&self.lane.stats);
        s
    }

    /// The telemetry sink (read-only).
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// Mutable access to the telemetry sink — install a recorder
    /// (`*sim.telemetry_mut() = Some(Recorder::new(..))`) or take the
    /// recorded data out after a run.
    pub fn telemetry_mut(&mut self) -> &mut T {
        &mut self.telemetry
    }

    /// Close the final (partial) telemetry bucket against the current
    /// counters. Call once after the last `run_until` slice, before
    /// taking the recorder out; a no-op when telemetry is off.
    pub fn finish_telemetry(&mut self) {
        if !self.telemetry.enabled() {
            return;
        }
        let probes = self.collect_port_probes();
        let (now, stats) = (self.now, self.stats());
        self.telemetry.finish(now, &stats, &probes);
    }

    /// Flag an anomaly on the telemetry sink (freezes a flight-recorder
    /// dump). Workloads call this post-run for transport-level
    /// anomalies — timeouts, stranded sessions — that the fabric cannot
    /// see itself.
    pub fn note_anomaly(&mut self, kind: AnomalyKind) {
        let now = self.now;
        self.telemetry.record(now, FabricEvent::Anomaly(kind));
    }

    /// Snapshot every switch port's depth and cumulative counters, in
    /// deterministic (node, port) order. Only called at bucket
    /// boundaries and at [`Simulator::finish_telemetry`].
    fn collect_port_probes(&self) -> Vec<PortProbe> {
        let mut probes = Vec::new();
        for n in 0..self.topo.node_count() {
            let node = NodeId(n as u32);
            if self.topo.kind(node) != NodeKind::Switch {
                continue;
            }
            for (p, q) in self.cell(node).queues.iter().enumerate() {
                probes.push(PortProbe {
                    node: n as u32,
                    port: p as u16,
                    depth: q.len() as u32,
                    queue: q.stats(),
                });
            }
        }
        probes
    }

    /// Catch the sink up to `upto`: close every bucket whose boundary
    /// the event loop is about to cross. Counters only change at
    /// events, so closing lazily here is exactly equivalent to an eager
    /// probe at each boundary — without polluting the event heap (which
    /// would perturb sequence numbers and break per-seed byte
    /// identity).
    #[cold]
    fn close_telemetry_buckets(&mut self, upto: SimTime) {
        while upto >= self.telemetry.next_boundary() {
            let probes = self.collect_port_probes();
            let stats = self.stats();
            self.telemetry.close_bucket(&stats, &probes);
        }
    }

    /// Queue statistics of one port.
    pub fn queue_stats(&self, node: NodeId, port: u16) -> QueueStats {
        self.cell(node).queues[port as usize].stats()
    }

    /// Sum of queue statistics over every switch port.
    pub fn switch_queue_totals(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for cell in &self.cells {
            if self.topo.kind(cell.node) != NodeKind::Switch {
                continue;
            }
            for q in &cell.queues {
                let s = q.stats();
                total.enqueued += s.enqueued;
                total.trimmed += s.trimmed;
                total.dropped += s.dropped;
                total.tx_bytes += s.tx_bytes;
                total.max_depth = total.max_depth.max(s.max_depth);
            }
        }
        total
    }

    /// Install the agent for a host.
    pub fn set_agent(&mut self, host: NodeId, agent: A) {
        assert_eq!(self.topo.kind(host), NodeKind::Host, "agents run on hosts");
        self.cell_mut(host).agent = Some(agent);
    }

    /// Immutable access to a host's agent.
    pub fn agent(&self, host: NodeId) -> &A {
        self.cell(host).agent.as_ref().expect("no agent installed")
    }

    /// Mutable access to a host's agent (between runs).
    pub fn agent_mut(&mut self, host: NodeId) -> &mut A {
        self.cell_mut(host)
            .agent
            .as_mut()
            .expect("no agent installed")
    }

    /// Iterate over installed agents in node-id order (shard layout
    /// never leaks into report order).
    pub fn agents(&self) -> impl Iterator<Item = (NodeId, &A)> {
        self.cell_of.iter().enumerate().filter_map(|(n, &slot)| {
            self.cells[slot as usize]
                .agent
                .as_ref()
                .map(|a| (NodeId(n as u32), a))
        })
    }

    /// Register a multicast tree from `sender` to `receivers`.
    ///
    /// The tree is the union of shortest paths with up-path choices keyed
    /// deterministically by (group, switch), so one copy of each packet
    /// crosses any shared link and branching happens as low as possible —
    /// the DCCast-style forwarding-tree model the paper's multicast
    /// experiments assume.
    pub fn register_group(&mut self, sender: NodeId, receivers: &[NodeId]) -> GroupId {
        assert!(!receivers.is_empty(), "multicast group needs receivers");
        let gid = GroupId(self.control.next_group);
        self.control.next_group += 1;
        for &r in receivers {
            assert_ne!(r, sender, "sender cannot be a group receiver");
            assert!(
                !self.topo.try_next_ports(sender, r).is_empty(),
                "group receiver {} unreachable from sender {} at registration",
                r.0,
                sender.0
            );
        }
        let table = build_tree(&self.topo, gid, sender, receivers);
        self.control.groups.insert(
            gid,
            Group {
                sender,
                receivers: receivers.to_vec(),
                table,
            },
        );
        gid
    }

    /// Schedule every event of a fault plan for mid-run execution. May
    /// be called multiple times (plans merge).
    ///
    /// # Panics
    /// Panics if any event lies before the current simulation time — a
    /// past-dated event would drag the clock backwards and corrupt every
    /// relative timestamp computed while dispatching it.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            assert!(
                ev.at >= self.now,
                "fault event at {} is in the simulator's past (now {})",
                ev.at,
                self.now
            );
            self.push_global_event(ev.at, GlobalEvent::Fault(ev.action));
        }
    }

    /// The live fault mask (what is currently failed).
    pub fn fault_mask(&self) -> &FaultMask {
        &self.control.mask
    }

    /// Schedule a timer for a host agent (used by workloads to start
    /// sessions).
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push_node_event(node, at, NodeEvent::Timer(node, token));
    }

    /// Run until the event queue drains or `deadline` passes. Returns the
    /// number of events processed.
    ///
    /// With a resolved shard count above 1 (see [`SimConfig::shards`])
    /// the run executes on the sharded event loop — byte-identical
    /// results, parallel wall clock.
    pub fn run_until(&mut self, deadline: SimTime) -> u64
    where
        P: Send,
        A: Send,
        T: Send + Sync,
    {
        if self.plan.is_some() {
            crate::shard::run_sharded(self, deadline)
        } else {
            self.run_serial(deadline)
        }
    }

    /// Run until no events remain (workloads bound their own horizon via
    /// timers, so this terminates once all transfers finish).
    pub fn run_to_completion(&mut self) -> u64
    where
        P: Send,
        A: Send,
        T: Send + Sync,
    {
        self.run_until(SimTime::MAX)
    }

    /// The serial event loop. The hot path is one `pop` per node event
    /// (no peek-then-pop double heap access); the rare global head is
    /// an O(1) peek compared against the popped key, and loses ties by
    /// rank only when it is genuinely later.
    fn run_serial(&mut self, deadline: SimTime) -> u64 {
        let tele_on = self.telemetry.enabled();
        let mut node_processed = 0u64;
        let mut global_processed = 0u64;
        loop {
            let next_node = self.nevents.pop();
            let gkey = self.gevents.peek().map(|Reverse(g)| g.key());
            let take_global = match (&next_node, gkey) {
                (Some(Reverse(n)), Some(gk)) => gk < n.key(),
                (None, Some(_)) => true,
                (_, None) => false,
            };
            if take_global {
                if let Some(ev) = next_node {
                    self.nevents.push(ev);
                }
                let Reverse(gev) = self.gevents.pop().expect("peeked");
                if gev.at > deadline {
                    self.gevents.push(Reverse(gev));
                    break;
                }
                // Telemetry bucket boundaries are honoured lazily: an
                // event at or past the open bucket's end closes it
                // first, so a bucket never includes later activity. One
                // always-false comparison when telemetry is off
                // (`next_boundary` is MAX).
                if gev.at >= self.telemetry.next_boundary() {
                    self.close_telemetry_buckets(gev.at);
                }
                self.now = gev.at;
                self.apply_global(gev.at, gev.kind);
                global_processed += 1;
            } else {
                let Some(Reverse(ev)) = next_node else {
                    break;
                };
                if ev.at > deadline {
                    self.nevents.push(Reverse(ev));
                    break;
                }
                if ev.at >= self.telemetry.next_boundary() {
                    self.close_telemetry_buckets(ev.at);
                }
                self.now = ev.at;
                let target = target_of(&ev.kind, &self.topo);
                let slot = self.cell_of[target.0 as usize] as usize;
                let env = Env {
                    topo: &self.topo,
                    config: &self.config,
                    control: &self.control,
                    tele_on,
                };
                dispatch_node(
                    &env,
                    &mut self.cells[slot],
                    &mut self.lane,
                    ev.at,
                    ev.rank,
                    ev.seq,
                    ev.kind,
                );
                while let Some(oe) = self.lane.out.pop() {
                    self.nevents.push(Reverse(oe));
                }
                if tele_on {
                    for (nat, _, _, fe) in self.lane.notes.drain(..) {
                        self.telemetry.record(nat, fe);
                    }
                }
                node_processed += 1;
            }
        }
        self.lane.stats.events += node_processed;
        self.control.stats.events += global_processed;
        node_processed + global_processed
    }

    /// Execute one global event: apply the shared part (mask, tables,
    /// telemetry, control stats), then the per-node ops in list order.
    pub(crate) fn apply_global(&mut self, at: SimTime, kind: GlobalEvent) {
        let mut ops = Vec::new();
        match kind {
            GlobalEvent::Fault(action) => {
                // request_reroute needs to push onto the global heap:
                // split the borrow by staging the push.
                let mut reroute_at = None;
                apply_fault_shared(
                    &self.topo,
                    &mut self.control,
                    &mut self.telemetry,
                    self.config.reroute_delay_ns,
                    at,
                    action,
                    &mut ops,
                    &mut reroute_at,
                );
                if let Some(t) = reroute_at {
                    self.push_global_event(t, GlobalEvent::Reroute);
                }
            }
            GlobalEvent::Reroute => {
                self.control.reroute_pending = false;
                reroute_shared(
                    &mut self.topo,
                    &mut self.control,
                    &mut self.telemetry,
                    at,
                    &mut ops,
                );
            }
        }
        self.apply_local_ops(at, &ops);
    }

    /// Apply a global event's per-node ops on the serial loop (a shard
    /// worker applies the same list filtered to its own cells).
    fn apply_local_ops(&mut self, at: SimTime, ops: &[LocalOp]) {
        for op in ops {
            match *op {
                LocalOp::Flush(n, p) => {
                    let slot = self.cell_of[n.0 as usize] as usize;
                    let lost = self.cells[slot].queues[p as usize].flush();
                    self.lane.stats.lost_to_fault += lost as u64;
                }
                LocalOp::Kick(n, p) => {
                    let cell = self.cell(n);
                    if !cell.busy[p as usize] && !cell.queues[p as usize].is_empty() {
                        self.push_node_event(n, at, NodeEvent::Dequeue(n, p));
                    }
                }
                LocalOp::ClearMemos => {
                    for cell in &mut self.cells {
                        cell.memo.clear();
                    }
                }
            }
        }
    }
}

/// The node a node-event executes at (and therefore the shard it
/// belongs to): arrivals execute at the receiving end of the wire.
pub(crate) fn target_of<P>(kind: &NodeEvent<P>, topo: &Topology) -> NodeId {
    match kind {
        NodeEvent::Arrive { from, port, .. } => topo.port(*from, *port).peer,
        NodeEvent::Dequeue(n, _) => *n,
        NodeEvent::Timer(n, _) => *n,
    }
}

/// Canonical flap-tracking key of a link (the lower directed entry).
fn link_key(topo: &Topology, node: NodeId, port: u16) -> FaultKey {
    let back = topo.port(node, port);
    let (a, b) = ((node.0, port), (back.peer.0, back.peer_port));
    let (n, p) = a.min(b);
    FaultKey::Link(n, p)
}

/// Schedule a route recomputation after the configured control-plane
/// convergence delay, unless one is already pending. Returns the fire
/// time through `reroute_at` (the caller owns the global heap).
fn request_reroute(
    control: &mut Control,
    reroute_delay_ns: u64,
    now: SimTime,
    reroute_at: &mut Option<SimTime>,
) {
    if control.reroute_pending {
        return;
    }
    control.reroute_pending = true;
    *reroute_at = Some(now + reroute_delay_ns);
}

/// The shared part of a fault event: telemetry annotation, fault mask,
/// flap bookkeeping, rate overrides, and the deferred-reroute request.
/// Per-node effects (queue flushes, transmit kicks) come back as
/// [`LocalOp`]s in deterministic order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_fault_shared<T: TelemetrySink>(
    topo: &Topology,
    control: &mut Control,
    telemetry: &mut T,
    reroute_delay_ns: u64,
    now: SimTime,
    action: FaultAction,
    ops: &mut Vec<LocalOp>,
    reroute_at: &mut Option<SimTime>,
) {
    // Every mask change starts a new fault era: the layer memos cache
    // a pure function of (tables, mask), so they must be forgotten the
    // moment the mask moves or a stale verdict would depend on *when*
    // a flow was first seen. (RateChange is silent degradation — the
    // mask is untouched and the memos stay valid.)
    if !matches!(action, FaultAction::RateChange { .. }) {
        ops.push(LocalOp::ClearMemos);
    }
    match action {
        FaultAction::LinkDown { node, port } => {
            telemetry.record(now, FabricEvent::LinkDown { node: node.0, port });
            let back = *topo.port(node, port);
            control.mask.fail_link(topo, node, port);
            control.pending_down.insert(link_key(topo, node, port));
            ops.push(LocalOp::Flush(node, port));
            ops.push(LocalOp::Flush(back.peer, back.peer_port));
            request_reroute(control, reroute_delay_ns, now, reroute_at);
        }
        FaultAction::LinkUp { node, port } => {
            telemetry.record(now, FabricEvent::LinkUp { node: node.0, port });
            let back = *topo.port(node, port);
            control.mask.restore_link(topo, node, port);
            if control.pending_down.remove(&link_key(topo, node, port)) {
                // Down and up inside one convergence window: the
                // pair cancels out of the pending reroute's delta.
                control.stats.flaps_coalesced += 1;
            }
            request_reroute(control, reroute_delay_ns, now, reroute_at);
            ops.push(LocalOp::Kick(node, port));
            ops.push(LocalOp::Kick(back.peer, back.peer_port));
        }
        FaultAction::SwitchDown { switch } => {
            // Hosts are legal victims: a host going down models a
            // host/NIC failure — its access link goes dark and its
            // queued traffic is lost, exactly like a switch victim.
            telemetry.record(now, FabricEvent::NodeDown { node: switch.0 });
            control.mask.fail_node(switch);
            control.pending_down.insert(FaultKey::Node(switch.0));
            for p in 0..topo.node_ports(switch).len() as u16 {
                ops.push(LocalOp::Flush(switch, p));
            }
            request_reroute(control, reroute_delay_ns, now, reroute_at);
        }
        FaultAction::SwitchUp { switch } => {
            telemetry.record(now, FabricEvent::NodeUp { node: switch.0 });
            control.mask.restore_node(switch);
            if control.pending_down.remove(&FaultKey::Node(switch.0)) {
                control.stats.flaps_coalesced += 1;
            }
            request_reroute(control, reroute_delay_ns, now, reroute_at);
            // Neighbours may have queued towards the repaired node
            // while it routed around (and a repaired host's own NIC
            // may have parked traffic); restart any idle ports.
            for p in 0..topo.node_ports(switch).len() as u16 {
                let back = *topo.port(switch, p);
                ops.push(LocalOp::Kick(back.peer, back.peer_port));
                ops.push(LocalOp::Kick(switch, p));
            }
        }
        FaultAction::RateChange {
            node,
            port,
            rate_bps,
        } => {
            // Silent degradation: both directions change speed, no
            // reroute, no flush (rate 0 blackholes undetected).
            telemetry.record(
                now,
                FabricEvent::RateChange {
                    node: node.0,
                    port,
                    rate_bps,
                },
            );
            let back = *topo.port(node, port);
            for (n, p) in [(node, port), (back.peer, back.peer_port)] {
                if rate_bps == topo.port(n, p).rate_bps {
                    control.rate_overrides.remove(&(n.0, p));
                } else {
                    control.rate_overrides.insert((n.0, p), rate_bps);
                }
                if rate_bps > 0 {
                    ops.push(LocalOp::Kick(n, p));
                }
            }
        }
    }
}

/// The shared part of a deferred reroute: bring the routing tables up
/// to date with the live fault mask — incrementally where the mask only
/// grew (see [`Topology::repair_routes`]), from scratch otherwise —
/// and repair multicast trees (receivers a fault cut off are skipped
/// until a later repair restores them). Dead-link flushes and memo
/// clears come back as [`LocalOp`]s.
pub(crate) fn reroute_shared<T: TelemetrySink>(
    topo: &mut Topology,
    control: &mut Control,
    telemetry: &mut T,
    now: SimTime,
    ops: &mut Vec<LocalOp>,
) {
    control.pending_down.clear();
    // Layer re-assignments were a stale-window measure: the repaired
    // tables below reflect the live mask, and layers only reweight
    // links (never remove them), so every layer reaches everything
    // the fabric reaches again — flows return to their hashed
    // layer. Forgetting the memos also bounds their memory to
    // one convergence window's flows.
    ops.push(LocalOp::ClearMemos);
    let outcome = topo.repair_routes(&control.mask);
    telemetry.record(
        now,
        FabricEvent::Reroute {
            full: outcome.full,
            dests_rebuilt: outcome.dests_rebuilt as u32,
            restored: outcome.restored as u32,
        },
    );
    if outcome.full {
        // The incremental-repair contract says a mid-run reroute
        // never falls back to a full recomputation once routes
        // exist — flag it (and freeze a flight-recorder dump) so a
        // regression is debuggable from the trace alone.
        telemetry.record(now, FabricEvent::Anomaly(AnomalyKind::FullRecompute));
    }
    control.stats.reroutes += 1;
    if !outcome.full {
        control.stats.reroutes_incremental += 1;
        if outcome.restored > 0 {
            control.stats.restores_incremental += 1;
        }
    }
    control.stats.route_dests_rebuilt += outcome.dests_rebuilt as u64;
    // Stale routes during the convergence window may have enqueued
    // packets onto dead links, where the parked transmit loop would
    // strand them unaccounted forever; flush them as fault losses
    // (the new routes can no longer choose those ports).
    for (node, port) in control.mask.down_links() {
        ops.push(LocalOp::Flush(node, port));
    }
    // Multicast-tree repair is incremental too: after a failure-only
    // reroute, a tree whose hops are all still alive keeps
    // delivering on its recorded (alive) ports, so only trees
    // crossing a dead element are rebuilt. A full reroute may have
    // restored capacity, which can re-attach previously cut-off
    // receivers — every tree is rebuilt then.
    let gids: Vec<GroupId> = control.groups.keys().copied().collect();
    for gid in gids {
        if !outcome.full && !group_crosses_fault(topo, &control.mask, &control.groups[&gid]) {
            continue;
        }
        let g = &control.groups[&gid];
        let (sender, receivers) = (g.sender, g.receivers.clone());
        let table = build_tree(topo, gid, sender, &receivers);
        control.groups.get_mut(&gid).expect("group exists").table = table;
        control.stats.trees_repaired += 1;
    }
}

/// Whether any hop recorded in a multicast tree's forwarding table
/// is unusable under the live fault mask (dead node, dead link, or
/// dead far end).
fn group_crosses_fault(topo: &Topology, mask: &FaultMask, group: &Group) -> bool {
    group.table.iter().any(|(&node, ports)| {
        mask.node_is_down(node) || ports.iter().any(|&p| !mask.port_is_up(topo, node, p))
    })
}

/// Union of per-receiver paths with choices keyed deterministically
/// by (group, switch): one copy per shared link, branching as low as
/// possible. Receivers unreachable under the current routes (a fault
/// cut them off) are skipped — during repair the tree covers the
/// reachable membership.
fn build_tree(
    topo: &Topology,
    gid: GroupId,
    sender: NodeId,
    receivers: &[NodeId],
) -> HashMap<NodeId, Vec<u16>> {
    let mut table: HashMap<NodeId, Vec<u16>> = HashMap::new();
    for &r in receivers {
        if topo.try_next_ports(sender, r).is_empty() {
            continue;
        }
        let mut at = sender;
        while at != r {
            let choices = topo.next_ports(at, r);
            let pick = choices[(Pcg32::new((u64::from(gid.0) << 32) ^ u64::from(at.0))
                .below(choices.len() as u64)) as usize];
            let entry = table.entry(at).or_default();
            if !entry.contains(&pick) {
                entry.push(pick);
            }
            at = topo.port(at, pick).peer;
        }
    }
    table
}

/// Dispatch one node event against its cell. Mutates exactly that cell
/// (plus the lane scratch); reads only the shared [`Env`]. Every event
/// it emits is authored by this cell (its rank and counter), so the
/// emission is identical whether this runs on the serial loop or on a
/// shard worker.
pub(crate) fn dispatch_node<P: SimPayload, A: Agent<P>>(
    env: &Env<'_>,
    cell: &mut NodeCell<P, A>,
    lane: &mut Lane<P>,
    at: SimTime,
    rank: u32,
    seq: u64,
    kind: NodeEvent<P>,
) {
    match kind {
        NodeEvent::Arrive { from, port, pkt } => {
            debug_assert_eq!(env.topo.port(from, port).peer, cell.node);
            // The packet was on the wire; if the link died under it
            // or the far end is dead, it never really arrives.
            if env.control.mask.link_is_down(from, port) || env.control.mask.node_is_down(cell.node)
            {
                lane.stats.lost_to_fault += 1;
                return;
            }
            match env.topo.kind(cell.node) {
                NodeKind::Host => deliver_to_agent(env, cell, lane, at, *pkt),
                NodeKind::Switch => forward(env, cell, lane, at, rank, seq, *pkt),
            }
        }
        NodeEvent::Dequeue(node, port) => {
            debug_assert_eq!(node, cell.node);
            transmit_next(env, cell, lane, at, port);
        }
        NodeEvent::Timer(node, token) => {
            debug_assert_eq!(node, cell.node);
            let mut ctx = Ctx::new(at, node);
            let agent = cell
                .agent
                .as_mut()
                .expect("timer for a host without an agent");
            agent.on_timer(token, &mut ctx);
            apply_ctx(env, cell, lane, at, ctx);
        }
    }
}

fn deliver_to_agent<P: SimPayload, A: Agent<P>>(
    env: &Env<'_>,
    cell: &mut NodeCell<P, A>,
    lane: &mut Lane<P>,
    at: SimTime,
    pkt: Packet<Stamped<P>>,
) {
    // A host receives packets addressed to it or to a group whose
    // tree terminates here; anything else is a routing bug.
    if let Dest::Host(h) = pkt.dst {
        assert_eq!(h, cell.node, "unicast packet delivered to wrong host");
    }
    lane.stats.delivered += 1;
    let mut ctx = Ctx::new(at, cell.node);
    let agent = cell
        .agent
        .as_mut()
        .expect("packet delivered to a host without an agent");
    agent.on_packet(unwrap_packet(pkt), &mut ctx);
    apply_ctx(env, cell, lane, at, ctx);
}

fn apply_ctx<P: SimPayload, A: Agent<P>>(
    env: &Env<'_>,
    cell: &mut NodeCell<P, A>,
    lane: &mut Lane<P>,
    at: SimTime,
    ctx: Ctx<P>,
) {
    let node = ctx.node;
    debug_assert_eq!(node, cell.node);
    for (t, token) in ctx.timers {
        debug_assert!(t >= at, "scheduling into the past");
        let seq = cell.next_seq();
        lane.out.push(Ev {
            at: t,
            rank: node.0 + 1,
            seq,
            kind: NodeEvent::Timer(node, token),
        });
    }
    for pkt in ctx.sends {
        // Host NIC: hosts have exactly one port (index 0). The layer
        // stamp stays unset until the first switch assigns it.
        enqueue_and_kick(env, cell, lane, at, 0, wrap_packet(pkt));
    }
}

/// Whether `layer` has at least one advertised port at `node`
/// towards `dst` that is locally usable (link and far end up under
/// the live mask — switch-local knowledge, no control plane
/// required).
fn layer_live(env: &Env<'_>, layer: usize, node: NodeId, dst_index: usize) -> bool {
    env.topo
        .try_next_ports_at(layer, node, dst_index)
        .iter()
        .any(|&p| env.control.mask.port_is_up(env.topo, node, p))
}

/// Whether `layer` still offers a fully live path from `node` to the
/// destination: a walk over the layer's advertised next-hop DAG that
/// follows only ports usable under the live fault mask. This is the
/// source-side view a flow's first switch uses to steer the whole
/// flow off a layer whose trouble sits several hops downstream — a
/// pure function of (tables, mask), so the verdict is identical no
/// matter which shard computes it or when inside the stale window.
/// The result is memoized per (switch, flow, dst) and the memos are
/// cleared whenever the mask changes, so the walk runs once per flow
/// per fault era, not per packet.
fn layer_path_live(
    env: &Env<'_>,
    layer: usize,
    node: NodeId,
    dst: NodeId,
    dst_index: usize,
) -> bool {
    let mut stack = vec![node];
    let mut seen: Vec<NodeId> = Vec::new();
    while let Some(at) = stack.pop() {
        for &p in env.topo.try_next_ports_at(layer, at, dst_index) {
            if !env.control.mask.port_is_up(env.topo, at, p) {
                continue;
            }
            let peer = env.topo.port(at, p).peer;
            if peer == dst {
                return true;
            }
            if !seen.contains(&peer) {
                seen.push(peer);
                stack.push(peer);
            }
        }
    }
    false
}

fn forward<P: SimPayload, A: Agent<P>>(
    env: &Env<'_>,
    cell: &mut NodeCell<P, A>,
    lane: &mut Lane<P>,
    at: SimTime,
    rank: u32,
    seq: u64,
    mut pkt: Packet<Stamped<P>>,
) {
    let node = cell.node;
    match pkt.dst {
        Dest::Host(dst) => {
            // The layer machinery (stamp, memo lookup, re-assignment)
            // only exists under multi-layer policies; the single-layer
            // default skips it entirely — forwarding's hot path stays
            // exactly the pre-layering code.
            // One host-index resolution per packet; every route
            // lookup below is then a direct arena slice.
            let dst_index = env.topo.host_index(dst);
            let n_layers = env.topo.layer_count();
            let mut layer = 0;
            if n_layers > 1 {
                let LayerAssign::FlowHash = env.config.layer_assign;
                let stamp = pkt.payload.layer;
                if stamp == LAYER_UNSTAMPED {
                    // First switch: assign the flow's layer. Healthy
                    // mask — pure hash, no memo traffic. Under a
                    // fault era, steer the whole flow off a layer
                    // whose path to the destination is cut anywhere
                    // downstream (the source-side re-assignment the
                    // per-era memo makes cheap: one DAG walk per
                    // (flow, dst) per era, memoized until the mask
                    // next changes).
                    layer = if env.control.mask.is_empty() {
                        layer_choice(pkt.flow, n_layers)
                    } else if let Some(memoed) = cell.memo.get(pkt.flow.0, dst.0) {
                        memoed as usize
                    } else {
                        let hashed = layer_choice(pkt.flow, n_layers);
                        let mut pick = hashed;
                        if !layer_path_live(env, hashed, node, dst, dst_index) {
                            if let Some(alt) = (1..n_layers)
                                .map(|k| (hashed + k) % n_layers)
                                .find(|&l| layer_path_live(env, l, node, dst, dst_index))
                            {
                                pick = alt;
                                lane.stats.layer_reassignments += 1;
                                if env.tele_on {
                                    lane.notes.push((
                                        at,
                                        rank,
                                        seq,
                                        FabricEvent::LayerReassign {
                                            flow: pkt.flow.0,
                                            dst: dst.0,
                                            from: hashed as u8,
                                            to: alt as u8,
                                        },
                                    ));
                                }
                            }
                        }
                        cell.memo.insert(pkt.flow.0, dst.0, pick as u8);
                        pick
                    };
                } else {
                    // Interior hop: obey the stamp unless the stamped
                    // layer is dead at this hop (ECMP steered the
                    // packet into a cut branch, or the fault struck
                    // after the stamp) — then move to a locally live
                    // layer. At most one move per (switch, flow,
                    // destination) per fault era — a memoed move is
                    // never overwritten, or two half-dead layers
                    // could ping-pong a packet between neighbouring
                    // switches for the whole stale window.
                    let assigned = stamp as usize;
                    layer = assigned;
                    if !layer_live(env, assigned, node, dst_index) {
                        if let Some(memoed) = cell.memo.get(pkt.flow.0, dst.0) {
                            if memoed as usize != assigned {
                                layer = memoed as usize;
                            }
                        } else if let Some(alt) = (1..n_layers)
                            .map(|k| (assigned + k) % n_layers)
                            .find(|&l| layer_live(env, l, node, dst_index))
                        {
                            layer = alt;
                            lane.stats.layer_reassignments += 1;
                            cell.memo.insert(pkt.flow.0, dst.0, alt as u8);
                            if env.tele_on {
                                lane.notes.push((
                                    at,
                                    rank,
                                    seq,
                                    FabricEvent::LayerReassign {
                                        flow: pkt.flow.0,
                                        dst: dst.0,
                                        from: assigned as u8,
                                        to: alt as u8,
                                    },
                                ));
                            }
                        }
                    }
                }
                // Stamp (or re-stamp after a move): downstream hops
                // follow this packet's layer without re-hashing.
                pkt.payload.layer = layer as u8;
            }
            let choices = env.topo.try_next_ports_at(layer, node, dst_index);
            if choices.is_empty() {
                // The destination is unreachable under the current
                // fault mask; outside faults this is a config bug.
                assert!(
                    !env.control.mask.is_empty() || env.control.stats.reroutes > 0,
                    "no route from switch {} to host {} (routes computed?)",
                    node.0,
                    dst.0
                );
                lane.stats.lost_to_fault += 1;
                return;
            }
            lane.stats.layer_forwarded[layer] += 1;
            let port = match env.config.route {
                RouteMode::EcmpFlow => choices[ecmp_choice(pkt.flow, node, choices.len())],
                RouteMode::Spray => choices[cell.rng.below(choices.len() as u64) as usize],
            };
            match enqueue_and_kick(env, cell, lane, at, port, pkt) {
                Enqueued::Trimmed => lane.stats.layer_trimmed[layer] += 1,
                Enqueued::Dropped => lane.stats.layer_dropped[layer] += 1,
                Enqueued::Queued => {}
            }
        }
        Dest::Group(gid) => {
            let group = env
                .control
                .groups
                .get(&gid)
                .expect("unregistered multicast group");
            let Some(ports) = group.table.get(&node) else {
                // Tree does not branch here. After a repair, packets
                // already inside the old tree can be stranded at
                // switches the new tree no longer visits — those are
                // fault losses. Otherwise it is a forwarding bug.
                assert!(
                    env.control.stats.reroutes > 0,
                    "group packet at switch {} outside its tree",
                    node.0
                );
                lane.stats.lost_to_fault += 1;
                return;
            };
            let ports = ports.clone();
            for port in ports {
                enqueue_and_kick(env, cell, lane, at, port, pkt.clone());
            }
        }
    }
}

/// Enqueue on a port and restart its transmit loop if idle. Returns
/// the queue's verdict so callers that know the packet's routing
/// layer can attribute trims/drops per layer.
fn enqueue_and_kick<P: SimPayload, A: Agent<P>>(
    env: &Env<'_>,
    cell: &mut NodeCell<P, A>,
    lane: &mut Lane<P>,
    at: SimTime,
    port: u16,
    pkt: Packet<Stamped<P>>,
) -> Enqueued {
    let outcome = cell.queues[port as usize].enqueue(pkt);
    match outcome {
        Enqueued::Dropped => {
            lane.stats.dropped += 1;
            return outcome;
        }
        Enqueued::Trimmed => lane.stats.trimmed += 1,
        Enqueued::Queued => {}
    }
    if !cell.busy[port as usize] {
        transmit_next(env, cell, lane, at, port);
    }
    outcome
}

fn transmit_next<P: SimPayload, A: Agent<P>>(
    env: &Env<'_>,
    cell: &mut NodeCell<P, A>,
    lane: &mut Lane<P>,
    at: SimTime,
    port: u16,
) {
    let node = cell.node;
    let rate = env
        .control
        .rate_overrides
        .get(&(node.0, port))
        .copied()
        .unwrap_or_else(|| env.topo.port(node, port).rate_bps);
    let faulted = env.control.mask.node_is_down(node) || env.control.mask.link_is_down(node, port);
    if rate == 0 || faulted {
        // Link down (silent rate-0 blackhole or detected fault):
        // leave the port idle; queued packets wait for a possible
        // repair (and overflow per queue discipline).
        cell.busy[port as usize] = false;
        return;
    }
    let Some(pkt) = cell.queues[port as usize].dequeue() else {
        cell.busy[port as usize] = false;
        return;
    };
    cell.busy[port as usize] = true;
    let link = *env.topo.port(node, port);
    let ser = serialization_ns(pkt.size, rate);
    let seq = cell.next_seq();
    lane.out.push(Ev {
        at: at + ser + link.prop_ns,
        rank: node.0 + 1,
        seq,
        kind: NodeEvent::Arrive {
            from: node,
            port,
            pkt: Box::new(pkt),
        },
    });
    let seq = cell.next_seq();
    lane.out.push(Ev {
        at: at + ser,
        rank: node.0 + 1,
        seq,
        kind: NodeEvent::Dequeue(node, port),
    });
}

/// The equal-cost choice per-flow ECMP makes at `node`: a deterministic
/// hash of (flow, switch), so consecutive switches pick independently
/// but per-flow-stably. Exposed so experiment code can predict a flow's
/// pinned path (e.g. to aim a fault event at a switch the baseline
/// traffic actually crosses).
pub fn ecmp_choice(flow: crate::packet::FlowId, node: NodeId, n_choices: usize) -> usize {
    let h = crate::rng::Pcg32::new(flow.0 ^ (u64::from(node.0) << 40)).next_u32();
    h as usize % n_choices
}

/// The routing layer [`LayerAssign::FlowHash`] assigns a flow to: a
/// deterministic hash of the flow id alone, so every switch agrees on
/// the flow's layer without per-packet state — equivalent to the source
/// stamping the layer in the packet header, as FatPaths does. Exposed
/// so experiment code can predict a flow's layer.
pub fn layer_choice(flow: crate::packet::FlowId, n_layers: usize) -> usize {
    if n_layers <= 1 {
        return 0;
    }
    let h = crate::rng::Pcg32::new(flow.0 ^ 0x7A9E_12C4_55AA_01FE).next_u32();
    h as usize % n_layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Data(u32),
        Hdr(u32),
        Pull,
    }

    impl SimPayload for P {
        fn is_control(&self) -> bool {
            !matches!(self, P::Data(_))
        }
        fn trim(&self) -> Option<Self> {
            match self {
                P::Data(i) => Some(P::Hdr(*i)),
                other => Some(other.clone()),
            }
        }
    }

    /// Test agent: records receptions; sends a preloaded batch on timer 0.
    struct Echo {
        to_send: Vec<Packet<P>>,
        received: Vec<(SimTime, P)>,
    }

    impl Agent<P> for Echo {
        fn on_packet(&mut self, pkt: Packet<P>, ctx: &mut Ctx<P>) {
            self.received.push((ctx.now, pkt.payload));
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<P>) {
            for pkt in self.to_send.drain(..) {
                ctx.send(pkt);
            }
        }
    }

    fn data_pkt(src: NodeId, dst: NodeId, i: u32) -> Packet<P> {
        Packet {
            src,
            dst: Dest::Host(dst),
            flow: FlowId(7),
            size: 1500,
            payload: P::Data(i),
        }
    }

    fn two_host_sim(config: SimConfig) -> (Simulator<P, Echo>, NodeId, NodeId) {
        // host A — switch — host B
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        let mut sim = Simulator::new(t, config);
        sim.set_agent(
            a,
            Echo {
                to_send: vec![],
                received: vec![],
            },
        );
        sim.set_agent(
            b,
            Echo {
                to_send: vec![],
                received: vec![],
            },
        );
        (sim, a, b)
    }

    /// Two senders, one receiver: the switch's receiver port is a 2:1
    /// bottleneck, so simultaneous bursts congest it.
    fn incast_sim(config: SimConfig) -> (Simulator<P, Echo>, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let c = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Host);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.connect(c, s, 1_000_000_000, 10_000);
        t.connect(b, s, 1_000_000_000, 10_000);
        t.compute_routes();
        let mut sim = Simulator::new(t, config);
        for h in [a, b, c] {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        (sim, a, c, b)
    }

    #[test]
    fn single_packet_latency_exact() {
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(1));
        sim.agent_mut(a).to_send.push(data_pkt(a, b, 0));
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert_eq!(rec.len(), 1);
        // Two store-and-forward hops: 2 × (12µs ser + 10µs prop).
        assert_eq!(rec[0].0, SimTime::from_nanos(2 * (12_000 + 10_000)));
    }

    #[test]
    fn fifo_pipelining() {
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(1));
        for i in 0..3 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert_eq!(rec.len(), 3);
        // In order, spaced by one serialization delay.
        assert_eq!(rec[0].1, P::Data(0));
        assert_eq!(rec[1].0 - rec[0].0, 12_000);
        assert_eq!(rec[2].0 - rec[1].0, 12_000);
    }

    #[test]
    fn trimming_under_burst() {
        // Two hosts blast 20 packets each into a shared receiver port
        // (2:1 overload): the 8-packet NDP data queue must overflow and
        // the overflow must be trimmed, never dropped.
        let (mut sim, a, c, b) = incast_sim(SimConfig::ndp(1));
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            sim.agent_mut(c).to_send.push(data_pkt(c, b, 100 + i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.schedule_timer(c, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert_eq!(rec.len(), 40, "every packet arrives, full or trimmed");
        let full = rec.iter().filter(|(_, p)| matches!(p, P::Data(_))).count();
        let trimmed = rec.iter().filter(|(_, p)| matches!(p, P::Hdr(_))).count();
        assert_eq!(full + trimmed, 40);
        assert!(
            trimmed > 0,
            "2:1 overload must overflow the 8-packet data queue"
        );
        assert_eq!(sim.stats().trimmed as usize, trimmed);
        assert_eq!(sim.stats().dropped, 0);
        assert_eq!(sim.switch_queue_totals().trimmed as usize, trimmed);
    }

    #[test]
    fn droptail_drops_under_burst() {
        let mut cfg = SimConfig::classic(1);
        cfg.switch_queue = QueueConfig::DropTail { cap_pkts: 4 };
        let (mut sim, a, c, b) = incast_sim(cfg);
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            sim.agent_mut(c).to_send.push(data_pkt(c, b, 100 + i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        sim.schedule_timer(c, SimTime::ZERO, 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        assert!(rec.len() < 40, "drop-tail must lose packets");
        assert!(sim.stats().dropped > 0);
    }

    #[test]
    fn control_overtakes_data() {
        // Host C backlogs the receiver port with data; a pull from host A
        // sent later must overtake queued data thanks to the priority
        // header queue.
        let (mut sim, a, c, b) = incast_sim(SimConfig::ndp(1));
        for i in 0..10 {
            sim.agent_mut(c).to_send.push(data_pkt(c, b, i));
        }
        sim.agent_mut(a).to_send.push(Packet {
            src: a,
            dst: Dest::Host(b),
            flow: FlowId(9),
            size: 64,
            payload: P::Pull,
        });
        sim.schedule_timer(c, SimTime::ZERO, 0);
        // Give C a head start so the switch queue is backlogged when the
        // pull arrives.
        sim.schedule_timer(a, SimTime::from_micros(40), 0);
        sim.run_to_completion();
        let rec = &sim.agent(b).received;
        let pull_pos = rec.iter().position(|(_, p)| *p == P::Pull).unwrap();
        assert!(
            pull_pos < rec.len() - 1,
            "pull should overtake queued data at the switch"
        );
    }

    #[test]
    fn multicast_delivers_to_all() {
        // One sender, three receivers on a k=4 fat-tree.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(3));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let (s, r1, r2, r3) = (hosts[0], hosts[3], hosts[7], hosts[12]);
        let gid = sim.register_group(s, &[r1, r2, r3]);
        sim.agent_mut(s).to_send.push(Packet {
            src: s,
            dst: Dest::Group(gid),
            flow: FlowId(1),
            size: 1500,
            payload: P::Data(0),
        });
        sim.schedule_timer(s, SimTime::ZERO, 0);
        sim.run_to_completion();
        for &r in &[r1, r2, r3] {
            assert_eq!(sim.agent(r).received.len(), 1, "receiver {} missed", r.0);
        }
        // Non-members received nothing.
        assert_eq!(sim.agent(hosts[1]).received.len(), 0);
    }

    #[test]
    fn multicast_tree_shares_sender_uplink() {
        // The whole point of multicast in Fig 1a: one copy leaves the
        // sender regardless of replica count.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(3));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let s = hosts[0];
        let receivers = [hosts[5], hosts[9], hosts[13]];
        let gid = sim.register_group(s, &receivers);
        for i in 0..50 {
            sim.agent_mut(s).to_send.push(Packet {
                src: s,
                dst: Dest::Group(gid),
                flow: FlowId(1),
                size: 1500,
                payload: P::Data(i),
            });
        }
        sim.schedule_timer(s, SimTime::ZERO, 0);
        sim.run_to_completion();
        // Sender's NIC transmitted each packet exactly once.
        let nic = sim.queue_stats(s, 0);
        assert_eq!(nic.tx_bytes, 50 * 1500);
        for &r in &receivers {
            assert_eq!(sim.agent(r).received.len(), 50);
        }
    }

    #[test]
    fn spray_uses_multiple_paths() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]); // inter-pod: 2 uplinks
        let edge = t.edge_switch(src);
        let up_ports: Vec<u16> = t.next_ports(edge, dst).to_vec();
        assert_eq!(up_ports.len(), 2);
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(5));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..100 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        sim.run_to_completion();
        let tx0 = sim.queue_stats(edge, up_ports[0]).tx_bytes;
        let tx1 = sim.queue_stats(edge, up_ports[1]).tx_bytes;
        assert!(
            tx0 > 0 && tx1 > 0,
            "spraying must use both uplinks ({tx0}, {tx1})"
        );
    }

    #[test]
    fn ecmp_pins_one_path() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let up_ports: Vec<u16> = t.next_ports(edge, dst).to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::classic(5));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..100 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        sim.run_to_completion();
        let tx0 = sim.queue_stats(edge, up_ports[0]).tx_bytes;
        let tx1 = sim.queue_stats(edge, up_ports[1]).tx_bytes;
        assert!(
            (tx0 == 0) != (tx1 == 0),
            "per-flow ECMP must pin exactly one uplink ({tx0}, {tx1})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| -> Vec<(SimTime, P)> {
            let (mut sim, a, b) = two_host_sim(SimConfig::ndp(seed));
            for i in 0..30 {
                sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            }
            sim.schedule_timer(a, SimTime::ZERO, 0);
            sim.run_to_completion();
            let slot = sim.cell_of[b.0 as usize] as usize;
            sim.cells[slot].agent.take().unwrap().received
        };
        assert_eq!(run(42), run(42), "same seed ⇒ identical trace");
    }

    /// A k=4 fat-tree with Echo agents everywhere, plus the (src, dst)
    /// inter-pod pair and one aggregation switch in src's pod — the
    /// natural victim: spraying uses both aggs, so killing one catches
    /// in-flight packets while the survivor keeps the pair connected.
    fn fat_tree_sim(seed: u64) -> (Simulator<P, Echo>, NodeId, NodeId, NodeId) {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let agg = t
            .node_ports(edge)
            .iter()
            .map(|p| p.peer)
            .find(|&n| t.kind(n) == NodeKind::Switch)
            .expect("edge switch has aggregation uplinks");
        let mut sim = Simulator::new(t, SimConfig::ndp(seed));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        (sim, src, dst, agg)
    }

    #[test]
    fn switch_failure_reroutes_and_drops_in_flight() {
        let (mut sim, src, dst, agg) = fat_tree_sim(0);
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        // The NIC drains one packet per 12 us, so the stream spans
        // ~480 us; kill the agg mid-stream and restore near the end.
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_micros(100), agg)
            .switch_up(SimTime::from_micros(400), agg);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.reroutes, 2, "down + up each recompute routes");
        assert!(
            stats.lost_to_fault > 0,
            "mid-stream agg death must catch packets in flight or queued"
        );
        let got = sim.agent(dst).received.len();
        assert_eq!(
            got as u64 + stats.lost_to_fault,
            40,
            "every packet either arrives or is accounted as a fault loss"
        );
        assert!(
            got >= 30,
            "the surviving agg must carry the stream (got {got})"
        );
        assert_eq!(stats.dropped, 0, "no congestion drops at this load");
    }

    #[test]
    fn link_failure_loses_queued_packets_and_recovers() {
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(4));
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        // The a—switch link dies with most of the burst still queued in
        // a's NIC, then comes back; the flushed packets are gone for
        // good but traffic sent after the repair flows again.
        let plan = FaultPlan::new()
            .link_down(SimTime::from_micros(30), a, 0)
            .link_up(SimTime::from_micros(200), a, 0);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert!(stats.lost_to_fault >= 15, "queued burst flushed");
        // After repair the link works: send another packet.
        sim.agent_mut(a).to_send.push(data_pkt(a, b, 99));
        sim.schedule_timer(a, SimTime::from_micros(500), 0);
        sim.run_to_completion();
        assert!(sim.agent(b).received.iter().any(|(_, p)| *p == P::Data(99)));
    }

    #[test]
    fn convergence_window_strands_nothing() {
        // With a non-zero convergence delay, the stale routes keep
        // spraying onto the dead link until the deferred reroute fires;
        // those packets must be flushed and accounted as fault losses,
        // never silently stranded in a parked queue.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let up = t
            .node_ports(edge)
            .iter()
            .position(|p| t.kind(p.peer) == NodeKind::Switch)
            .expect("edge has uplinks") as u16;
        let mut cfg = SimConfig::ndp(13);
        cfg.reroute_delay_ns = 200_000; // 200 us of stale routing
        let mut sim = Simulator::new(t, cfg);
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        let plan = FaultPlan::new().link_down(SimTime::from_micros(100), edge, up);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        let got = sim.agent(dst).received.len();
        assert!(stats.lost_to_fault > 0, "the dead uplink must cost packets");
        assert_eq!(
            got as u64 + stats.lost_to_fault,
            40,
            "every packet arrives or is accounted as a fault loss"
        );
        assert!(got >= 20, "the surviving uplink carries the rest");
    }

    #[test]
    fn multicast_tree_repair_after_core_failure() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let cores = t.core_switches();
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(8));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let s = hosts[0];
        let receivers = [hosts[5], hosts[9], hosts[13]];
        let gid = sim.register_group(s, &receivers);
        // Kill a core the tree actually crosses (the tests module can
        // see the private table; min-id keeps the HashMap's arbitrary
        // key order out of the test); the repair must re-tree around it.
        let victim = *sim.control.groups[&gid]
            .table
            .keys()
            .filter(|n| cores.contains(n))
            .min()
            .expect("inter-pod multicast tree crosses a core");
        let plan = FaultPlan::new().switch_down(SimTime::from_micros(100), victim);
        sim.schedule_faults(&plan);
        // Stream packets across the failure instant.
        for i in 0..100 {
            sim.agent_mut(s).to_send.push(Packet {
                src: s,
                dst: Dest::Group(gid),
                flow: FlowId(1),
                size: 1500,
                payload: P::Data(i),
            });
        }
        sim.schedule_timer(s, SimTime::ZERO, 0);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.trees_repaired, 1, "the one group was rebuilt");
        for &r in &receivers {
            // Packets caught inside the old tree at repair time can miss
            // a receiver without a per-receiver loss record (the new
            // tree re-covers them only partially), so the bound is
            // deliberately loose: the repair must restore delivery.
            let got = sim.agent(r).received.len();
            assert!(got >= 90, "repair must restore delivery (got {got})");
            assert!(got <= 100, "no duplicate deliveries (got {got})");
        }
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let (mut sim, src, dst, agg) = fat_tree_sim(11);
            for i in 0..60 {
                sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
            }
            sim.schedule_timer(src, SimTime::ZERO, 0);
            let plan = FaultPlan::new()
                .switch_down(SimTime::from_micros(80), agg)
                .switch_up(SimTime::from_micros(500), agg);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            let stats = sim.stats();
            let slot = sim.cell_of[dst.0 as usize] as usize;
            let trace = sim.cells[slot].agent.take().unwrap().received;
            (stats, trace)
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2, "same seed + plan ⇒ identical stats");
        assert_eq!(t1, t2, "same seed + plan ⇒ identical delivery trace");
    }

    #[test]
    fn switch_down_on_host_kills_and_revives_the_host() {
        // Host victims are a behaviour, not a panic: the host's access
        // link goes dark (arrivals lost, queued traffic flushed) and a
        // later SwitchUp brings it back.
        let (mut sim, a, b) = two_host_sim(SimConfig::ndp(1));
        for i in 0..20 {
            sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        // Kill the *receiver* host mid-burst, revive near the end.
        let plan = FaultPlan::new()
            .host_down(SimTime::from_micros(100), b)
            .host_up(SimTime::from_micros(400), b);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.reroutes, 2, "down + up each reroute");
        assert!(
            stats.lost_to_fault > 0,
            "mid-burst host death must cost packets"
        );
        let got = sim.agent(b).received.len();
        assert!(got < 20, "the dead window's packets are gone");
        // After the repair the host receives again.
        sim.agent_mut(a).to_send.push(data_pkt(a, b, 99));
        sim.schedule_timer(a, SimTime::from_micros(500), 0);
        sim.run_to_completion();
        assert!(sim.agent(b).received.iter().any(|(_, p)| *p == P::Data(99)));
    }

    #[test]
    fn switch_and_host_victims_account_identically() {
        // The same FaultAction handles both victim kinds: killing the
        // sender host parks its NIC (packets flushed once, then queued
        // unsent), killing the switch flushes the fabric — both surface
        // as lost_to_fault, never as silent strands.
        let run = |kill_host: bool| {
            let (mut sim, a, b) = two_host_sim(SimConfig::ndp(2));
            for i in 0..10 {
                sim.agent_mut(a).to_send.push(data_pkt(a, b, i));
            }
            sim.schedule_timer(a, SimTime::ZERO, 0);
            let victim = if kill_host { a } else { NodeId(1) };
            let plan = FaultPlan::new().switch_down(SimTime::from_micros(30), victim);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            (sim.stats(), sim.agent(b).received.len())
        };
        let (host_stats, host_got) = run(true);
        let (switch_stats, switch_got) = run(false);
        assert!(host_stats.lost_to_fault > 0 && switch_stats.lost_to_fault > 0);
        assert!(host_got < 10, "host death cut the stream");
        assert!(switch_got < 10, "switch death cut the stream");
        assert_eq!(host_stats.reroutes, 1);
        assert_eq!(switch_stats.reroutes, 1);
    }

    #[test]
    fn flap_inside_convergence_window_coalesces_to_noop() {
        // A link that goes down and comes back before the deferred
        // reroute fires must cost zero full recomputes: the pair cancels
        // out of the pending delta and the reroute is a no-op repair.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let up = t
            .node_ports(edge)
            .iter()
            .position(|p| t.kind(p.peer) == NodeKind::Switch)
            .expect("edge has uplinks") as u16;
        let mut cfg = SimConfig::ndp(21);
        cfg.reroute_delay_ns = 200_000;
        let mut sim = Simulator::new(t, cfg);
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        // Down at 100 µs, up at 150 µs — inside the 200 µs window.
        let plan = FaultPlan::new()
            .link_down(SimTime::from_micros(100), edge, up)
            .link_up(SimTime::from_micros(150), edge, up);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.flaps_coalesced, 1, "the pair coalesced");
        assert_eq!(stats.reroutes, 1, "one deferred reroute fired");
        assert_eq!(
            stats.reroutes_incremental, 1,
            "the no-op delta must never fall back to a full recompute"
        );
        assert_eq!(stats.route_dests_rebuilt, 0, "nothing to rebuild");
        let got = sim.agent(dst).received.len();
        assert_eq!(
            got as u64 + stats.lost_to_fault,
            40,
            "flap losses stay accounted"
        );
        assert!(got > 0, "traffic resumes over the restored link");
    }

    #[test]
    fn restoration_after_convergence_repairs_incrementally() {
        // Down and up in *separate* convergence windows: the up-reroute
        // carries a restoration delta, which must be healed by restore
        // surgery, not a full recompute.
        let (mut sim, src, dst, agg) = fat_tree_sim(23);
        for i in 0..60 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_micros(80), agg)
            .switch_up(SimTime::from_micros(500), agg);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert_eq!(stats.reroutes, 2);
        assert_eq!(stats.flaps_coalesced, 0, "windows were separate");
        assert_eq!(
            stats.restores_incremental, 1,
            "the restoration reroute must use restore surgery"
        );
        assert_eq!(stats.reroutes_incremental, 2, "both reroutes incremental");
    }

    #[test]
    fn layered_policy_spreads_flows_and_counts_per_layer() {
        // Many distinct flows on a 4-layer fat-tree: the flow hash must
        // land traffic on several layers, and the per-layer utilisation
        // counters must account every switch-forwarded unicast packet.
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        t.set_policy(crate::topology::RoutingPolicy::layered(4, 5));
        t.compute_routes();
        let hosts = t.hosts().to_vec();
        let mut sim: Simulator<P, Echo> = Simulator::new(t, SimConfig::ndp(5));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let (src, dst) = (hosts[0], hosts[15]);
        for i in 0..64 {
            let mut pkt = data_pkt(src, dst, i);
            pkt.flow = FlowId(u64::from(i)); // one flow per packet
            sim.agent_mut(src).to_send.push(pkt);
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        sim.run_to_completion();
        assert_eq!(sim.agent(dst).received.len(), 64);
        let stats = sim.stats();
        assert_eq!(stats.layer_reassignments, 0, "healthy fabric: no moves");
        let used = stats.layer_forwarded.iter().filter(|&&c| c > 0).count();
        assert!(used >= 2, "64 flows must spread over >= 2 of 4 layers");
        assert_eq!(
            stats.layer_forwarded[4..].iter().sum::<u64>(),
            0,
            "slots past the layer count stay empty"
        );
    }

    #[test]
    fn dead_layer_reassigns_flows_mid_window() {
        // Diamond fabric a—sA—{s1|s2}—sB—b under a 2-layer policy. Find
        // a policy seed whose layer 1 advertises the s1 branch as sA's
        // only port towards b, and a flow hashed onto layer 1; killing
        // the sA—s1 link mid-stream with a long convergence window must
        // then re-assign the flow onto the live layer at sA instead of
        // blackholing it until the deferred reroute.
        let build = |seed: u64| -> (Topology, NodeId, NodeId, NodeId) {
            let mut t = Topology::new();
            let a = t.add_node(NodeKind::Host);
            let sa = t.add_node(NodeKind::Switch);
            let s1 = t.add_node(NodeKind::Switch);
            let s2 = t.add_node(NodeKind::Switch);
            let sb = t.add_node(NodeKind::Switch);
            let b = t.add_node(NodeKind::Host);
            t.connect(a, sa, 1_000_000_000, 10_000);
            t.connect(sa, s1, 1_000_000_000, 10_000); // sa port 1
            t.connect(sa, s2, 1_000_000_000, 10_000); // sa port 2
            t.connect(s1, sb, 1_000_000_000, 10_000);
            t.connect(s2, sb, 1_000_000_000, 10_000);
            t.connect(sb, b, 1_000_000_000, 10_000);
            t.set_policy(crate::topology::RoutingPolicy::layered(2, seed));
            t.compute_routes();
            (t, a, sa, b)
        };
        let seed = (0..64)
            .find(|&s| {
                let (t, _, sa, b) = build(s);
                t.try_next_ports_on(1, sa, b) == [1u16]
            })
            .expect("some seed prefers the s1 branch on layer 1");
        let (t, a, sa, b) = build(seed);
        let flow = (0..64)
            .map(FlowId)
            .find(|&f| layer_choice(f, 2) == 1)
            .expect("some flow hashes onto layer 1");
        let mut cfg = SimConfig::ndp(3);
        cfg.reroute_delay_ns = 500_000; // long stale-routing window
        let mut sim = Simulator::new(t, cfg);
        for h in [a, b] {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..30 {
            let mut pkt = data_pkt(a, b, i);
            pkt.flow = flow;
            sim.agent_mut(a).to_send.push(pkt);
        }
        sim.schedule_timer(a, SimTime::ZERO, 0);
        // The NIC drains one packet per 12 µs; kill the s1 branch at
        // 100 µs with most of the stream still to come.
        let plan = FaultPlan::new().link_down(SimTime::from_micros(100), sa, 1);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        let stats = sim.stats();
        assert!(
            stats.layer_reassignments >= 1,
            "the dead layer must shed its flow"
        );
        // Without re-assignment the flow would blackhole at sA for the
        // whole 500 µs window (its layer advertises only the dead
        // port); with it, packets keep arriving mid-window over the
        // live layer. (The live layer still sprays across its own
        // port set — stale-window losses on the dead port remain, as
        // for any flow, so not every packet survives.)
        let rec = &sim.agent(b).received;
        let post_fault = rec
            .iter()
            .filter(|(at, _)| *at > SimTime::from_micros(100))
            .count();
        assert!(
            post_fault >= 5,
            "re-assigned flow must keep delivering mid-window (got {post_fault})"
        );
        assert_eq!(
            rec.len() as u64 + stats.lost_to_fault,
            30,
            "every packet arrives or is accounted as a fault loss"
        );
    }

    #[test]
    fn poisson_fault_process_is_deterministic_and_mixed() {
        use crate::fault::{FaultMix, FaultProcess};
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let proc = FaultProcess::poisson(1000.0, FaultMix::uniform(), Some(2_000_000)).seed(7);
        let a = proc.compile(&t, SimTime::from_micros(100), 24);
        let b = proc.compile(&t, SimTime::from_micros(100), 24);
        assert_eq!(a, b, "same seed ⇒ identical plan");
        let c = proc.seed(8).compile(&t, SimTime::from_micros(100), 24);
        assert_ne!(a, c, "different seed ⇒ different plan");
        // Every down has a scripted repair, times are non-decreasing
        // per element class, and the mix covers hosts.
        let downs = a
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    FaultAction::LinkDown { .. } | FaultAction::SwitchDown { .. }
                )
            })
            .count();
        let ups = a.events().len() - downs;
        assert_eq!(downs, 24, "one down per drawn event");
        assert_eq!(ups, downs, "every failure is repaired");
        let host_failures = a.host_failures(&t);
        assert!(
            !host_failures.is_empty(),
            "uniform mix over 24 events should draw a host"
        );
        assert!(host_failures.iter().all(|f| f.repaired_at.is_some()));
    }

    use crate::telemetry::{AnomalyKind, FabricEvent, Recorder, TelemetryConfig};

    /// The fat-tree fault scenario of `switch_failure_reroutes_and_
    /// drops_in_flight`, with a recorder installed: annotations carry
    /// the fault and reroute story, buckets tile the run exactly, and
    /// their deltas sum to the end-of-run aggregates.
    #[test]
    fn recorder_annotates_faults_and_buckets_sum_to_totals() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        let edge = t.edge_switch(src);
        let agg = t
            .node_ports(edge)
            .iter()
            .map(|p| p.peer)
            .find(|&n| t.kind(n) == NodeKind::Switch)
            .expect("edge switch has aggregation uplinks");
        let rec = Recorder::new(TelemetryConfig {
            window_ns: 50_000, // 50 µs windows over a ~500 µs run
            ring_capacity: 8,
        });
        let mut sim: Simulator<P, Echo, Option<Recorder>> =
            Simulator::with_telemetry(t, SimConfig::ndp(9), Some(rec));
        for &h in &hosts {
            sim.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        for i in 0..40 {
            sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
        }
        sim.schedule_timer(src, SimTime::ZERO, 0);
        let plan = FaultPlan::new()
            .switch_down(SimTime::from_micros(100), agg)
            .switch_up(SimTime::from_micros(400), agg);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        sim.finish_telemetry();
        let stats = sim.stats();
        let rec = sim.telemetry_mut().take().expect("recorder installed");

        let ann = rec.annotations();
        assert!(ann
            .iter()
            .any(|a| a.event == FabricEvent::NodeDown { node: agg.0 }
                && a.at == SimTime::from_micros(100)));
        assert!(ann
            .iter()
            .any(|a| a.event == FabricEvent::NodeUp { node: agg.0 }));
        assert_eq!(
            ann.iter()
                .filter(|a| matches!(a.event, FabricEvent::Reroute { .. }))
                .count(),
            2,
            "down + up each recompute routes"
        );
        // No anomalies in a healthy incremental-repair run, hence no
        // flight-recorder dumps.
        assert!(rec.dumps().is_empty());

        let b = rec.buckets();
        assert!(!b.is_empty());
        for w in b.windows(2) {
            assert_eq!(w[0].end, w[1].start, "buckets tile the run");
        }
        assert_eq!(b[0].start, SimTime::ZERO);
        let delivered: u64 = b.iter().map(|x| x.delivered).sum();
        let lost: u64 = b.iter().map(|x| x.lost_to_fault).sum();
        assert_eq!(delivered, stats.delivered, "bucket deltas sum to totals");
        assert_eq!(lost, stats.lost_to_fault);
        // Switch ports carried the stream: buckets hold sparse per-port
        // samples with transmit activity.
        assert!(b
            .iter()
            .any(|x| x.ports.iter().any(|p| p.tx_bytes > 0 && p.enqueued > 0)));
    }

    /// Enabling the recorder must not perturb the run: same seed, same
    /// received payload sequence, same FabricStats — telemetry reads
    /// the simulation, never shapes it.
    #[test]
    fn recorder_on_is_byte_identical_to_off() {
        fn drive<T: crate::telemetry::TelemetrySink + Send + Sync>(
            mut sim: Simulator<P, Echo, T>,
        ) -> (Vec<(SimTime, P)>, FabricStats) {
            let hosts = sim.topology().hosts().to_vec();
            let (src, dst) = (hosts[0], hosts[15]);
            let agg = {
                let t = sim.topology();
                let edge = t.edge_switch(src);
                t.node_ports(edge)
                    .iter()
                    .map(|p| p.peer)
                    .find(|&n| t.kind(n) == NodeKind::Switch)
                    .expect("edge switch has aggregation uplinks")
            };
            for i in 0..40 {
                sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
            }
            sim.schedule_timer(src, SimTime::ZERO, 0);
            let plan = FaultPlan::new()
                .switch_down(SimTime::from_micros(100), agg)
                .switch_up(SimTime::from_micros(400), agg);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            let received = sim.agent(dst).received.clone();
            (received, sim.stats())
        }
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let mut off: Simulator<P, Echo, Option<Recorder>> =
            Simulator::with_telemetry(t.clone(), SimConfig::ndp(9), None);
        let mut on: Simulator<P, Echo, Option<Recorder>> = Simulator::with_telemetry(
            t.clone(),
            SimConfig::ndp(9),
            Some(Recorder::new(TelemetryConfig::default())),
        );
        let mut baseline: Simulator<P, Echo> = Simulator::new(t.clone(), SimConfig::ndp(9));
        for sim_hosts in [&mut off, &mut on] {
            for &h in t.hosts() {
                sim_hosts.set_agent(
                    h,
                    Echo {
                        to_send: vec![],
                        received: vec![],
                    },
                );
            }
        }
        for &h in t.hosts() {
            baseline.set_agent(
                h,
                Echo {
                    to_send: vec![],
                    received: vec![],
                },
            );
        }
        let a = drive(off);
        let b = drive(on);
        let c = drive(baseline);
        assert_eq!(a, b, "recorder on vs off: identical trace and stats");
        assert_eq!(a, c, "Option sink vs compiled-out sink: identical");
    }

    #[test]
    fn note_anomaly_freezes_dump_with_recent_history() {
        let rec = Recorder::new(TelemetryConfig {
            window_ns: 1_000_000,
            ring_capacity: 4,
        });
        let t = {
            let mut t = Topology::new();
            let a = t.add_node(NodeKind::Host);
            let s = t.add_node(NodeKind::Switch);
            let b = t.add_node(NodeKind::Host);
            t.connect(a, s, 1_000_000_000, 10_000);
            t.connect(b, s, 1_000_000_000, 10_000);
            t.compute_routes();
            t
        };
        let mut sim: Simulator<P, Echo, Option<Recorder>> =
            Simulator::with_telemetry(t, SimConfig::ndp(1), Some(rec));
        let plan = FaultPlan::new()
            .link_down(SimTime::from_micros(10), NodeId(0), 0)
            .link_up(SimTime::from_micros(20), NodeId(0), 0);
        sim.schedule_faults(&plan);
        sim.run_to_completion();
        sim.note_anomaly(AnomalyKind::Timeout);
        let rec = sim.telemetry_mut().take().unwrap();
        assert_eq!(rec.dumps().len(), 1);
        let dump = &rec.dumps()[0];
        // The ring held the fault/reroute history leading up to the
        // anomaly (cap 4: the newest 4 of link-down, reroute, link-up,
        // reroute, anomaly).
        assert_eq!(dump.events.len(), 4);
        assert!(matches!(
            dump.events.last().unwrap().event,
            FabricEvent::Anomaly(AnomalyKind::Timeout)
        ));
    }

    /// The `(time, rank, seq)` key is a total order independent of push
    /// order: any insertion order pops the same sequence, global
    /// (rank 0) events win ties against node events at the same
    /// instant, and a node's own counter breaks its internal ties.
    #[test]
    fn event_key_is_total_and_push_order_independent() {
        let mk = |at: u64, rank: u32, seq: u64| Ev {
            at: SimTime::from_nanos(at),
            rank,
            seq,
            kind: (),
        };
        // Deliberate ties in time (100) and in (time, rank) (rank 3).
        let keys = [
            (100u64, 0u32, 0u64), // global beats every node event at t=100
            (100, 1, 5),
            (100, 3, 1),
            (100, 3, 2), // same node: counter order
            (100, 7, 0),
            (200, 0, 1),
            (200, 2, 9),
        ];
        let pop_all = |order: &[usize]| -> Vec<(SimTime, u32, u64)> {
            let mut heap = std::collections::BinaryHeap::new();
            for &i in order {
                let (at, rank, seq) = keys[i];
                heap.push(std::cmp::Reverse(mk(at, rank, seq)));
            }
            let mut out = Vec::new();
            while let Some(std::cmp::Reverse(ev)) = heap.pop() {
                out.push(ev.key());
            }
            out
        };
        let forward = pop_all(&[0, 1, 2, 3, 4, 5, 6]);
        let shuffled = pop_all(&[6, 3, 0, 5, 2, 4, 1]);
        assert_eq!(forward, shuffled, "push order must not matter");
        let mut sorted: Vec<_> = keys
            .iter()
            .map(|&(at, r, s)| (SimTime::from_nanos(at), r, s))
            .collect();
        sorted.sort();
        assert_eq!(forward, sorted, "pop order is exactly key order");
        // Global rank sorts first at its instant.
        assert_eq!(forward[0], (SimTime::from_nanos(100), GLOBAL_RANK, 0));
    }

    /// `Arrive` boxes its packet, so a heap entry is the 20-byte key
    /// plus a small kind — every sift moves a fixed few words no
    /// matter how fat the payload type is. Pin the bound so a future
    /// inline variant can't silently quadruple heap traffic.
    #[test]
    fn heap_event_stays_small_with_boxed_payload() {
        assert!(
            std::mem::size_of::<Ev<NodeEvent<P>>>() <= 48,
            "heap event grew to {} bytes — keep large payload variants boxed",
            std::mem::size_of::<Ev<NodeEvent<P>>>()
        );
        // And the bound is payload-independent: a deliberately fat
        // payload must not widen the event.
        #[derive(Debug, Clone)]
        struct Fat(#[allow(dead_code)] [u64; 32]);
        impl SimPayload for Fat {
            fn is_control(&self) -> bool {
                false
            }
            fn trim(&self) -> Option<Self> {
                None
            }
        }
        assert_eq!(
            std::mem::size_of::<Ev<NodeEvent<Fat>>>(),
            std::mem::size_of::<Ev<NodeEvent<P>>>(),
            "payload size must not leak into the heap entry"
        );
    }

    /// `shards: 1` (and a shard request collapsing to one shard) keeps
    /// the plain serial loop: no plan is built, and the run is the
    /// byte-identical baseline every sharded count is compared against.
    #[test]
    fn shard_count_one_is_the_serial_loop() {
        let mut cfg = SimConfig::ndp(7);
        cfg.shards = 1;
        let (sim, _, _) = two_host_sim(cfg);
        assert!(sim.plan.is_none(), "one shard = serial loop");
        // A multi-shard request on a fabric too small to split also
        // collapses to serial rather than spinning idle workers.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        let s = t.add_node(NodeKind::Switch);
        t.connect(a, s, 1_000_000_000, 10_000);
        t.compute_routes();
        let mut cfg = SimConfig::ndp(7);
        cfg.shards = 4;
        let sim: Simulator<P, Echo> = Simulator::new(t, cfg);
        assert!(sim.plan.is_none(), "one switch cannot shard");
    }

    /// The sharded loop reproduces the serial run byte for byte at any
    /// shard count, through a mid-stream switch failure and repair —
    /// same delivery trace (payloads and timestamps), same stats up to
    /// the shard-machinery counters.
    #[test]
    fn sharded_run_matches_serial_through_faults() {
        let run = |shards: usize| {
            let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
            let hosts = t.hosts().to_vec();
            let (src, dst) = (hosts[0], hosts[15]);
            let edge = t.edge_switch(src);
            let agg = t
                .node_ports(edge)
                .iter()
                .map(|p| p.peer)
                .find(|&n| t.kind(n) == NodeKind::Switch)
                .expect("edge switch has aggregation uplinks");
            let mut cfg = SimConfig::ndp(9);
            cfg.shards = shards;
            cfg.reroute_delay_ns = 50_000;
            let mut sim = Simulator::new(t, cfg);
            for &h in &hosts {
                sim.set_agent(
                    h,
                    Echo {
                        to_send: vec![],
                        received: vec![],
                    },
                );
            }
            for i in 0..60 {
                sim.agent_mut(src).to_send.push(data_pkt(src, dst, i));
            }
            sim.schedule_timer(src, SimTime::ZERO, 0);
            let plan = FaultPlan::new()
                .switch_down(SimTime::from_micros(80), agg)
                .switch_up(SimTime::from_micros(500), agg);
            sim.schedule_faults(&plan);
            sim.run_to_completion();
            let raw = sim.stats();
            let slot = sim.cell_of[dst.0 as usize] as usize;
            let trace = sim.cells[slot].agent.take().unwrap().received;
            (raw, trace)
        };
        let (serial_stats, serial_trace) = run(1);
        assert_eq!(serial_stats.shard_epochs, 0);
        for shards in [2usize, 4] {
            let (stats, trace) = run(shards);
            assert!(
                stats.shard_epochs > 0,
                "shards={shards} must actually run sharded"
            );
            assert_eq!(
                serial_stats.shard_invariant(),
                stats.shard_invariant(),
                "shards={shards}: stats diverged"
            );
            assert_eq!(serial_trace, trace, "shards={shards}: trace diverged");
        }
    }
}
