//! Sharded event loop: conservative time-window parallel simulation.
//!
//! The fabric is partitioned into switch-group shards (hosts follow
//! their access switch; fat-tree pods fall out of seeded graph-growing
//! over the non-core switches; Jellyfish partitions the same way; core
//! switches are round-robined). Each shard owns its nodes' cells and a
//! private event heap, and shards run on scoped threads under
//! conservative synchronisation: every epoch, each shard executes its
//! events up to `horizon = min(all shard clocks) + lookahead`, where
//! lookahead is the minimum propagation delay over cross-shard links —
//! an event at time `t` can influence another shard no earlier than
//! `t + lookahead`, so everything below the horizon is safe to run
//! without seeing the neighbours' future. Cross-shard packets travel
//! through per-epoch mailboxes; global events (faults and reroutes,
//! which mutate fabric-wide state) execute serially at barriers, as do
//! telemetry bucket closes.
//!
//! Determinism is inherited, not re-proved: every event carries the
//! execution-order-independent key `(time, author rank, author seq)`
//! (see [`crate::sim`]), so each shard's heap pops its events in
//! exactly the order the serial loop would have reached them, each
//! node's RNG stream and sequence counter advance identically, and the
//! mailbox insertion order is irrelevant. A sharded run is therefore
//! byte-identical to the serial run at any shard count —
//! [`crate::FabricStats::shard_invariant`] masks only the three
//! counters describing the runner itself.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use crate::packet::SimPayload;
use crate::sim::{
    apply_fault_shared, dispatch_node, reroute_shared, target_of, Agent, Control, Env, Ev,
    FabricStats, GlobalEvent, Lane, LocalOp, NodeEvent, Simulator, GLOBAL_RANK,
};
use crate::telemetry::{FabricEvent, PortProbe, TelemetrySink};
use crate::time::SimTime;
use crate::topology::{NodeId, NodeKind, Topology};

/// A shard's private event heap (min-heap over the total event key).
type ShardHeap<P> = BinaryHeap<Reverse<Ev<NodeEvent<P>>>>;
/// `mailboxes[dst][src]`: cross-shard events posted during a window.
type Mailboxes<P> = Vec<Vec<Mutex<Vec<Ev<NodeEvent<P>>>>>>;
/// What each worker hands back at the end of the run: its remaining
/// heap, its lane (stats + buffered notes), events processed, and the
/// timestamp of the last event it executed.
type WorkerResult<P> = (ShardHeap<P>, Lane<P>, u64, u64);

/// A partition of a topology into event-loop shards (see the module
/// docs). Built once per simulator; purely a wall-clock knob — the
/// plan never influences simulated results.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards (≥ 1; a plan that collapses to 1 means the
    /// topology is too small to shard and the serial loop runs).
    pub shards: usize,
    /// Shard of every node, indexed by node id. Hosts always share
    /// their access switch's shard, so host↔ToR traffic never crosses
    /// a shard boundary.
    pub shard_of: Vec<u32>,
    /// The conservative lookahead: the minimum propagation delay over
    /// links whose endpoints live in different shards (≥ 1 ns). Within
    /// one epoch every shard may run `lookahead_ns` past the globally
    /// slowest shard without missing a cross-shard arrival.
    pub lookahead_ns: u64,
    /// Cell storage order: `order[slot]` is the node stored at `slot`,
    /// grouped by shard (ascending node id within each shard).
    pub(crate) order: Vec<u32>,
    /// Per-shard `(start, end)` slot ranges into `order`.
    pub(crate) ranges: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Partition `topo` into up to `shards` shards.
    ///
    /// Switches with a directly attached host anchor the partition
    /// (distance-0 in a multi-source BFS over the switch graph); the
    /// switches at maximum host-distance with no attached host are the
    /// core tier and are round-robined across shards. The rest — the
    /// domain — is split by seeded graph-growing: seeds spread evenly
    /// over the domain in id order (pod-contiguous construction order
    /// makes fat-tree seeds land one per pod), then each shard claims
    /// its smallest-id unclaimed neighbour per round until the domain
    /// is exhausted, keeping shards balanced and connected. Hosts
    /// follow their access switch. Fully deterministic: same topology
    /// and count ⇒ same plan.
    pub fn build(topo: &Topology, shards: usize) -> ShardPlan {
        let n = topo.node_count();
        let is_switch: Vec<bool> = (0..n)
            .map(|i| topo.kind(NodeId(i as u32)) == NodeKind::Switch)
            .collect();
        // Multi-source BFS over the switch graph from host-attached
        // switches.
        let mut host_dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for i in 0..n {
            if !is_switch[i] {
                continue;
            }
            let direct = topo
                .node_ports(NodeId(i as u32))
                .iter()
                .any(|p| topo.kind(p.peer) == NodeKind::Host);
            if direct {
                host_dist[i] = 0;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for p in topo.node_ports(NodeId(i as u32)) {
                let j = p.peer.0 as usize;
                if is_switch[j] && host_dist[j] == u32::MAX {
                    host_dist[j] = host_dist[i] + 1;
                    queue.push_back(j);
                }
            }
        }
        let max_dist = (0..n)
            .filter(|&i| is_switch[i] && host_dist[i] != u32::MAX)
            .map(|i| host_dist[i])
            .max()
            .unwrap_or(0);
        let mut in_domain = vec![false; n];
        let mut core = Vec::new();
        let mut domain = Vec::new();
        for i in 0..n {
            if !is_switch[i] {
                continue;
            }
            let is_core = max_dist > 0 && host_dist[i] == max_dist;
            if is_core {
                core.push(i);
            } else {
                in_domain[i] = true;
                domain.push(i);
            }
        }
        if domain.is_empty() {
            // Degenerate fabric (e.g. switches only): partition the
            // "core" directly instead.
            std::mem::swap(&mut domain, &mut core);
            for &i in &domain {
                in_domain[i] = true;
            }
        }
        let k = shards.min(domain.len()).max(1);
        let mut shard_of = vec![u32::MAX; n];
        if k > 1 {
            // Seeds spread evenly over the domain in id order.
            let mut claimed: Vec<Vec<usize>> = Vec::with_capacity(k);
            for s in 0..k {
                let seed = domain[s * domain.len() / k];
                shard_of[seed] = s as u32;
                claimed.push(vec![seed]);
            }
            let mut unassigned = domain.len() - k;
            while unassigned > 0 {
                let mut progress = false;
                for (s, mine) in claimed.iter_mut().enumerate() {
                    // Claim the smallest-id unclaimed domain neighbour
                    // of anything this shard already holds.
                    let mut best: Option<usize> = None;
                    for &c in mine.iter() {
                        for p in topo.node_ports(NodeId(c as u32)) {
                            let j = p.peer.0 as usize;
                            if in_domain[j] && shard_of[j] == u32::MAX {
                                best = Some(best.map_or(j, |b| b.min(j)));
                            }
                        }
                    }
                    if let Some(j) = best {
                        shard_of[j] = s as u32;
                        mine.push(j);
                        unassigned -= 1;
                        progress = true;
                        if unassigned == 0 {
                            break;
                        }
                    }
                }
                if !progress && unassigned > 0 {
                    // Disconnected remainder (only reachable through
                    // the core tier): hand the smallest leftover to
                    // the smallest shard.
                    let j = domain
                        .iter()
                        .copied()
                        .find(|&i| shard_of[i] == u32::MAX)
                        .expect("unassigned > 0");
                    let s = (0..k)
                        .min_by_key(|&s| (claimed[s].len(), s))
                        .expect("k > 0");
                    shard_of[j] = s as u32;
                    claimed[s].push(j);
                    unassigned -= 1;
                }
            }
            for (i, &c) in core.iter().enumerate() {
                shard_of[c] = (i % k) as u32;
            }
        } else {
            for &i in domain.iter().chain(core.iter()) {
                shard_of[i] = 0;
            }
        }
        // Hosts follow their access switch; anything still unassigned
        // (isolated nodes) lands in shard 0.
        for i in 0..n {
            if is_switch[i] {
                continue;
            }
            shard_of[i] = topo
                .node_ports(NodeId(i as u32))
                .first()
                .map(|p| shard_of[p.peer.0 as usize])
                .unwrap_or(0);
        }
        for v in shard_of.iter_mut() {
            if *v == u32::MAX {
                *v = 0;
            }
        }
        // Conservative lookahead: the fastest cross-shard wire. Every
        // cross-shard influence is a packet arrival over a physical
        // link (hosts are single-homed onto their own shard's ToR), so
        // propagation alone bounds it; ≥ 1 keeps the window open even
        // in pathological zero-delay configs.
        let mut la = u64::MAX;
        for i in 0..n {
            for p in topo.node_ports(NodeId(i as u32)) {
                if shard_of[i] != shard_of[p.peer.0 as usize] {
                    la = la.min(p.prop_ns);
                }
            }
        }
        let lookahead_ns = if la == u64::MAX { 1 } else { la.max(1) };
        let mut order = Vec::with_capacity(n);
        let mut ranges = Vec::with_capacity(k);
        for s in 0..k as u32 {
            let start = order.len();
            for (i, &sh) in shard_of.iter().enumerate() {
                if sh == s {
                    order.push(i as u32);
                }
            }
            ranges.push((start, order.len()));
        }
        ShardPlan {
            shards: k,
            shard_of,
            lookahead_ns,
            order,
            ranges,
        }
    }
}

/// What each shard contributes to the serial synchronisation points:
/// buffered telemetry notes every epoch, plus (at bucket boundaries) a
/// cumulative stats snapshot and this shard's switch-port probes.
struct ShardBin {
    notes: Vec<(SimTime, u32, u64, FabricEvent)>,
    probes: Vec<PortProbe>,
    stats: FabricStats,
}

/// The fabric-global state shard workers share behind one `RwLock`:
/// read by every worker during windows (forwarding consults the fault
/// mask and routes), written only by worker 0 at global-event and
/// bucket-boundary barriers.
struct SharedCtx<'a, P, T> {
    topo: &'a mut Topology,
    control: &'a mut Control,
    telemetry: &'a mut T,
    gevents: &'a mut BinaryHeap<Reverse<Ev<GlobalEvent>>>,
    /// Per-node ops of the last applied global event, for workers to
    /// apply to their own cells (in list order) after the barrier.
    ops: Vec<LocalOp>,
    ops_at: SimTime,
    g_processed: u64,
    g_last_at: u64,
    _payload: std::marker::PhantomData<fn() -> P>,
}

/// Drain every bin's buffered notes and replay them to the sink in
/// `(time, rank, seq)` order — exactly the order the serial loop's
/// inline `record` calls would have made (serial processing order *is*
/// key order, and one author's notes are already key-sorted per bin).
fn flush_notes<T: TelemetrySink>(telemetry: &mut T, bins: &[Mutex<ShardBin>]) {
    let mut all = Vec::new();
    for bin in bins {
        all.append(&mut bin.lock().expect("bin lock").notes);
    }
    all.sort_by_key(|&(at, rank, seq, _)| (at, rank, seq));
    for (at, _, _, fe) in all {
        telemetry.record(at, fe);
    }
}

/// Run `sim` up to `deadline` on the sharded loop. Byte-identical to
/// [`Simulator::run_until`]'s serial path per seed; returns the number
/// of events processed across all shards plus global events.
pub(crate) fn run_sharded<P, A, T>(sim: &mut Simulator<P, A, T>, deadline: SimTime) -> u64
where
    P: SimPayload + Send,
    A: Agent<P> + Send,
    T: TelemetrySink + Send + Sync,
{
    let plan = sim.plan.clone().expect("sharded run without a plan");
    let k = plan.shards;
    let deadline_ns = deadline.as_nanos();
    let lookahead = plan.lookahead_ns;
    let tele_on = sim.telemetry.enabled();
    let entry_now = sim.now;
    let reroute_delay = sim.config.reroute_delay_ns;

    // Distribute the pending node events to per-shard heaps.
    let mut heaps: Vec<BinaryHeap<Reverse<Ev<NodeEvent<P>>>>> =
        (0..k).map(|_| BinaryHeap::new()).collect();
    while let Some(Reverse(ev)) = sim.nevents.pop() {
        let t = target_of(&ev.kind, &sim.topo);
        heaps[plan.shard_of[t.0 as usize] as usize].push(Reverse(ev));
    }

    let config = &sim.config;
    let cell_of = &sim.cell_of;
    let shared = RwLock::new(SharedCtx::<P, T> {
        topo: &mut sim.topo,
        control: &mut sim.control,
        telemetry: &mut sim.telemetry,
        gevents: &mut sim.gevents,
        ops: Vec::new(),
        ops_at: entry_now,
        g_processed: 0,
        g_last_at: entry_now.as_nanos(),
        _payload: std::marker::PhantomData,
    });

    // Disjoint per-shard cell slices (cells are stored shard-grouped).
    let mut slices: Vec<&mut [crate::sim::NodeCell<P, A>]> = Vec::with_capacity(k);
    let mut rest = &mut sim.cells[..];
    for &(s, e) in &plan.ranges {
        let (head, tail) = rest.split_at_mut(e - s);
        slices.push(head);
        rest = tail;
    }

    // mailboxes[dst][src]: cross-shard events posted during a window,
    // drained by the destination after the epoch barrier. Insertion
    // order is irrelevant — the heap's total key order re-serialises.
    let mailboxes: Mailboxes<P> = (0..k)
        .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let bins: Vec<Mutex<ShardBin>> = (0..k)
        .map(|_| {
            Mutex::new(ShardBin {
                notes: Vec::new(),
                probes: Vec::new(),
                stats: FabricStats::default(),
            })
        })
        .collect();
    let next_pub: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let tg_pub = AtomicU64::new(u64::MAX);
    let tb_pub = AtomicU64::new(u64::MAX);
    let barrier = Barrier::new(k);

    let mut results: Vec<WorkerResult<P>> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (w, (mut heap, cells_w)) in heaps.drain(..).zip(slices.drain(..)).enumerate() {
            let (plan, shared, barrier) = (&plan, &shared, &barrier);
            let (mailboxes, bins, next_pub) = (&mailboxes, &bins, &next_pub);
            let (tg_pub, tb_pub) = (&tg_pub, &tb_pub);
            handles.push(scope.spawn(move || {
                let slot_base = plan.ranges[w].0;
                let mut lane = Lane::<P>::default();
                let mut processed = 0u64;
                let mut last_at = entry_now.as_nanos();
                loop {
                    // Phase 1: hand buffered notes to the bin and
                    // publish this shard's clock; worker 0 publishes
                    // the global and bucket-boundary clocks.
                    if tele_on && !lane.notes.is_empty() {
                        bins[w]
                            .lock()
                            .expect("bin lock")
                            .notes
                            .append(&mut lane.notes);
                    }
                    let t_own = heap
                        .peek()
                        .map(|Reverse(e)| e.at.as_nanos())
                        .unwrap_or(u64::MAX);
                    next_pub[w].store(t_own, Ordering::SeqCst);
                    if w == 0 {
                        let g = shared.read().expect("shared read");
                        tg_pub.store(
                            g.gevents
                                .peek()
                                .map(|Reverse(e)| e.at.as_nanos())
                                .unwrap_or(u64::MAX),
                            Ordering::SeqCst,
                        );
                        tb_pub.store(g.telemetry.next_boundary().as_nanos(), Ordering::SeqCst);
                    }
                    barrier.wait();
                    // Phase 2: every worker computes the same branch
                    // from the published clocks.
                    let t_node = next_pub
                        .iter()
                        .map(|a| a.load(Ordering::SeqCst))
                        .min()
                        .expect("k >= 1");
                    let tg = tg_pub.load(Ordering::SeqCst);
                    let tb = tb_pub.load(Ordering::SeqCst);
                    let t_next = t_node.min(tg);
                    if t_next == u64::MAX {
                        break; // all heaps drained
                    }
                    if t_next > deadline_ns {
                        break;
                    }
                    if w == 0 {
                        lane.stats.shard_epochs += 1;
                    }
                    if tb <= t_next {
                        // Bucket boundary: contribute probes and a
                        // cumulative stats snapshot, then worker 0
                        // closes buckets exactly as the serial loop
                        // would before executing the event at t_next.
                        {
                            let g = shared.read().expect("shared read");
                            let mut bin = bins[w].lock().expect("bin lock");
                            bin.stats = lane.stats;
                            bin.probes.clear();
                            for cell in cells_w.iter() {
                                if g.topo.kind(cell.node) != NodeKind::Switch {
                                    continue;
                                }
                                for (p, q) in cell.queues.iter().enumerate() {
                                    bin.probes.push(PortProbe {
                                        node: cell.node.0,
                                        port: p as u16,
                                        depth: q.len() as u32,
                                        queue: q.stats(),
                                    });
                                }
                            }
                        }
                        barrier.wait();
                        if w == 0 {
                            let mut g = shared.write().expect("shared write");
                            let sh = &mut *g;
                            flush_notes(sh.telemetry, bins);
                            let mut probes = Vec::new();
                            let mut total = sh.control.stats;
                            for bin in bins {
                                let mut b = bin.lock().expect("bin lock");
                                probes.append(&mut b.probes);
                                total.absorb(&b.stats);
                            }
                            probes.sort_by_key(|p| (p.node, p.port));
                            let upto = SimTime::from_nanos(t_next);
                            while upto >= sh.telemetry.next_boundary() {
                                sh.telemetry.close_bucket(&total, &probes);
                            }
                        }
                        continue;
                    }
                    if tg <= t_node {
                        // Global event: worker 0 applies the shared
                        // part serially; everyone then applies its
                        // per-node ops to its own cells.
                        if w == 0 {
                            let mut g = shared.write().expect("shared write");
                            let sh = &mut *g;
                            if tele_on {
                                flush_notes(sh.telemetry, bins);
                            }
                            let Reverse(gev) =
                                sh.gevents.pop().expect("global clock from this heap");
                            debug_assert_eq!(gev.at.as_nanos(), tg);
                            sh.g_last_at = tg;
                            sh.g_processed += 1;
                            sh.ops.clear();
                            sh.ops_at = gev.at;
                            match gev.kind {
                                GlobalEvent::Fault(action) => {
                                    let mut reroute_at = None;
                                    apply_fault_shared(
                                        sh.topo,
                                        sh.control,
                                        sh.telemetry,
                                        reroute_delay,
                                        gev.at,
                                        action,
                                        &mut sh.ops,
                                        &mut reroute_at,
                                    );
                                    if let Some(t) = reroute_at {
                                        let seq = sh.control.gseq;
                                        sh.control.gseq += 1;
                                        sh.gevents.push(Reverse(Ev {
                                            at: t,
                                            rank: GLOBAL_RANK,
                                            seq,
                                            kind: GlobalEvent::Reroute,
                                        }));
                                    }
                                }
                                GlobalEvent::Reroute => {
                                    sh.control.reroute_pending = false;
                                    reroute_shared(
                                        sh.topo,
                                        sh.control,
                                        sh.telemetry,
                                        gev.at,
                                        &mut sh.ops,
                                    );
                                }
                            }
                        }
                        barrier.wait();
                        {
                            let g = shared.read().expect("shared read");
                            let at = g.ops_at;
                            for op in &g.ops {
                                match *op {
                                    LocalOp::Flush(node, p) => {
                                        if plan.shard_of[node.0 as usize] as usize != w {
                                            continue;
                                        }
                                        let slot = cell_of[node.0 as usize] as usize - slot_base;
                                        let lost = cells_w[slot].queues[p as usize].flush();
                                        lane.stats.lost_to_fault += lost as u64;
                                    }
                                    LocalOp::Kick(node, p) => {
                                        if plan.shard_of[node.0 as usize] as usize != w {
                                            continue;
                                        }
                                        let slot = cell_of[node.0 as usize] as usize - slot_base;
                                        let cell = &mut cells_w[slot];
                                        if !cell.busy[p as usize]
                                            && !cell.queues[p as usize].is_empty()
                                        {
                                            let seq = cell.next_seq();
                                            heap.push(Reverse(Ev {
                                                at,
                                                rank: node.0 + 1,
                                                seq,
                                                kind: NodeEvent::Dequeue(node, p),
                                            }));
                                        }
                                    }
                                    LocalOp::ClearMemos => {
                                        for cell in cells_w.iter_mut() {
                                            cell.memo.clear();
                                        }
                                    }
                                }
                            }
                        }
                        continue;
                    }
                    // Window: run this shard's events strictly below
                    // the conservative horizon. Everything a window
                    // event can emit lands either back on this heap
                    // (own-node timers/dequeues, same-shard arrivals,
                    // possibly still inside the window) or at
                    // `t + cross-shard prop ≥ horizon` in a mailbox.
                    let horizon = t_node
                        .saturating_add(lookahead)
                        .min(tg)
                        .min(tb)
                        .min(deadline_ns.saturating_add(1));
                    let mut did = 0u64;
                    {
                        let g = shared.read().expect("shared read");
                        let env = Env {
                            topo: &*g.topo,
                            config,
                            control: &*g.control,
                            tele_on,
                        };
                        loop {
                            let ready = heap
                                .peek()
                                .is_some_and(|Reverse(e)| e.at.as_nanos() < horizon);
                            if !ready {
                                break;
                            }
                            let Reverse(ev) = heap.pop().expect("peeked");
                            last_at = ev.at.as_nanos();
                            let target = target_of(&ev.kind, env.topo);
                            let slot = cell_of[target.0 as usize] as usize - slot_base;
                            dispatch_node(
                                &env,
                                &mut cells_w[slot],
                                &mut lane,
                                ev.at,
                                ev.rank,
                                ev.seq,
                                ev.kind,
                            );
                            while let Some(oe) = lane.out.pop() {
                                let ot = target_of(&oe.kind, env.topo);
                                let os = plan.shard_of[ot.0 as usize] as usize;
                                if os == w {
                                    heap.push(Reverse(oe));
                                } else {
                                    lane.stats.cross_shard_packets += 1;
                                    mailboxes[os][w].lock().expect("mailbox").push(oe);
                                }
                            }
                            did += 1;
                        }
                    }
                    if did == 0 && t_own != u64::MAX {
                        // Had work, but the horizon closed before any
                        // of it: the conservative window held this
                        // shard back a full epoch.
                        lane.stats.horizon_stalls += 1;
                    }
                    processed += did;
                    barrier.wait();
                    // Epoch close: collect what the neighbours mailed.
                    for slot in &mailboxes[w] {
                        let mut mb = slot.lock().expect("mailbox");
                        for ev in mb.drain(..) {
                            heap.push(Reverse(ev));
                        }
                    }
                }
                lane.stats.events += processed;
                (heap, lane, processed, last_at)
            }));
        }
        for h in handles {
            results.push(h.join().expect("shard worker panicked"));
        }
    });

    // Reassemble: merge heaps and lanes back into the simulator, flush
    // any notes buffered since the last synchronisation point, and
    // advance the clock to the last executed event.
    let mut node_processed = 0u64;
    let mut max_at = entry_now.as_nanos();
    let mut leftover: Vec<(SimTime, u32, u64, FabricEvent)> = Vec::new();
    for (heap, mut wl, p, la) in results {
        sim.nevents.extend(heap);
        leftover.append(&mut wl.notes);
        sim.lane.stats.absorb(&wl.stats);
        node_processed += p;
        max_at = max_at.max(la);
    }
    let sh = shared.into_inner().expect("shared poisoned");
    let (g_processed, g_last_at) = (sh.g_processed, sh.g_last_at);
    drop(sh);
    for bin in &bins {
        leftover.append(&mut bin.lock().expect("bin lock").notes);
    }
    if tele_on {
        leftover.sort_by_key(|&(at, rank, seq, _)| (at, rank, seq));
        for (at, _, _, fe) in leftover {
            sim.telemetry.record(at, fe);
        }
    }
    sim.control.stats.events += g_processed;
    sim.now = SimTime::from_nanos(max_at.max(g_last_at));
    node_processed + g_processed
}
