//! Simulation time.
//!
//! Time is an integer count of **nanoseconds** since simulation start.
//! At the paper's 1 Gbps link speed one bit takes exactly one nanosecond
//! on the wire, so every serialization delay in the evaluation is an exact
//! integer — no floating-point drift, bit-for-bit reproducible runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference (`self - earlier`), useful for durations.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow: rhs is later than lhs")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Serialization delay of `bytes` at `rate_bps`, in nanoseconds
/// (rounded up so a packet never finishes "early").
pub fn serialization_ns(bytes: u32, rate_bps: u64) -> u64 {
    let bits = u64::from(bytes) * 8;
    // ns = bits / (rate / 1e9) = bits * 1e9 / rate, rounding up.
    (bits * 1_000_000_000).div_ceil(rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_consistent() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn one_gbps_is_one_bit_per_ns() {
        // The property the whole evaluation's integer arithmetic rests on.
        assert_eq!(serialization_ns(1500, 1_000_000_000), 12_000);
        assert_eq!(serialization_ns(64, 1_000_000_000), 512);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps → 8/3e-9... enormous; check a crisp case:
        // 10 Gbps: 1500 B = 1200 ns exactly; 1501 B = 1200.8 → 1201.
        assert_eq!(serialization_ns(1500, 10_000_000_000), 1_200);
        assert_eq!(serialization_ns(1501, 10_000_000_000), 1_201);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(10).to_string(), "10.000µs");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime::from_nanos(1).since(SimTime::from_nanos(5)), 0);
        assert_eq!(SimTime::from_nanos(9).since(SimTime::from_nanos(5)), 4);
    }
}
