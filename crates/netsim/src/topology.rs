//! Network topology: nodes, links, and multipath routing tables.
//!
//! The topology is a general undirected graph of hosts and switches with
//! per-link rate and propagation delay. Routing tables are computed by
//! per-destination BFS and record a pluggable **path set** per
//! (node, destination) — see [`RouteSet`]: all shortest-path ports by
//! default (classic ECMP structure), optionally augmented with loop-free
//! non-minimal detours (FatPaths-style) so low-diameter random graphs
//! expose their path redundancy too. The forwarding policy (hash-based
//! ECMP vs. per-packet spraying) picks among the advertised ports at run
//! time.
//!
//! Routing is **re-runnable**: [`Topology::compute_routes_masked`]
//! recomputes the tables against a live [`FaultMask`], which is how the
//! simulator reroutes around mid-run link and switch failures.
//!
//! Three generators are provided: [`Topology::fat_tree`] (the paper's
//! evaluation fabric, k = 10 → 250 hosts), [`Topology::leaf_spine`]
//! (two-tier, optionally oversubscribed uplinks), and
//! [`Topology::jellyfish`] (seeded random regular graph of switches, as
//! in Singla et al.'s Jellyfish).

use crate::fault::FaultMask;
use crate::rng::Pcg32;

/// Index of a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (runs a transport agent, has exactly one port).
    Host,
    /// A switch (forwards packets, owns port queues).
    Switch,
}

/// One directed attachment point of a node.
#[derive(Debug, Clone, Copy)]
pub struct Port {
    /// The node on the other end of the link.
    pub peer: NodeId,
    /// Port index on the peer that points back at us.
    pub peer_port: u16,
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub prop_ns: u64,
}

/// Which path set [`Topology::compute_routes`] advertises per
/// (node, destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteSet {
    /// All ports on shortest paths (classic BFS/ECMP multipath).
    #[default]
    Minimal,
    /// Shortest-path ports plus loop-free sideways detours: a port to an
    /// equal-distance neighbour is advertised when the neighbour's id is
    /// lower than the node's. Every hop strictly decreases the potential
    /// `(distance, node id)` lexicographically, so any walk over the
    /// advertised ports terminates at the destination — the FatPaths
    /// insight that low-diameter fabrics need *non-minimal* path sets to
    /// expose their redundancy, realised without per-packet state.
    /// Shortest-path ports are recorded first, so `next_ports(..)[0]`
    /// always advances along a minimal path.
    NonMinimal,
}

/// Outcome of an incremental [`Topology::repair_routes`] call —
/// how much of the routing state had to be recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRepair {
    /// The repair fell back to a full [`Topology::compute_routes_masked`]
    /// (non-minimal path set, or too many destination trees invalidated
    /// for surgery to pay off).
    pub full: bool,
    /// Destination trees rebuilt by per-destination BFS. Equals the host
    /// count on a full fallback; usually a small fraction of it after a
    /// single link or switch failure.
    pub dests_rebuilt: usize,
    /// Destination route columns touched by dead-entry surgery alone
    /// (advertised ports removed without any distance change).
    pub dests_touched: usize,
    /// Restored elements (undirected links + nodes) in the delta. When
    /// `full` is false these were healed by bounded restore surgery —
    /// re-advertising equal-cost ports in place and BFS-rebuilding only
    /// destinations whose distance can shrink.
    pub restored: usize,
}

/// A network graph plus routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<Port>>,
    hosts: Vec<NodeId>,
    host_index: Vec<Option<u32>>, // NodeId -> index into `hosts`
    /// `routes[node][dst_host_index]` = advertised ports of `node`
    /// towards that host. Empty until [`Topology::compute_routes`].
    routes: Vec<Vec<Vec<u16>>>,
    /// `dist[dst_host_index][node]` = BFS hop count from `node` to that
    /// host under the mask the routes were computed with (`u32::MAX` =
    /// unreachable). Kept alongside the route tables so restore repair
    /// can decide in O(1) per destination whether a restored element can
    /// shorten any path.
    dist: Vec<Vec<u32>>,
    route_set: RouteSet,
    /// The fault mask the current `routes` were computed against — the
    /// baseline [`Topology::repair_routes`] diffs new masks against.
    routes_mask: FaultMask,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self {
            kinds: Vec::new(),
            ports: Vec::new(),
            hosts: Vec::new(),
            host_index: Vec::new(),
            routes: Vec::new(),
            dist: Vec::new(),
            route_set: RouteSet::Minimal,
            routes_mask: FaultMask::new(),
        }
    }

    /// Select the path-set policy. Takes effect at the next
    /// [`Topology::compute_routes`] / [`Topology::compute_routes_masked`]
    /// call; call one of them afterwards before forwarding.
    pub fn set_route_set(&mut self, route_set: RouteSet) {
        self.route_set = route_set;
    }

    /// The active path-set policy.
    pub fn route_set(&self) -> RouteSet {
        self.route_set
    }

    /// Add a node of the given kind, returning its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.ports.push(Vec::new());
        self.host_index.push(None);
        if kind == NodeKind::Host {
            self.host_index[id.0 as usize] = Some(self.hosts.len() as u32);
            self.hosts.push(id);
        }
        id
    }

    /// Connect two nodes with a bidirectional link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate_bps: u64, prop_ns: u64) {
        assert_ne!(a, b, "self-links are not allowed");
        let pa = self.ports[a.0 as usize].len() as u16;
        let pb = self.ports[b.0 as usize].len() as u16;
        self.ports[a.0 as usize].push(Port {
            peer: b,
            peer_port: pb,
            rate_bps,
            prop_ns,
        });
        self.ports[b.0 as usize].push(Port {
            peer: a,
            peer_port: pa,
            rate_bps,
            prop_ns,
        });
    }

    /// Node kind accessor.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0 as usize]
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Dense index of a host (panics for switches).
    pub fn host_index(&self, n: NodeId) -> usize {
        self.host_index[n.0 as usize].expect("node is not a host") as usize
    }

    /// Ports of a node.
    pub fn node_ports(&self, n: NodeId) -> &[Port] {
        &self.ports[n.0 as usize]
    }

    /// A specific port.
    pub fn port(&self, n: NodeId, p: u16) -> &Port {
        &self.ports[n.0 as usize][p as usize]
    }

    /// Compute multipath routing tables on the healthy fabric (must be
    /// called after the graph is final and before forwarding).
    pub fn compute_routes(&mut self) {
        self.compute_routes_masked(&FaultMask::new());
    }

    /// Recompute the routing tables, treating every link and node in
    /// `mask` as absent. Re-runnable at any time; the simulator calls
    /// this when executing fault events mid-run. Destinations that the
    /// mask disconnects simply end up with empty port lists (see
    /// [`Topology::try_next_ports`]).
    pub fn compute_routes_masked(&mut self, mask: &FaultMask) {
        let n = self.node_count();
        self.routes = vec![vec![Vec::new(); self.hosts.len()]; n];
        self.dist = vec![vec![u32::MAX; n]; self.hosts.len()];
        let mut frontier: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for (h_idx, &host) in self.hosts.clone().iter().enumerate() {
            self.compute_dest_routes(h_idx, host, mask, &mut frontier);
        }
        self.routes_mask = mask.clone();
    }

    /// Rebuild the routing column of one destination host: BFS from the
    /// destination outward (recording the distances in `self.dist`), then
    /// record every node's advertised ports. The BFS traverses links in
    /// reverse, but the mask is symmetric per link and per node, so
    /// checking the (u, port) direction suffices.
    fn compute_dest_routes(
        &mut self,
        h_idx: usize,
        host: NodeId,
        mask: &FaultMask,
        frontier: &mut std::collections::VecDeque<u32>,
    ) {
        let n = self.node_count();
        for u in 0..n {
            self.routes[u][h_idx].clear();
        }
        let dist = &mut self.dist[h_idx];
        dist.fill(u32::MAX);
        frontier.clear();
        if mask.node_is_down(host) {
            return;
        }
        dist[host.0 as usize] = 0;
        frontier.push_back(host.0);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u as usize];
            for (pi, port) in self.ports[u as usize].iter().enumerate() {
                if mask.link_is_down(NodeId(u), pi as u16) || mask.node_is_down(port.peer) {
                    continue;
                }
                let v = port.peer.0;
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    frontier.push_back(v);
                }
            }
        }
        // Record each node's advertised ports: shortest-path ports
        // first (so `next_ports(..)[0]` is always minimal), then —
        // under `RouteSet::NonMinimal` — loop-free sideways detours.
        for u in 0..n as u32 {
            if dist[u as usize] == u32::MAX || u == host.0 || mask.node_is_down(NodeId(u)) {
                continue;
            }
            let du = dist[u as usize];
            let usable = |pi: usize, p: &Port| {
                !mask.link_is_down(NodeId(u), pi as u16)
                    && !mask.node_is_down(p.peer)
                    && dist[p.peer.0 as usize] != u32::MAX
            };
            let mut next: Vec<u16> = Vec::new();
            for (pi, p) in self.ports[u as usize].iter().enumerate() {
                if usable(pi, p) && dist[p.peer.0 as usize] + 1 == du {
                    next.push(pi as u16);
                }
            }
            if self.route_set == RouteSet::NonMinimal {
                for (pi, p) in self.ports[u as usize].iter().enumerate() {
                    if usable(pi, p) && dist[p.peer.0 as usize] == du && p.peer.0 < u {
                        next.push(pi as u16);
                    }
                }
            }
            self.routes[u as usize][h_idx] = next;
        }
    }

    /// Incrementally repair the routing tables after the fault mask
    /// changed — the fast path for the common case of one (or a few) new
    /// link or switch failures or restorations.
    ///
    /// **Failures.** The repair diffs `mask` against the mask the tables
    /// were last computed with and excises the newly dead directed
    /// `(node, port)` entries from every destination column they are
    /// advertised in. Removing an advertised port can only change
    /// shortest-path *distances* when it was the node's last advertised
    /// port (any surviving advertised port still reaches a neighbour one
    /// hop closer, so every distance is preserved by induction); only
    /// those destinations are rebuilt by a per-destination BFS. Hosts
    /// are leaves that nothing routes through, so emptying a host's own
    /// column entry never invalidates the tree.
    ///
    /// **Restorations.** A restored element can only *shrink* distances.
    /// Using the retained distance tables the repair decides per
    /// destination in O(degree) whether the restored link/node lies on a
    /// strictly shorter path: if not, the restoration is pure surgery —
    /// the restored ports are re-advertised exactly where they are
    /// equal-cost next hops — and only destinations whose distance can
    /// actually shrink (including previously cut-off ones) are rebuilt
    /// by a per-destination BFS. This replaces the old behaviour of
    /// falling back to a full recomputation on every restoration, which
    /// made flapping links pay the full control-plane bill each cycle.
    ///
    /// Falls back to a full [`Topology::compute_routes_masked`] — and
    /// says so in the returned [`RouteRepair`] — whenever surgery cannot
    /// be proven cheap and exact: routes never computed, the non-minimal
    /// path set active (sideways-detour eligibility depends on exact
    /// distances), or a mass delta dirtying more than a quarter of all
    /// destinations.
    ///
    /// The result is always identical to a full recomputation against
    /// `mask` (property-tested in `fabric_invariants`).
    pub fn repair_routes(&mut self, mask: &FaultMask) -> RouteRepair {
        let restored_links = mask.restored_links_since(&self.routes_mask);
        let restored_nodes = mask.restored_nodes_since(&self.routes_mask);
        // Directed restored entries come in symmetric pairs; count and
        // process each undirected link once.
        let restored_undirected: Vec<(u32, u16)> = restored_links
            .iter()
            .map(|&(n, p)| (n.0, p))
            .filter(|&(n, p)| {
                let back = &self.ports[n as usize][p as usize];
                (n, p) <= (back.peer.0, back.peer_port)
            })
            .collect();
        let restored = restored_undirected.len() + restored_nodes.len();
        let full = RouteRepair {
            full: true,
            dests_rebuilt: self.hosts.len(),
            dests_touched: self.hosts.len(),
            restored,
        };
        if self.routes.is_empty() || self.route_set == RouteSet::NonMinimal {
            self.compute_routes_masked(mask);
            return full;
        }
        let new_links = mask.new_links_since(&self.routes_mask);
        let new_nodes = mask.new_nodes_since(&self.routes_mask);
        if new_links.is_empty() && new_nodes.is_empty() && restored == 0 {
            self.routes_mask = mask.clone();
            return RouteRepair {
                full: false,
                dests_rebuilt: 0,
                dests_touched: 0,
                restored: 0,
            };
        }
        // Every newly dead directed (node, port) hop: the failed links
        // (masks store both directions) plus each port of — and into —
        // a newly failed node.
        let mut dead: Vec<(u32, u16)> = new_links.iter().map(|&(n, p)| (n.0, p)).collect();
        for &w in &new_nodes {
            for (pi, p) in self.ports[w.0 as usize].iter().enumerate() {
                dead.push((w.0, pi as u16));
                dead.push((p.peer.0, p.peer_port));
            }
        }
        dead.sort_unstable();
        dead.dedup();
        // Surgery runs dead-entry-major: each dead (u, p) sweeps node
        // u's route row sequentially (cache-friendly — the row is one
        // contiguous Vec per destination), flagging per-destination
        // outcomes in bitmaps that are aggregated afterwards.
        let mut col_touched = vec![false; self.hosts.len()];
        let mut col_dirty = vec![false; self.hosts.len()];
        // A newly failed destination host needs its column cleared — the
        // rebuild handles that uniformly.
        for &w in &new_nodes {
            if let Some(h) = self.host_index[w.0 as usize] {
                col_dirty[h as usize] = true;
            }
        }
        for &(u, p) in &dead {
            // A live switch that loses its last advertised port may now
            // be farther from (or cut off from) the destination, which
            // can cascade; those trees are rebuilt. Dead nodes'
            // distances are irrelevant (their rows are cleared below),
            // and hosts are leaves nothing routes through.
            let alive = !mask.node_is_down(NodeId(u));
            let empties_matter = self.kinds[u as usize] == NodeKind::Switch && alive;
            let is_host = self.kinds[u as usize] == NodeKind::Host;
            for (h_idx, list) in self.routes[u as usize].iter_mut().enumerate() {
                if let Some(pos) = list.iter().position(|&x| x == p) {
                    list.remove(pos);
                    col_touched[h_idx] = true;
                    if list.is_empty() {
                        if empties_matter {
                            col_dirty[h_idx] = true;
                        } else if is_host && alive {
                            // A host with no way out is cut off (hosts
                            // have one link), and nothing routes through
                            // it, so no switch empties on its behalf —
                            // record the unreachability directly or the
                            // distance table would go stale for restore
                            // checks.
                            self.dist[h_idx][u as usize] = u32::MAX;
                        }
                    }
                }
            }
        }
        // A dead node advertises nothing and is unreachable everywhere
        // (full recomputation never visits it); clear its rows and
        // distances wholesale.
        for &w in &new_nodes {
            for h_idx in 0..self.hosts.len() {
                self.routes[w.0 as usize][h_idx].clear();
                self.dist[h_idx][w.0 as usize] = u32::MAX;
            }
        }
        // Restore surgery, against the post-excision tables. Distances
        // of non-dirty columns are exact here (failure surgery preserves
        // them by the last-port argument), so each restored element can
        // be checked and patched in place; dirty columns are skipped —
        // their BFS rebuild below covers everything at once.
        self.restore_surgery(mask, &restored_undirected, &restored_nodes, &mut col_dirty);
        let dirty: Vec<usize> = (0..self.hosts.len()).filter(|&h| col_dirty[h]).collect();
        let touched = (0..self.hosts.len())
            .filter(|&h| col_touched[h] && !col_dirty[h])
            .count();
        if dirty.len() * 4 > self.hosts.len() {
            self.compute_routes_masked(mask);
            return full;
        }
        let mut frontier = std::collections::VecDeque::new();
        for &h_idx in &dirty {
            let host = self.hosts[h_idx];
            self.compute_dest_routes(h_idx, host, mask, &mut frontier);
        }
        self.routes_mask = mask.clone();
        RouteRepair {
            full: false,
            dests_rebuilt: dirty.len(),
            dests_touched: touched,
            restored,
        }
    }

    /// Patch the route tables for restored elements, column by column.
    /// For every destination whose distances cannot shrink, restored
    /// ports are re-advertised exactly where they are equal-cost next
    /// hops; destinations where the restored element lies on a strictly
    /// shorter path (or re-attaches a cut-off region) are flagged in
    /// `col_dirty` for a per-destination BFS rebuild. Elements are
    /// processed sequentially, so a restored node's freshly computed
    /// distance feeds the checks of later elements in the same delta.
    // The column loops index several parallel per-destination tables
    // (`col_dirty`, `self.dist`, `self.hosts`, `self.routes`); iterator
    // chains would obscure that they advance in lockstep.
    #[allow(clippy::needless_range_loop)]
    fn restore_surgery(
        &mut self,
        mask: &FaultMask,
        restored_links: &[(u32, u16)],
        restored_nodes: &[NodeId],
        col_dirty: &mut [bool],
    ) {
        for &w in restored_nodes {
            let wu = w.0 as usize;
            let n_ports = self.ports[wu].len();
            for h_idx in 0..self.hosts.len() {
                if col_dirty[h_idx] {
                    continue;
                }
                // The restored node is this column's destination host:
                // the whole column was cleared when it died.
                if self.hosts[h_idx] == w {
                    col_dirty[h_idx] = true;
                    continue;
                }
                // New distance of w: one past its closest usable
                // neighbour (usable = link up, peer up, peer reachable).
                let mut dw = u32::MAX;
                for pi in 0..n_ports {
                    let peer = self.ports[wu][pi].peer;
                    if mask.link_is_down(w, pi as u16) || mask.node_is_down(peer) {
                        continue;
                    }
                    let dp = self.dist[h_idx][peer.0 as usize];
                    if dp != u32::MAX {
                        dw = dw.min(dp + 1);
                    }
                }
                if dw == u32::MAX {
                    continue; // still cut off; row stays empty
                }
                // Any usable neighbour strictly farther than dw + 1
                // (including unreachable ones) gets closer through w —
                // the shrink can cascade, so rebuild this destination.
                // Exception: a leaf host (nothing routes through it) can
                // only have its own row change, which is pure surgery.
                let shrinks = (0..n_ports).any(|pi| {
                    let peer = self.ports[wu][pi].peer;
                    !mask.link_is_down(w, pi as u16)
                        && !mask.node_is_down(peer)
                        && self.dist[h_idx][peer.0 as usize] > dw.saturating_add(1)
                        && !self.is_leaf_host(peer)
                });
                if shrinks {
                    col_dirty[h_idx] = true;
                    continue;
                }
                // Pure surgery: record w's own advertised ports, make w
                // an additional equal-cost hop at neighbours one further
                // out, and re-attach leaf hosts w was the way out for.
                self.dist[h_idx][wu] = dw;
                let mut row = Vec::new();
                for pi in 0..n_ports {
                    let port = self.ports[wu][pi];
                    if mask.link_is_down(w, pi as u16) || mask.node_is_down(port.peer) {
                        continue;
                    }
                    let dp = self.dist[h_idx][port.peer.0 as usize];
                    if dp != u32::MAX && dp + 1 == dw {
                        row.push(pi as u16);
                    } else if dp == dw + 1 {
                        insert_port(
                            &mut self.routes[port.peer.0 as usize][h_idx],
                            port.peer_port,
                        );
                    } else if dp > dw + 1 && self.is_leaf_host(port.peer) {
                        self.dist[h_idx][port.peer.0 as usize] = dw + 1;
                        self.routes[port.peer.0 as usize][h_idx] = vec![port.peer_port];
                    }
                }
                self.routes[wu][h_idx] = row;
            }
        }
        for &(u, p) in restored_links {
            let port = self.ports[u as usize][p as usize];
            let (v, q) = (port.peer, port.peer_port);
            // The link only carries traffic if both endpoints are alive.
            if mask.node_is_down(NodeId(u)) || mask.node_is_down(v) {
                continue;
            }
            for h_idx in 0..self.hosts.len() {
                if col_dirty[h_idx] {
                    continue;
                }
                let du = self.dist[h_idx][u as usize];
                let dv = self.dist[h_idx][v.0 as usize];
                if du == u32::MAX && dv == u32::MAX {
                    continue; // both sides cut off; the link helps nobody
                }
                // One side unreachable or ≥2 hops farther: the restored
                // link shortens (or creates) paths — rebuild, unless the
                // far side is a leaf host, whose revival can't cascade
                // (nothing routes through it) and is patched in place.
                let (near, far) = (du.min(dv), du.max(dv));
                if far > near.saturating_add(1) {
                    let (far_node, far_port) = if du > dv { (NodeId(u), p) } else { (v, q) };
                    if self.is_leaf_host(far_node) {
                        self.dist[h_idx][far_node.0 as usize] = near + 1;
                        self.routes[far_node.0 as usize][h_idx] = vec![far_port];
                    } else {
                        col_dirty[h_idx] = true;
                    }
                    continue;
                }
                // Equal-cost surgery: the downhill direction (if any)
                // becomes a newly advertised shortest-path port.
                if du == dv + 1 {
                    insert_port(&mut self.routes[u as usize][h_idx], p);
                } else if dv == du + 1 {
                    insert_port(&mut self.routes[v.0 as usize][h_idx], q);
                }
            }
        }
    }

    /// Advertised ports of `node` towards `dst` (a host).
    ///
    /// # Panics
    /// Panics if routes were not computed or `dst` is unreachable —
    /// both are configuration bugs, not runtime conditions.
    pub fn next_ports(&self, node: NodeId, dst: NodeId) -> &[u16] {
        let next = self.try_next_ports(node, dst);
        assert!(
            !next.is_empty(),
            "no route from node {} to host {} (routes computed?)",
            node.0,
            dst.0
        );
        next
    }

    /// Advertised ports of `node` towards `dst`, empty when `dst` is
    /// unreachable under the mask the routes were computed with. The
    /// simulator uses this to drop (rather than panic on) packets whose
    /// destination a fault has disconnected.
    pub fn try_next_ports(&self, node: NodeId, dst: NodeId) -> &[u16] {
        let h = self.host_index(dst);
        &self.routes[node.0 as usize][h]
    }

    /// Hop count of the shortest path between two hosts.
    pub fn path_hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        let mut hops = 0;
        let mut at = a;
        loop {
            let p = self.next_ports(at, b)[0];
            at = self.port(at, p).peer;
            hops += 1;
            if at == b {
                return hops;
            }
            assert!(hops < 64, "path longer than 64 hops; routing loop?");
        }
    }

    /// Build a k-ary fat-tree (k even): k pods of (k/2 edge + k/2
    /// aggregation) switches, (k/2)² core switches, k²/4 hosts per pod
    /// wait — k/2 hosts per edge switch, so k³/4 hosts total. All links
    /// share `rate_bps`/`prop_ns` (the paper: 1 Gbps, 10 µs).
    // Index loops mirror the fat-tree's (pod, column) coordinate system;
    // iterator chains over the nested vecs obscure the symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn fat_tree(k: usize, rate_bps: u64, prop_ns: u64) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree requires even k >= 2"
        );
        let half = k / 2;
        let mut t = Topology::new();

        // Hosts and edge/agg switches, pod by pod.
        let mut edges = vec![vec![NodeId(0); half]; k];
        let mut aggs = vec![vec![NodeId(0); half]; k];
        for pod in 0..k {
            for e in 0..half {
                let edge = t.add_node(NodeKind::Switch);
                edges[pod][e] = edge;
                for _ in 0..half {
                    let host = t.add_node(NodeKind::Host);
                    t.connect(host, edge, rate_bps, prop_ns);
                }
            }
            for a in 0..half {
                aggs[pod][a] = t.add_node(NodeKind::Switch);
            }
            for e in 0..half {
                for a in 0..half {
                    t.connect(edges[pod][e], aggs[pod][a], rate_bps, prop_ns);
                }
            }
        }
        // Core layer: group g serves aggregation index g of every pod.
        for g in 0..half {
            for c in 0..half {
                let core = t.add_node(NodeKind::Switch);
                let _ = c;
                for pod in 0..k {
                    t.connect(aggs[pod][g], core, rate_bps, prop_ns);
                }
            }
        }
        t.compute_routes();
        t
    }

    /// The edge switch a host hangs off (host's single uplink peer).
    pub fn edge_switch(&self, host: NodeId) -> NodeId {
        assert_eq!(self.kind(host), NodeKind::Host);
        self.ports[host.0 as usize][0].peer
    }

    /// Whether two hosts share an edge switch ("same rack"); used for
    /// the paper's replica placement rule (replicas outside the client's
    /// rack).
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_switch(a) == self.edge_switch(b)
    }

    /// Whether two hosts share a coarse shared-risk group: the same
    /// rack, or edge switches with a common switch neighbour — on a
    /// fat-tree that is "same pod" (one aggregation switch serves both),
    /// the blast radius of a single aggregation failure. Shared-risk-
    /// aware replica placement (`workload::scenario`) uses this to
    /// spread replica sets so no single agg/core event can strand more
    /// than one of them; fabrics where every pair shares risk (e.g. a
    /// two-tier leaf–spine, where all leaves see all spines) simply fall
    /// back to the rack rule.
    pub fn shared_risk(&self, a: NodeId, b: NodeId) -> bool {
        let (ea, eb) = (self.edge_switch(a), self.edge_switch(b));
        if ea == eb {
            return true;
        }
        self.ports[ea.0 as usize].iter().any(|p| {
            self.kind(p.peer) == NodeKind::Switch
                && self.ports[eb.0 as usize].iter().any(|q| q.peer == p.peer)
        })
    }

    /// One-way store-and-forward delay of a `bytes`-sized packet from
    /// `from` to `to`, walking the first advertised (minimal) path and
    /// summing each traversed link's own serialization and propagation
    /// delay — correct on heterogeneous fabrics (e.g. oversubscribed
    /// leaf–spine uplinks), where no single link speed describes a path.
    pub fn path_delay_ns(&self, from: NodeId, to: NodeId, bytes: u32) -> u64 {
        let mut total = 0u64;
        let mut at = from;
        let mut hops = 0u32;
        while at != to {
            let p = self.port(at, self.next_ports(at, to)[0]);
            total += crate::time::serialization_ns(bytes, p.rate_bps) + p.prop_ns;
            at = p.peer;
            hops += 1;
            assert!(hops < 256, "path longer than 256 hops; routing loop?");
        }
        total
    }

    /// Base round-trip time between two hosts for a given packet size:
    /// the actual forward path walked link by link with a data-size
    /// packet, plus the return path with a header-size packet. A
    /// convenience for transports sizing their initial window to one BDP.
    pub fn base_rtt_ns(&self, a: NodeId, b: NodeId, data_bytes: u32, ctrl_bytes: u32) -> u64 {
        self.path_delay_ns(a, b, data_bytes) + self.path_delay_ns(b, a, ctrl_bytes)
    }

    /// Build a two-tier leaf–spine fabric: `leaves` leaf switches with
    /// `hosts_per_leaf` hosts each, every leaf connected to every one of
    /// `spines` spine switches. Host links run at `rate_bps`; each
    /// uplink runs at `hosts_per_leaf × rate_bps / (spines × oversub)`,
    /// so `oversub = 1` is non-blocking and `oversub = 4` is the classic
    /// 4:1 oversubscribed data-centre fabric (and makes the fabric
    /// heterogeneous — uplinks slower than host links).
    pub fn leaf_spine(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        oversub: f64,
        rate_bps: u64,
        prop_ns: u64,
    ) -> Topology {
        assert!(
            leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1,
            "leaf-spine needs >= 2 leaves, >= 1 spine, >= 1 host per leaf"
        );
        assert!(oversub > 0.0, "oversubscription ratio must be positive");
        let uplink_bps =
            ((hosts_per_leaf as f64 * rate_bps as f64) / (spines as f64 * oversub)).round() as u64;
        assert!(uplink_bps > 0, "oversubscription leaves uplinks at 0 bps");
        let mut t = Topology::new();
        let mut leaf_ids = Vec::with_capacity(leaves);
        for _ in 0..leaves {
            let leaf = t.add_node(NodeKind::Switch);
            leaf_ids.push(leaf);
            for _ in 0..hosts_per_leaf {
                let host = t.add_node(NodeKind::Host);
                t.connect(host, leaf, rate_bps, prop_ns);
            }
        }
        let spine_ids: Vec<NodeId> = (0..spines).map(|_| t.add_node(NodeKind::Switch)).collect();
        for &leaf in &leaf_ids {
            for &spine in &spine_ids {
                t.connect(leaf, spine, uplink_bps, prop_ns);
            }
        }
        t.compute_routes();
        t
    }

    /// Build a Jellyfish-style fabric (Singla et al.): `switches`
    /// switches wired into a seeded random `net_degree`-regular graph
    /// (simple and connected — stub matching with deterministic
    /// retries), each hosting `hosts_per_switch` hosts. All links share
    /// `rate_bps`/`prop_ns`. Same seed ⇒ identical graph.
    pub fn jellyfish(
        switches: usize,
        net_degree: usize,
        hosts_per_switch: usize,
        rate_bps: u64,
        prop_ns: u64,
        seed: u64,
    ) -> Topology {
        assert!(
            net_degree >= 2 && switches > net_degree,
            "jellyfish needs net_degree >= 2 and more switches than the degree"
        );
        assert!(
            (switches * net_degree).is_multiple_of(2),
            "switches x net_degree must be even"
        );
        let edges = random_regular_edges(switches, net_degree, seed);
        let mut t = Topology::new();
        let sw: Vec<NodeId> = (0..switches)
            .map(|_| t.add_node(NodeKind::Switch))
            .collect();
        for &(a, b) in &edges {
            t.connect(sw[a], sw[b], rate_bps, prop_ns);
        }
        for &s in &sw {
            for _ in 0..hosts_per_switch {
                let host = t.add_node(NodeKind::Host);
                t.connect(host, s, rate_bps, prop_ns);
            }
        }
        t.compute_routes();
        t
    }

    /// Whether a node is a single-port host — a leaf nothing can route
    /// through, so its reachability changes never cascade. Restore
    /// surgery patches such nodes in place instead of rebuilding whole
    /// destination columns.
    fn is_leaf_host(&self, n: NodeId) -> bool {
        self.kinds[n.0 as usize] == NodeKind::Host && self.ports[n.0 as usize].len() == 1
    }

    /// Switches with no directly attached hosts — the "core layer" in a
    /// hierarchical fabric (fat-tree core, leaf-spine spines). Fault
    /// scenarios use this to aim failures at pure transit switches,
    /// whose loss degrades capacity without isolating any host.
    pub fn core_switches(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId)
            .filter(|&n| {
                self.kind(n) == NodeKind::Switch
                    && self.ports[n.0 as usize]
                        .iter()
                        .all(|p| self.kind(p.peer) == NodeKind::Switch)
            })
            .collect()
    }
}

/// Insert a port into an advertised-port list, keeping the ascending
/// order `compute_dest_routes` records (so surgery stays bit-identical
/// to a full recomputation); no-op if already present.
fn insert_port(list: &mut Vec<u16>, p: u16) {
    if let Err(pos) = list.binary_search(&p) {
        list.insert(pos, p);
    }
}

/// A simple connected random regular graph via seeded stub matching:
/// shuffle every switch's stubs, pair them up, and retry the whole
/// shuffle (with a deterministically perturbed seed) on self-loops,
/// duplicate edges, or a disconnected result.
fn random_regular_edges(n: usize, d: usize, seed: u64) -> Vec<(usize, usize)> {
    'attempt: for attempt in 0..10_000u64 {
        let mut rng = Pcg32::new(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut stubs: Vec<usize> = (0..n).flat_map(|i| (0..d).map(move |_| i)).collect();
        rng.shuffle(&mut stubs);
        let mut seen = std::collections::BTreeSet::new();
        let mut edges = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || !seen.insert((a.min(b), a.max(b))) {
                continue 'attempt;
            }
            edges.push((a.min(b), a.max(b)));
        }
        // Connectivity check over the switch graph.
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        if count == n {
            return edges;
        }
    }
    panic!("could not build a connected {d}-regular graph on {n} switches");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts() {
        // k=4: 16 hosts, 4 pods × (2+2) switches + 4 cores = 20 switches.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 8 + 8 + 4);
        // k=10: the paper's 250-server fabric.
        let t10 = Topology::fat_tree(10, 1_000_000_000, 10_000);
        assert_eq!(t10.hosts().len(), 250);
        assert_eq!(t10.node_count(), 250 + 50 + 50 + 25);
    }

    #[test]
    fn fat_tree_symmetric_ports() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        for n in 0..t.node_count() as u32 {
            for (i, p) in t.node_ports(NodeId(n)).iter().enumerate() {
                let back = t.port(p.peer, p.peer_port);
                assert_eq!(back.peer, NodeId(n));
                assert_eq!(back.peer_port as usize, i);
            }
        }
    }

    #[test]
    fn hosts_have_one_port_switches_k() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        for &h in t.hosts() {
            assert_eq!(t.node_ports(h).len(), 1);
        }
        for n in 0..t.node_count() as u32 {
            if t.kind(NodeId(n)) == NodeKind::Switch {
                assert_eq!(t.node_ports(NodeId(n)).len(), 4, "switch degree");
            }
        }
    }

    #[test]
    fn path_hops_structure() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        // Same rack: 2 hops (host→edge→host).
        assert_eq!(t.path_hops(hosts[0], hosts[1]), 2);
        // Same pod, different rack: 4 hops.
        assert_eq!(t.path_hops(hosts[0], hosts[2]), 4);
        // Different pod: 6 hops.
        assert_eq!(t.path_hops(hosts[0], hosts[15]), 6);
    }

    #[test]
    fn multipath_counts() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        // At the source edge switch there are k/2 = 2 equal-cost uplinks.
        let edge = t.edge_switch(src);
        assert_eq!(t.next_ports(edge, dst).len(), 2);
        // At the host there is exactly one way out.
        assert_eq!(t.next_ports(src, dst).len(), 1);
    }

    #[test]
    fn same_rack_detection() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        assert!(t.same_rack(hosts[0], hosts[1]));
        assert!(!t.same_rack(hosts[0], hosts[2]));
    }

    #[test]
    fn base_rtt_sane() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        // Inter-pod: 6 hops × (12µs ser + 10µs prop) forward
        //          + 6 hops × (0.512µs + 10µs) back.
        let rtt = t.base_rtt_ns(hosts[0], hosts[15], 1500, 64);
        assert_eq!(rtt, 6 * (12_000 + 10_000) + 6 * (512 + 10_000));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        t.connect(a, a, 1, 1);
    }

    #[test]
    fn leaf_spine_structure_and_oversub() {
        // 4 leaves x 4 hosts, 2 spines, 2:1 oversubscription.
        let t = Topology::leaf_spine(4, 2, 4, 2.0, 1_000_000_000, 10_000);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 4 + 2);
        // Uplink rate = 4 x 1G / (2 spines x 2.0) = 1 Gbps... per uplink.
        let leaf = t.edge_switch(t.hosts()[0]);
        let uplink = t
            .node_ports(leaf)
            .iter()
            .find(|p| t.kind(p.peer) == NodeKind::Switch)
            .unwrap();
        assert_eq!(uplink.rate_bps, 1_000_000_000);
        // Inter-leaf paths go host-leaf-spine-leaf-host = 4 hops with 2
        // equal-cost spine choices at the leaf.
        let (a, b) = (t.hosts()[0], t.hosts()[15]);
        assert_eq!(t.path_hops(a, b), 4);
        assert_eq!(t.next_ports(t.edge_switch(a), b).len(), 2);
        // Spines are the core layer.
        assert_eq!(t.core_switches().len(), 2);
    }

    #[test]
    fn base_rtt_walks_heterogeneous_links() {
        // 4:1 oversubscribed uplinks: 4 hosts x 1G / (1 spine x 4.0) =
        // 1 Gbps... use 2 spines => 500 Mbps uplinks.
        let t = Topology::leaf_spine(2, 2, 4, 4.0, 1_000_000_000, 10_000);
        let (a, b) = (t.hosts()[0], t.hosts()[7]);
        // Forward 1500 B: host->leaf at 1G (12 us), leaf->spine and
        // spine->leaf at 500 M (24 us each), leaf->host at 1G (12 us),
        // plus 10 us propagation per hop.
        let fwd = (12_000 + 24_000 + 24_000 + 12_000) + 4 * 10_000;
        // Return 64 B: 512 ns at 1G, 1024 ns at 500 M.
        let back = (512 + 1_024 + 1_024 + 512) + 4 * 10_000;
        assert_eq!(t.base_rtt_ns(a, b, 1500, 64), fwd + back);
    }

    #[test]
    fn jellyfish_regular_connected_deterministic() {
        let t = Topology::jellyfish(8, 3, 2, 1_000_000_000, 10_000, 7);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 8);
        for n in 0..8u32 {
            assert_eq!(t.kind(NodeId(n)), NodeKind::Switch);
            assert_eq!(t.node_ports(NodeId(n)).len(), 3 + 2, "switch degree");
        }
        // All pairs reachable.
        for &a in t.hosts() {
            for &b in t.hosts() {
                if a != b {
                    assert!(t.path_hops(a, b) >= 2);
                }
            }
        }
        // Same seed => identical wiring; different seed => different.
        let t2 = Topology::jellyfish(8, 3, 2, 1_000_000_000, 10_000, 7);
        let t3 = Topology::jellyfish(8, 3, 2, 1_000_000_000, 10_000, 8);
        let wiring = |t: &Topology| -> Vec<Vec<u32>> {
            (0..t.node_count() as u32)
                .map(|n| t.node_ports(NodeId(n)).iter().map(|p| p.peer.0).collect())
                .collect()
        };
        assert_eq!(wiring(&t), wiring(&t2));
        assert_ne!(wiring(&t), wiring(&t3));
    }

    #[test]
    fn non_minimal_adds_loop_free_detours() {
        let mut t = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        let minimal: usize = count_advertised(&t);
        t.set_route_set(RouteSet::NonMinimal);
        t.compute_routes();
        let non_minimal: usize = count_advertised(&t);
        assert!(
            non_minimal > minimal,
            "sideways detours must widen the path set ({minimal} -> {non_minimal})"
        );
        // Any walk over advertised ports still terminates (potential
        // argument: (dist, id) strictly decreases).
        let hosts = t.hosts().to_vec();
        let mut rng = Pcg32::new(99);
        for _ in 0..200 {
            let a = hosts[rng.below(hosts.len() as u64) as usize];
            let b = hosts[rng.below(hosts.len() as u64) as usize];
            if a == b {
                continue;
            }
            let mut at = a;
            let mut steps = 0;
            while at != b {
                let choices = t.next_ports(at, b);
                at = t
                    .port(at, choices[rng.below(choices.len() as u64) as usize])
                    .peer;
                steps += 1;
                assert!(steps <= t.node_count(), "walk exceeded node count");
            }
        }
        // next_ports[0] still walks a minimal path.
        let (a, b) = (hosts[0], hosts[7]);
        let minimal_t = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        assert_eq!(t.path_hops(a, b), minimal_t.path_hops(a, b));
    }

    fn count_advertised(t: &Topology) -> usize {
        let mut total = 0;
        for n in 0..t.node_count() as u32 {
            for &h in t.hosts() {
                if NodeId(n) != h {
                    total += t.try_next_ports(NodeId(n), h).len();
                }
            }
        }
        total
    }

    #[test]
    fn masked_recompute_routes_around_core_failure() {
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = t.core_switches()[0];
        let mut mask = FaultMask::new();
        mask.fail_node(core);
        t.compute_routes_masked(&mask);
        let hosts = t.hosts().to_vec();
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                // Every pair still routable, never through the dead core.
                let mut at = a;
                let mut steps = 0;
                while at != b {
                    let p = t.next_ports(at, b)[0];
                    at = t.port(at, p).peer;
                    assert_ne!(at, core, "path crosses the failed core");
                    steps += 1;
                    assert!(steps <= 6);
                }
            }
        }
        // Restoring the mask restores the full path set.
        t.compute_routes();
        let edge = t.edge_switch(hosts[0]);
        assert_eq!(t.next_ports(edge, hosts[15]).len(), 2);
    }

    /// Full snapshot of the advertised route tables, for equivalence
    /// checks between incremental repair and full recomputation.
    fn route_tables(t: &Topology) -> Vec<Vec<Vec<u16>>> {
        (0..t.node_count() as u32)
            .map(|n| {
                t.hosts()
                    .iter()
                    .map(|&h| t.try_next_ports(NodeId(n), h).to_vec())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn repair_single_link_matches_full_and_rebuilds_few() {
        // Fail one agg–core link on a k=4 fat-tree: only the core's
        // single path into the agg's pod empties, so just that pod's
        // hosts (4 of 16) need a BFS rebuild. The true core layer is the
        // last-added (k/2)² nodes (`core_switches()` includes aggs).
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = NodeId(pristine.node_count() as u32 - 1);
        let mut mask = FaultMask::new();
        mask.fail_link(&pristine, core, 0);

        let mut full = pristine.clone();
        full.compute_routes_masked(&mask);
        let mut repaired = pristine.clone();
        let outcome = repaired.repair_routes(&mask);
        assert!(!outcome.full, "single link failure must repair in place");
        assert!(
            outcome.dests_rebuilt <= 4,
            "at most one pod's hosts rebuilt (got {})",
            outcome.dests_rebuilt
        );
        assert!(outcome.dests_touched > 0, "surgery must remove dead ports");
        assert_eq!(
            route_tables(&full),
            route_tables(&repaired),
            "repair must be exact"
        );
    }

    #[test]
    fn repair_core_switch_is_pure_surgery() {
        // Killing a whole core-layer switch changes no distances on a
        // fat-tree (every agg keeps an equal-cost sibling core), so the
        // repair is pure port-list surgery: zero BFS rebuilds. Note
        // `core_switches()` also returns aggs (any host-free switch);
        // the true core layer is the last-added (k/2)² nodes.
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = NodeId(pristine.node_count() as u32 - 1);
        let mut mask = FaultMask::new();
        mask.fail_node(core);
        let mut full = pristine.clone();
        full.compute_routes_masked(&mask);
        let mut repaired = pristine.clone();
        let outcome = repaired.repair_routes(&mask);
        assert!(!outcome.full);
        assert_eq!(outcome.dests_rebuilt, 0, "no distance changed");
        assert_eq!(route_tables(&full), route_tables(&repaired));
    }

    #[test]
    fn repair_sequential_faults_track_full_recompute() {
        // Grow the mask one failure at a time; each repair must leave the
        // tables identical to a from-scratch recomputation of the
        // accumulated mask.
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let cores = pristine.core_switches();
        let mut mask = FaultMask::new();
        let mut repaired = pristine.clone();
        for (step, &victim) in cores.iter().take(2).enumerate() {
            mask.fail_node(victim);
            repaired.repair_routes(&mask);
            let mut full = pristine.clone();
            full.compute_routes_masked(&mask);
            assert_eq!(
                route_tables(&full),
                route_tables(&repaired),
                "divergence after step {step}"
            );
        }
    }

    #[test]
    fn repair_restores_incrementally_and_non_minimal_falls_back() {
        // The true core layer is the last-added (k/2)² nodes
        // (`core_switches()` also returns aggs).
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = NodeId(t.node_count() as u32 - 1);
        let mut mask = FaultMask::new();
        mask.fail_node(core);
        assert!(!t.repair_routes(&mask).full);
        // Restoring the core re-adds equal-cost capacity without
        // changing any distance on a fat-tree: pure restore surgery.
        mask.restore_node(core);
        let outcome = t.repair_routes(&mask);
        assert!(!outcome.full, "restoration must repair incrementally");
        assert_eq!(outcome.restored, 1);
        assert_eq!(outcome.dests_rebuilt, 0, "no distance shrank");
        let healthy = Topology::fat_tree(4, 1_000_000_000, 10_000);
        assert_eq!(route_tables(&t), route_tables(&healthy));
        // An aggregation switch's death cuts its group's cores off from
        // the pod; the restoration must rebuild exactly that pod's
        // columns (where distances genuinely changed) and still match.
        let mut t2 = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let agg = t2.core_switches()[0]; // host-free ⇒ agg or core; [0] is an agg
        let mut m2 = FaultMask::new();
        m2.fail_node(agg);
        t2.repair_routes(&m2);
        m2.restore_node(agg);
        let o2 = t2.repair_routes(&m2);
        assert!(!o2.full, "agg restoration must repair incrementally");
        assert_eq!(o2.dests_rebuilt, 4, "one pod's host columns rebuilt");
        assert_eq!(route_tables(&t2), route_tables(&healthy));
        // Non-minimal path sets depend on exact distances: full fallback.
        let mut nm = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        nm.set_route_set(RouteSet::NonMinimal);
        nm.compute_routes();
        let mut m2 = FaultMask::new();
        m2.fail_link(&nm, NodeId(0), 0);
        assert!(nm.repair_routes(&m2).full);
    }

    #[test]
    fn restore_repair_link_and_host_cases() {
        // A host link flaps down and up: the restoration rebuilds only
        // the cut host's own column (its distance was genuinely cut to
        // MAX) and re-advertises the link everywhere else in place.
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let victim = pristine.hosts()[0];
        let mut t = pristine.clone();
        let mut mask = FaultMask::new();
        mask.fail_link(&t, victim, 0);
        assert!(!t.repair_routes(&mask).full);
        mask.restore_link(&t, victim, 0);
        let outcome = t.repair_routes(&mask);
        assert!(!outcome.full, "link restoration must repair in place");
        assert_eq!(outcome.restored, 1);
        assert_eq!(
            outcome.dests_rebuilt, 1,
            "only the cut host's column is rebuilt"
        );
        assert_eq!(route_tables(&t), route_tables(&pristine));

        // A whole host (node) dies and revives: same exactness.
        let mut t2 = pristine.clone();
        let mut m2 = FaultMask::new();
        m2.fail_node(victim);
        assert!(!t2.repair_routes(&m2).full);
        m2.restore_node(victim);
        let o2 = t2.repair_routes(&m2);
        assert!(!o2.full, "host restoration must repair in place");
        assert_eq!(route_tables(&t2), route_tables(&pristine));
    }

    #[test]
    fn restore_repair_rebuilds_on_distance_shrink() {
        // A triangle a—b—c with hosts at a and c plus ballast hosts at b
        // (so two dirty columns stay under the mass-delta threshold).
        // Failing the a—c shortcut forces the long way; restoring it
        // must shrink distances back, which only a BFS rebuild can do.
        let mut t = Topology::new();
        let h0 = t.add_node(NodeKind::Host);
        let a = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Switch);
        let c = t.add_node(NodeKind::Switch);
        let h1 = t.add_node(NodeKind::Host);
        t.connect(h0, a, 1_000_000_000, 10_000);
        t.connect(a, b, 1_000_000_000, 10_000);
        t.connect(b, c, 1_000_000_000, 10_000);
        t.connect(a, c, 1_000_000_000, 10_000); // the shortcut
        t.connect(c, h1, 1_000_000_000, 10_000);
        for _ in 0..6 {
            let hb = t.add_node(NodeKind::Host);
            t.connect(hb, b, 1_000_000_000, 10_000);
        }
        t.compute_routes();
        let pristine = t.clone();
        assert_eq!(t.path_hops(h0, h1), 3, "shortcut path");
        let mut mask = FaultMask::new();
        // Port 2 on a is the a—c shortcut (ports: h0, b, c).
        mask.fail_link(&t, a, 2);
        t.repair_routes(&mask);
        assert_eq!(t.path_hops(h0, h1), 4, "detour through b");
        mask.restore_link(&t, a, 2);
        let outcome = t.repair_routes(&mask);
        assert!(!outcome.full);
        assert!(
            outcome.dests_rebuilt >= 1,
            "shrinking distances need a BFS rebuild"
        );
        assert_eq!(route_tables(&t), route_tables(&pristine));
        assert_eq!(t.path_hops(h0, h1), 3, "shortcut back in use");
    }

    #[test]
    fn repair_with_no_delta_is_a_noop() {
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let before = route_tables(&t);
        let outcome = t.repair_routes(&FaultMask::new());
        assert!(!outcome.full);
        assert_eq!(outcome.dests_rebuilt + outcome.dests_touched, 0);
        assert_eq!(route_tables(&t), before);
    }

    #[test]
    fn repair_host_link_rebuilds_only_that_host() {
        // A dying host uplink cuts exactly one destination; everyone
        // else's trees route around nothing (hosts are leaves).
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let victim = pristine.hosts()[0];
        let mut mask = FaultMask::new();
        mask.fail_link(&pristine, victim, 0);
        let mut full = pristine.clone();
        full.compute_routes_masked(&mask);
        let mut repaired = pristine.clone();
        let outcome = repaired.repair_routes(&mask);
        assert!(!outcome.full);
        assert_eq!(outcome.dests_rebuilt, 1, "only the cut host's tree");
        assert_eq!(route_tables(&full), route_tables(&repaired));
        assert!(repaired
            .try_next_ports(pristine.hosts()[1], victim)
            .is_empty());
    }

    #[test]
    fn masked_recompute_leaves_cut_hosts_unroutable() {
        let mut t = Topology::leaf_spine(2, 2, 2, 1.0, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let leaf = t.edge_switch(hosts[0]);
        let mut mask = FaultMask::new();
        mask.fail_node(leaf);
        t.compute_routes_masked(&mask);
        // Hosts behind the dead leaf are unreachable...
        assert!(t.try_next_ports(hosts[2], hosts[0]).is_empty());
        // ...but the other leaf's hosts still reach each other.
        assert!(!t.try_next_ports(hosts[2], hosts[3]).is_empty());
    }
}
