//! Network topology: nodes, links, and multipath routing tables.
//!
//! The topology is a general undirected graph of hosts and switches with
//! per-link rate and propagation delay. Routing tables are computed by
//! per-destination BFS and record **all** ports on shortest paths, which
//! gives the fabric its equal-cost multipath structure; the forwarding
//! policy (hash-based ECMP vs. per-packet spraying) picks among them at
//! run time.
//!
//! [`Topology::fat_tree`] builds the paper's evaluation fabric: a k-ary
//! fat-tree (k = 10 → 250 hosts) with uniform link speed and delay.

/// Index of a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (runs a transport agent, has exactly one port).
    Host,
    /// A switch (forwards packets, owns port queues).
    Switch,
}

/// One directed attachment point of a node.
#[derive(Debug, Clone, Copy)]
pub struct Port {
    /// The node on the other end of the link.
    pub peer: NodeId,
    /// Port index on the peer that points back at us.
    pub peer_port: u16,
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub prop_ns: u64,
}

/// An immutable network graph plus routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<Port>>,
    hosts: Vec<NodeId>,
    host_index: Vec<Option<u32>>, // NodeId -> index into `hosts`
    /// `routes[node][dst_host_index]` = ports of `node` on shortest paths
    /// towards that host. Empty until [`Topology::compute_routes`].
    routes: Vec<Vec<Vec<u16>>>,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self {
            kinds: Vec::new(),
            ports: Vec::new(),
            hosts: Vec::new(),
            host_index: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// Add a node of the given kind, returning its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.ports.push(Vec::new());
        self.host_index.push(None);
        if kind == NodeKind::Host {
            self.host_index[id.0 as usize] = Some(self.hosts.len() as u32);
            self.hosts.push(id);
        }
        id
    }

    /// Connect two nodes with a bidirectional link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate_bps: u64, prop_ns: u64) {
        assert_ne!(a, b, "self-links are not allowed");
        let pa = self.ports[a.0 as usize].len() as u16;
        let pb = self.ports[b.0 as usize].len() as u16;
        self.ports[a.0 as usize].push(Port {
            peer: b,
            peer_port: pb,
            rate_bps,
            prop_ns,
        });
        self.ports[b.0 as usize].push(Port {
            peer: a,
            peer_port: pa,
            rate_bps,
            prop_ns,
        });
    }

    /// Node kind accessor.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0 as usize]
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Dense index of a host (panics for switches).
    pub fn host_index(&self, n: NodeId) -> usize {
        self.host_index[n.0 as usize].expect("node is not a host") as usize
    }

    /// Ports of a node.
    pub fn node_ports(&self, n: NodeId) -> &[Port] {
        &self.ports[n.0 as usize]
    }

    /// A specific port.
    pub fn port(&self, n: NodeId, p: u16) -> &Port {
        &self.ports[n.0 as usize][p as usize]
    }

    /// Compute shortest-path multipath routing tables (must be called
    /// after the graph is final and before forwarding).
    pub fn compute_routes(&mut self) {
        let n = self.node_count();
        self.routes = vec![vec![Vec::new(); self.hosts.len()]; n];
        let mut dist = vec![u32::MAX; n];
        let mut frontier: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for (h_idx, &host) in self.hosts.clone().iter().enumerate() {
            // BFS from the destination host outward.
            dist.fill(u32::MAX);
            frontier.clear();
            dist[host.0 as usize] = 0;
            frontier.push_back(host.0);
            while let Some(u) = frontier.pop_front() {
                let du = dist[u as usize];
                for port in &self.ports[u as usize] {
                    let v = port.peer.0;
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = du + 1;
                        frontier.push_back(v);
                    }
                }
            }
            // Record, for every node, the ports that step closer to host.
            for u in 0..n as u32 {
                if dist[u as usize] == u32::MAX || u == host.0 {
                    continue;
                }
                let next: Vec<u16> = self.ports[u as usize]
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| dist[p.peer.0 as usize] + 1 == dist[u as usize])
                    .map(|(i, _)| i as u16)
                    .collect();
                self.routes[u as usize][h_idx] = next;
            }
        }
    }

    /// Ports of `node` on shortest paths to `dst` (a host).
    ///
    /// # Panics
    /// Panics if routes were not computed or `dst` is unreachable —
    /// both are configuration bugs, not runtime conditions.
    pub fn next_ports(&self, node: NodeId, dst: NodeId) -> &[u16] {
        let h = self.host_index(dst);
        let next = &self.routes[node.0 as usize][h];
        assert!(
            !next.is_empty(),
            "no route from node {} to host {} (routes computed?)",
            node.0,
            dst.0
        );
        next
    }

    /// Hop count of the shortest path between two hosts.
    pub fn path_hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        let mut hops = 0;
        let mut at = a;
        loop {
            let p = self.next_ports(at, b)[0];
            at = self.port(at, p).peer;
            hops += 1;
            if at == b {
                return hops;
            }
            assert!(hops < 64, "path longer than 64 hops; routing loop?");
        }
    }

    /// Build a k-ary fat-tree (k even): k pods of (k/2 edge + k/2
    /// aggregation) switches, (k/2)² core switches, k²/4 hosts per pod
    /// wait — k/2 hosts per edge switch, so k³/4 hosts total. All links
    /// share `rate_bps`/`prop_ns` (the paper: 1 Gbps, 10 µs).
    // Index loops mirror the fat-tree's (pod, column) coordinate system;
    // iterator chains over the nested vecs obscure the symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn fat_tree(k: usize, rate_bps: u64, prop_ns: u64) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree requires even k >= 2"
        );
        let half = k / 2;
        let mut t = Topology::new();

        // Hosts and edge/agg switches, pod by pod.
        let mut edges = vec![vec![NodeId(0); half]; k];
        let mut aggs = vec![vec![NodeId(0); half]; k];
        for pod in 0..k {
            for e in 0..half {
                let edge = t.add_node(NodeKind::Switch);
                edges[pod][e] = edge;
                for _ in 0..half {
                    let host = t.add_node(NodeKind::Host);
                    t.connect(host, edge, rate_bps, prop_ns);
                }
            }
            for a in 0..half {
                aggs[pod][a] = t.add_node(NodeKind::Switch);
            }
            for e in 0..half {
                for a in 0..half {
                    t.connect(edges[pod][e], aggs[pod][a], rate_bps, prop_ns);
                }
            }
        }
        // Core layer: group g serves aggregation index g of every pod.
        for g in 0..half {
            for c in 0..half {
                let core = t.add_node(NodeKind::Switch);
                let _ = c;
                for pod in 0..k {
                    t.connect(aggs[pod][g], core, rate_bps, prop_ns);
                }
            }
        }
        t.compute_routes();
        t
    }

    /// The edge switch a host hangs off (host's single uplink peer).
    pub fn edge_switch(&self, host: NodeId) -> NodeId {
        assert_eq!(self.kind(host), NodeKind::Host);
        self.ports[host.0 as usize][0].peer
    }

    /// Whether two hosts share an edge switch ("same rack"); used for
    /// the paper's replica placement rule (replicas outside the client's
    /// rack).
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_switch(a) == self.edge_switch(b)
    }

    /// Base round-trip time between two hosts for a given packet size:
    /// per hop, store-and-forward serialization plus propagation, both
    /// ways, with a header-size packet on the return. A convenience for
    /// transports sizing their initial window to one BDP.
    pub fn base_rtt_ns(&self, a: NodeId, b: NodeId, data_bytes: u32, ctrl_bytes: u32) -> u64 {
        let hops = self.path_hops(a, b) as u64;
        // Uniform fabric assumption (true for fat_tree): use port 0 specs.
        let p = &self.ports[a.0 as usize][0];
        let fwd = hops * (crate::time::serialization_ns(data_bytes, p.rate_bps) + p.prop_ns);
        let back = hops * (crate::time::serialization_ns(ctrl_bytes, p.rate_bps) + p.prop_ns);
        fwd + back
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts() {
        // k=4: 16 hosts, 4 pods × (2+2) switches + 4 cores = 20 switches.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 8 + 8 + 4);
        // k=10: the paper's 250-server fabric.
        let t10 = Topology::fat_tree(10, 1_000_000_000, 10_000);
        assert_eq!(t10.hosts().len(), 250);
        assert_eq!(t10.node_count(), 250 + 50 + 50 + 25);
    }

    #[test]
    fn fat_tree_symmetric_ports() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        for n in 0..t.node_count() as u32 {
            for (i, p) in t.node_ports(NodeId(n)).iter().enumerate() {
                let back = t.port(p.peer, p.peer_port);
                assert_eq!(back.peer, NodeId(n));
                assert_eq!(back.peer_port as usize, i);
            }
        }
    }

    #[test]
    fn hosts_have_one_port_switches_k() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        for &h in t.hosts() {
            assert_eq!(t.node_ports(h).len(), 1);
        }
        for n in 0..t.node_count() as u32 {
            if t.kind(NodeId(n)) == NodeKind::Switch {
                assert_eq!(t.node_ports(NodeId(n)).len(), 4, "switch degree");
            }
        }
    }

    #[test]
    fn path_hops_structure() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        // Same rack: 2 hops (host→edge→host).
        assert_eq!(t.path_hops(hosts[0], hosts[1]), 2);
        // Same pod, different rack: 4 hops.
        assert_eq!(t.path_hops(hosts[0], hosts[2]), 4);
        // Different pod: 6 hops.
        assert_eq!(t.path_hops(hosts[0], hosts[15]), 6);
    }

    #[test]
    fn multipath_counts() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        // At the source edge switch there are k/2 = 2 equal-cost uplinks.
        let edge = t.edge_switch(src);
        assert_eq!(t.next_ports(edge, dst).len(), 2);
        // At the host there is exactly one way out.
        assert_eq!(t.next_ports(src, dst).len(), 1);
    }

    #[test]
    fn same_rack_detection() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        assert!(t.same_rack(hosts[0], hosts[1]));
        assert!(!t.same_rack(hosts[0], hosts[2]));
    }

    #[test]
    fn base_rtt_sane() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        // Inter-pod: 6 hops × (12µs ser + 10µs prop) forward
        //          + 6 hops × (0.512µs + 10µs) back.
        let rtt = t.base_rtt_ns(hosts[0], hosts[15], 1500, 64);
        assert_eq!(rtt, 6 * (12_000 + 10_000) + 6 * (512 + 10_000));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        t.connect(a, a, 1, 1);
    }
}
