//! Network topology: nodes, links, and layered multipath routing tables.
//!
//! The topology is a general undirected graph of hosts and switches with
//! per-link rate and propagation delay. Routing is organised as
//! FatPaths-style **path-diversity layers** (see [`RoutingPolicy`]):
//! layer 0 always carries the classic shortest-path/ECMP routes, and
//! each additional layer draws a seeded random "preferred" half of the
//! inter-switch links and routes on weighted shortest paths where a
//! non-preferred link costs 2 hops. That steers every layer onto a
//! near-disjoint link subset — the path diversity low-diameter random
//! graphs (Jellyfish) structurally lack at minimal length — while
//! keeping each layer loop-free (the weighted distance is a strictly
//! decreasing potential) and bounding stretch at 2× the minimal hop
//! count. Every layer has its own per-(node, destination) route table
//! and distance table; the forwarding policy picks a layer per flow
//! and then a port within the layer at run time.
//!
//! Routing is **re-runnable**: [`Topology::compute_routes_masked`]
//! recomputes every layer against a live [`FaultMask`], and
//! [`Topology::repair_routes`] heals each layer *incrementally* after a
//! fault-mask delta — failures by dead-entry surgery, restorations by
//! bounded restore surgery — which is how the simulator reroutes around
//! mid-run link and switch failures without paying a full recompute.
//!
//! # Memory layout: CSR arenas
//!
//! Both the graph and the routing tables live in contiguous CSR-style
//! arenas instead of nested `Vec`s, so a forwarding decision is flat
//! arithmetic into three big arrays rather than three dependent pointer
//! hops, and repair surgery is `memmove`s inside fixed-capacity cells:
//!
//! - **Adjacency**: one flat `ports: Vec<Port>` plus a prefix-offset
//!   table `port_off: Vec<u32>` (length `nodes + 1`); node `n`'s ports
//!   are `ports[port_off[n] .. port_off[n+1]]` and `port_off[n] + p` is
//!   the *global port id* of `(n, p)`. The graph is built through an
//!   edge log and frozen into the arena by the first route computation.
//! - **Routes** (per layer): one flat `buf: Vec<u16>` holding a
//!   fixed-capacity cell per `(node, destination)` — capacity
//!   `deg(node)`, at arena offset `h·P + port_off[n]` for `P` total
//!   directed ports — plus a `len: Vec<u16>` table (`len[h·N + n]`)
//!   giving the occupied prefix. The advertised ports are that prefix,
//!   always in ascending port order. Because a cell can never overflow
//!   (a node advertises at most `deg(n)` distinct ports), failure
//!   excision and restore surgery shift entries *in place* and never
//!   reallocate. The arenas are column-major — destination column `h`
//!   owns contiguous `buf[h·P..]`/`len[h·N..]` regions — so route
//!   (re)computation can hand disjoint columns to parallel workers as
//!   a plain `chunks_mut` partition (see [`crate::par`]).
//! - **Distances / weights** (per layer): flat `dist[h·N + n]` and a
//!   per-layer weight arena indexed by global port id.
//!
//! Three generators are provided: [`Topology::fat_tree`] (the paper's
//! evaluation fabric, k = 10 → 250 hosts), [`Topology::leaf_spine`]
//! (two-tier, optionally oversubscribed uplinks), and
//! [`Topology::jellyfish`] (seeded random regular graph of switches, as
//! in Singla et al.'s Jellyfish).

use crate::fault::FaultMask;
use crate::rng::Pcg32;

/// Index of a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (runs a transport agent, has exactly one port).
    Host,
    /// A switch (forwards packets, owns port queues).
    Switch,
}

/// One directed attachment point of a node.
#[derive(Debug, Clone, Copy)]
pub struct Port {
    /// The node on the other end of the link.
    pub peer: NodeId,
    /// Port index on the peer that points back at us.
    pub peer_port: u16,
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay in nanoseconds.
    pub prop_ns: u64,
}

/// One undirected link in the construction-time edge log; frozen into
/// the flat [`Port`] arena by [`Topology::freeze_ports`].
#[derive(Debug, Clone, Copy)]
struct EdgeRec {
    a: u32,
    b: u32,
    rate_bps: u64,
    prop_ns: u64,
}

/// The layered path-diversity policy [`Topology::compute_routes`]
/// builds routes for — the FatPaths idea as a first-class, repairable
/// data structure instead of a boolean.
///
/// Layer 0 is always the classic minimal (shortest-path/ECMP) route
/// set. Each layer `ℓ ≥ 1` draws a seeded random half of the
/// inter-switch links as *preferred* and routes on weighted shortest
/// paths where a non-preferred link costs 2: paths stay on the
/// preferred subset when they can and detour through non-preferred
/// links only when they must, so different layers expose near-disjoint
/// paths. Because every weight is in `{1, 2}`, a layer's weighted
/// distance is at most twice the minimal hop count, and any walk over a
/// layer's advertised ports takes at most `2 × minimal hops` — the
/// FatPaths length bound, with loop freedom from the strictly
/// decreasing weighted-distance potential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingPolicy {
    /// Number of layers (`1..=MAX_LAYERS`); 1 = plain minimal routing.
    pub layers: usize,
    /// Seed for the per-layer preferred-link draws (layer 0 ignores it).
    pub seed: u64,
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        Self::minimal()
    }
}

impl RoutingPolicy {
    /// Hard cap on the layer count (per-layer fabric counters are
    /// fixed-size arrays of this length).
    pub const MAX_LAYERS: usize = 8;

    /// Single-layer minimal routing (classic ECMP/BFS multipath).
    pub fn minimal() -> Self {
        Self { layers: 1, seed: 0 }
    }

    /// A layered policy: layer 0 minimal plus `layers - 1` seeded
    /// random-preference layers.
    pub fn layered(layers: usize, seed: u64) -> Self {
        assert!(
            (1..=Self::MAX_LAYERS).contains(&layers),
            "layer count must be in 1..={}",
            Self::MAX_LAYERS
        );
        Self { layers, seed }
    }

    /// The two-layer policy that replaces the old `RouteSet::NonMinimal`
    /// loop-free-detour path set: one minimal layer plus one seeded
    /// non-minimal layer.
    pub fn non_minimal() -> Self {
        Self::layered(2, 0)
    }
}

/// One layer's routing state as flat arenas: advertised-port cells and
/// weighted distances, per (node, destination-host), maintained in
/// lockstep by full recomputation and incremental repair alike.
///
/// The arenas are **column-major**: destination column `h` owns the
/// contiguous regions `buf[h·P .. (h+1)·P]`, `len[h·N .. (h+1)·N]`, and
/// `dist[h·N .. (h+1)·N]` (`P` = total directed port count, `N` = node
/// count). The route cell for `(node u, dst h)` occupies
/// `buf[h·P + port_off[u] ..][..deg(u)]`; its occupied prefix length is
/// `len[h·N + u]` and the prefix is always in ascending port order (the
/// order full recomputation records), so in-place surgery stays
/// bit-identical to a from-scratch build. Column-major is what lets the
/// parallel (re)compute paths hand each destination column to a worker
/// as a safe `chunks_mut` slice partition — no two columns share bytes.
#[derive(Debug, Clone, Default)]
struct LayerTables {
    /// Node count `N` (row stride of `len` and `dist`).
    n_nodes: usize,
    /// Host count `H` (column count of all three arenas).
    n_hosts: usize,
    /// Total directed port count `P` (column stride of `buf`).
    n_ports: usize,
    /// Route arena: fixed-capacity advertised-port cells (see above).
    buf: Vec<u16>,
    /// `len[h·N + node]` = occupied prefix of that route cell.
    len: Vec<u16>,
    /// `dist[h·N + node]` = weighted distance from `node` to that host
    /// under the mask the routes were computed with (`u32::MAX` =
    /// unreachable). Restore repair uses it to decide in O(degree) per
    /// destination whether a restored element can shorten any path.
    dist: Vec<u32>,
}

impl LayerTables {
    /// Arena offset and capacity of the route cell for `(u, h_idx)`.
    #[inline]
    fn cell(&self, off: &[u32], u: usize, h_idx: usize) -> (usize, usize) {
        let base = off[u] as usize;
        let deg = off[u + 1] as usize - base;
        (h_idx * self.n_ports + base, deg)
    }

    /// The advertised ports of `(u, h_idx)`: the cell's occupied prefix.
    #[inline]
    fn advertised(&self, off: &[u32], u: usize, h_idx: usize) -> &[u16] {
        let (start, _) = self.cell(off, u, h_idx);
        let l = self.len[h_idx * self.n_nodes + u] as usize;
        &self.buf[start..start + l]
    }

    /// Weighted distance from `u` to destination `h_idx`.
    #[inline]
    fn dist_to(&self, u: usize, h_idx: usize) -> u32 {
        self.dist[h_idx * self.n_nodes + u]
    }

    #[inline]
    fn set_dist(&mut self, u: usize, h_idx: usize, d: u32) {
        self.dist[h_idx * self.n_nodes + u] = d;
    }

    /// Insert `p` into the cell keeping ascending order (no-op when
    /// already advertised). A cell holds distinct port indices of a
    /// `deg`-port node at capacity `deg`, so the shift always fits.
    fn insert_port(&mut self, off: &[u32], u: usize, h_idx: usize, p: u16) {
        let (start, deg) = self.cell(off, u, h_idx);
        let li = h_idx * self.n_nodes + u;
        let l = self.len[li] as usize;
        if let Err(pos) = self.buf[start..start + l].binary_search(&p) {
            debug_assert!(l < deg, "route cell overflow");
            self.buf
                .copy_within(start + pos..start + l, start + pos + 1);
            self.buf[start + pos] = p;
            self.len[li] = (l + 1) as u16;
        }
    }

    /// Make `p` the cell's only advertised port.
    #[inline]
    fn set_single(&mut self, off: &[u32], u: usize, h_idx: usize, p: u16) {
        let (start, _) = self.cell(off, u, h_idx);
        self.buf[start] = p;
        self.len[h_idx * self.n_nodes + u] = 1;
    }

    /// Empty the cell.
    #[inline]
    fn clear_cell(&mut self, u: usize, h_idx: usize) {
        self.len[h_idx * self.n_nodes + u] = 0;
    }
}

/// Outcome of an incremental [`Topology::repair_routes`] call —
/// how much of the routing state had to be recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRepair {
    /// The repair fell back to a full [`Topology::compute_routes_masked`]
    /// (routes were never computed under the current policy).
    pub full: bool,
    /// (layer, destination) columns rebuilt by a per-destination
    /// search. Equals `hosts × layers` on a full fallback; usually a
    /// small fraction of it after a single link or switch failure.
    pub dests_rebuilt: usize,
    /// (layer, destination) route columns touched by dead-entry surgery
    /// alone (advertised ports removed without any distance change).
    pub dests_touched: usize,
    /// Restored elements (undirected links + nodes) in the delta. When
    /// `full` is false these were healed by bounded restore surgery —
    /// re-advertising equal-cost ports in place and BFS-rebuilding only
    /// destinations whose distance can shrink.
    pub restored: usize,
}

/// A network graph plus layered routing tables, both CSR-flattened
/// (see the module docs for the arena layout).
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    /// Construction-time edge log; the source of truth the flat port
    /// arena is (re-)frozen from.
    edges: Vec<EdgeRec>,
    /// Per-node degree, maintained by [`Topology::connect`].
    degree: Vec<u32>,
    /// Flat port arena: node `n`'s ports are
    /// `ports[port_off[n] .. port_off[n + 1]]`.
    ports: Vec<Port>,
    /// CSR prefix offsets into `ports` (`node_count + 1` entries).
    port_off: Vec<u32>,
    /// The edge log changed since the last freeze; port accessors are
    /// invalid until the next [`Topology::freeze_ports`].
    ports_stale: bool,
    hosts: Vec<NodeId>,
    host_index: Vec<Option<u32>>, // NodeId -> index into `hosts`
    /// One routing table set per layer (`layers[0]` = minimal routes).
    /// Empty until [`Topology::compute_routes`].
    layers: Vec<LayerTables>,
    /// Per-layer link-weight arena indexed by global port id
    /// (`port_off[n] + p`): 1 or 2; layer 0 and host links are always 1.
    /// Derived deterministically from the policy seed and link identity.
    weights: Vec<Vec<u8>>,
    policy: RoutingPolicy,
    /// The policy the current layer tables were computed under. When it
    /// differs from `policy` (e.g. [`Topology::set_policy`] changed the
    /// seed without a recompute), [`Topology::repair_routes`] must take
    /// the full fallback — surgery against stale weight tables would
    /// diverge from a fresh [`Topology::compute_routes_masked`].
    routes_policy: Option<RoutingPolicy>,
    /// The policy the cached `weights` arenas were built under (`None`
    /// = stale: the policy changed or the port arena was re-frozen).
    /// Weight tables depend only on (policy, frozen graph) — never the
    /// fault mask — so mid-run masked recomputes reuse them instead of
    /// re-deriving one seeded hash per inter-switch link per layer.
    weights_policy: Option<RoutingPolicy>,
    /// Diagnostic: how many times the per-layer weight arenas were
    /// (re)built — see [`Topology::weight_builds`].
    weight_builds: u64,
    /// Route-computation worker threads (see
    /// [`Topology::set_parallelism`]): 1 = serial on the calling thread
    /// (the default, and the exact pre-parallel code path), 0 = one per
    /// available core. A pure throughput knob: tables are byte-identical
    /// at every setting.
    parallelism: usize,
    /// The fault mask the current layer tables were computed against —
    /// the baseline [`Topology::repair_routes`] diffs new masks against.
    routes_mask: FaultMask,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self {
            kinds: Vec::new(),
            edges: Vec::new(),
            degree: Vec::new(),
            ports: Vec::new(),
            port_off: vec![0],
            ports_stale: false,
            hosts: Vec::new(),
            host_index: Vec::new(),
            layers: Vec::new(),
            weights: Vec::new(),
            policy: RoutingPolicy::minimal(),
            routes_policy: None,
            weights_policy: None,
            weight_builds: 0,
            parallelism: 1,
            routes_mask: FaultMask::new(),
        }
    }

    /// Set the number of worker threads route (re)computation may use:
    /// `1` (the default) runs the serial loop on the calling thread —
    /// the exact pre-parallel code path; `0` resolves to the number of
    /// available cores; any other value caps the scoped worker pool
    /// (see [`crate::par`]). Every destination column is a pure,
    /// disjoint unit of work, so tables are byte-identical at every
    /// setting — this is a throughput knob, never a behaviour knob.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism;
    }

    /// The current route-computation parallelism knob (see
    /// [`Topology::set_parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Diagnostic counter: how many times the per-layer link-weight
    /// arenas were (re)built. Weight tables depend only on (policy,
    /// frozen graph) — never the fault mask — so mid-run masked
    /// recomputes and repairs must reuse the cached arenas; tests gate
    /// on this counter staying flat across fault events.
    pub fn weight_builds(&self) -> u64 {
        self.weight_builds
    }

    /// Select the layered routing policy. Takes effect at the next
    /// [`Topology::compute_routes`] / [`Topology::compute_routes_masked`]
    /// call; call one of them afterwards before forwarding.
    pub fn set_policy(&mut self, policy: RoutingPolicy) {
        assert!(
            (1..=RoutingPolicy::MAX_LAYERS).contains(&policy.layers),
            "layer count must be in 1..={}",
            RoutingPolicy::MAX_LAYERS
        );
        self.policy = policy;
    }

    /// The active layered routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Number of layers the current route tables carry (0 before the
    /// first [`Topology::compute_routes`]).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Add a node of the given kind, returning its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.degree.push(0);
        self.host_index.push(None);
        if kind == NodeKind::Host {
            self.host_index[id.0 as usize] = Some(self.hosts.len() as u32);
            self.hosts.push(id);
        }
        self.ports_stale = true;
        id
    }

    /// Connect two nodes with a bidirectional link. Port indices are
    /// assigned in call order (the a-side port first), exactly as the
    /// flat arena will record them at the next freeze.
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate_bps: u64, prop_ns: u64) {
        assert_ne!(a, b, "self-links are not allowed");
        self.edges.push(EdgeRec {
            a: a.0,
            b: b.0,
            rate_bps,
            prop_ns,
        });
        self.degree[a.0 as usize] += 1;
        self.degree[b.0 as usize] += 1;
        self.ports_stale = true;
    }

    /// Freeze the edge log into the flat CSR port arena. Idempotent;
    /// [`Topology::compute_routes_masked`] calls this, so generator
    /// users never need to. Port accessors are only valid between a
    /// freeze and the next graph edit.
    fn freeze_ports(&mut self) {
        if !self.ports_stale {
            return;
        }
        let n = self.kinds.len();
        self.port_off.clear();
        self.port_off.reserve(n + 1);
        let mut acc = 0u32;
        self.port_off.push(0);
        for &d in &self.degree {
            acc += d;
            self.port_off.push(acc);
        }
        // Every directed slot is written exactly once below; the filler
        // never survives the loop.
        self.ports.clear();
        self.ports.resize(
            acc as usize,
            Port {
                peer: NodeId(0),
                peer_port: 0,
                rate_bps: 0,
                prop_ns: 0,
            },
        );
        let mut cursor: Vec<u32> = self.port_off[..n].to_vec();
        for e in &self.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            let pa = (cursor[a] - self.port_off[a]) as u16;
            let pb = (cursor[b] - self.port_off[b]) as u16;
            self.ports[cursor[a] as usize] = Port {
                peer: NodeId(e.b),
                peer_port: pb,
                rate_bps: e.rate_bps,
                prop_ns: e.prop_ns,
            };
            self.ports[cursor[b] as usize] = Port {
                peer: NodeId(e.a),
                peer_port: pa,
                rate_bps: e.rate_bps,
                prop_ns: e.prop_ns,
            };
            cursor[a] += 1;
            cursor[b] += 1;
        }
        self.ports_stale = false;
        // A re-frozen arena may assign different global port ids;
        // cached weight tables are keyed by them and must be rebuilt.
        self.weights_policy = None;
    }

    /// Node kind accessor.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0 as usize]
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Dense index of a host (panics for switches).
    #[inline]
    pub fn host_index(&self, n: NodeId) -> usize {
        self.host_index[n.0 as usize].expect("node is not a host") as usize
    }

    /// Ports of a node.
    #[inline]
    pub fn node_ports(&self, n: NodeId) -> &[Port] {
        debug_assert!(
            !self.ports_stale,
            "graph edited since the last freeze; call compute_routes() first"
        );
        let i = n.0 as usize;
        &self.ports[self.port_off[i] as usize..self.port_off[i + 1] as usize]
    }

    /// A specific port.
    #[inline]
    pub fn port(&self, n: NodeId, p: u16) -> &Port {
        debug_assert!(
            !self.ports_stale,
            "graph edited since the last freeze; call compute_routes() first"
        );
        debug_assert!(
            (p as u32) < self.port_off[n.0 as usize + 1] - self.port_off[n.0 as usize],
            "port {} out of range for node {}",
            p,
            n.0
        );
        &self.ports[self.port_off[n.0 as usize] as usize + p as usize]
    }

    /// Compute every layer's routing tables on the healthy fabric (must
    /// be called after the graph is final and before forwarding).
    pub fn compute_routes(&mut self) {
        self.compute_routes_masked(&FaultMask::new());
    }

    /// Recompute every layer's routing tables, treating every link and
    /// node in `mask` as absent. Re-runnable at any time; the simulator
    /// calls this when executing fault events mid-run. Destinations that
    /// the mask disconnects simply end up with empty port lists (see
    /// [`Topology::try_next_ports`]).
    ///
    /// The layer arenas are resized in place, so every recompute after
    /// the first reuses the existing multi-megabyte allocations instead
    /// of cloning or reallocating nested tables. Columns are rebuilt by
    /// up to [`Topology::set_parallelism`] scoped workers — each owns a
    /// disjoint contiguous slice of the column-major arenas, so the
    /// result is byte-identical at every thread count.
    pub fn compute_routes_masked(&mut self, mask: &FaultMask) {
        self.freeze_ports();
        let n = self.node_count();
        let n_hosts = self.hosts.len();
        let p_total = self.ports.len();
        let n_layers = self.policy.layers;
        self.ensure_weights();
        self.layers.truncate(n_layers);
        self.layers.resize_with(n_layers, LayerTables::default);
        for tab in &mut self.layers {
            tab.n_nodes = n;
            tab.n_hosts = n_hosts;
            tab.n_ports = p_total;
            tab.buf.resize(p_total * n_hosts, 0);
            tab.len.resize(n * n_hosts, 0);
            tab.dist.resize(n_hosts * n, u32::MAX);
        }
        let mut jobs: Vec<ColumnJob> = Vec::with_capacity(n_layers * n_hosts);
        for (layer, tab) in self.layers.iter_mut().enumerate() {
            column_jobs(
                tab,
                &self.weights[layer],
                layer == 0,
                &self.hosts,
                None,
                &mut jobs,
            );
        }
        let (ports, port_off) = (&self.ports, &self.port_off);
        crate::par::scatter(
            crate::par::resolve(self.parallelism),
            jobs,
            ColumnScratch::default,
            |scratch, job| {
                compute_column(
                    ports,
                    port_off,
                    job.weights,
                    job.uniform,
                    mask,
                    job.host,
                    job.buf,
                    job.len,
                    job.dist,
                    scratch,
                );
            },
        );
        self.routes_policy = Some(self.policy);
        self.routes_mask = mask.clone();
    }

    /// Rebuild the per-layer link-weight arenas iff the cached ones are
    /// stale — the policy changed, or the port arena was re-frozen
    /// (which may reassign the global port ids the arenas are indexed
    /// by). The tables are a pure function of (policy, frozen graph),
    /// independent of the fault mask, so the common mid-run case —
    /// masked recompute or repair after a fault event — reuses them.
    fn ensure_weights(&mut self) {
        if self.weights_policy == Some(self.policy) {
            return;
        }
        self.weights = (0..self.policy.layers)
            .map(|l| self.layer_weight_table(l))
            .collect();
        self.weights_policy = Some(self.policy);
        self.weight_builds += 1;
    }

    /// One layer's link-weight arena (indexed by global port id): 1
    /// everywhere on layer 0 and on host access links; on layers ≥ 1
    /// each undirected inter-switch link draws weight 1 ("preferred") or
    /// 2 with equal probability from a seeded hash of (policy seed,
    /// layer, link identity) — same policy, same graph ⇒ identical
    /// layers, independent of fault history.
    fn layer_weight_table(&self, layer: usize) -> Vec<u8> {
        let mut w = vec![1u8; self.ports.len()];
        if layer == 0 {
            return w;
        }
        for n in 0..self.node_count() {
            if self.kinds[n] == NodeKind::Host {
                continue;
            }
            let base = self.port_off[n] as usize;
            let deg = self.port_off[n + 1] as usize - base;
            for pi in 0..deg {
                let p = self.ports[base + pi];
                if self.kinds[p.peer.0 as usize] == NodeKind::Host {
                    continue;
                }
                // Canonical direction only; mirror to both.
                if (n as u32, pi as u16) > (p.peer.0, p.peer_port) {
                    continue;
                }
                let link_id = ((n as u64) << 16) | pi as u64;
                let mut rng = Pcg32::new(
                    self.policy.seed
                        ^ (layer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ link_id.wrapping_mul(0xD1B5_4A32_D192_ED03),
                );
                let weight = if rng.below(2) == 0 { 1 } else { 2 };
                w[base + pi] = weight;
                w[self.port_off[p.peer.0 as usize] as usize + p.peer_port as usize] = weight;
            }
        }
        w
    }

    /// A layer's weight for the directed link `(node, port)` (1 or 2).
    /// Exposed so tests and benches can rebuild reference route tables
    /// independently of the arena implementation.
    ///
    /// # Panics
    /// Panics if routes were not computed (the weight arenas are built
    /// by [`Topology::compute_routes_masked`]).
    pub fn layer_link_weight(&self, layer: usize, node: NodeId, port: u16) -> u8 {
        self.weights[layer][self.port_off[node.0 as usize] as usize + port as usize]
    }

    /// Incrementally repair every layer's routing tables after the
    /// fault mask changed — the fast path for the common case of one
    /// (or a few) new link or switch failures or restorations.
    ///
    /// **Failures.** The repair diffs `mask` against the mask the tables
    /// were last computed with and excises the newly dead directed
    /// `(node, port)` entries from every layer cell they are advertised
    /// in — an in-place shift within the fixed-capacity cell, swept
    /// contiguously across the node's arena region. Removing an
    /// advertised port can only change shortest-path *distances* when it
    /// was the node's last advertised port in that layer (any surviving
    /// advertised port still reaches a neighbour strictly closer under
    /// the layer's weights, so every distance is preserved by
    /// induction); only those (layer, destination) columns are rebuilt
    /// by a per-destination search. Hosts are leaves that nothing routes
    /// through, so emptying a host's own cell never invalidates the
    /// tree.
    ///
    /// **Restorations.** A restored element can only *shrink* distances.
    /// Using each layer's retained distance table the repair decides per
    /// (layer, destination) in O(degree) whether the restored link/node
    /// lies on a strictly shorter weighted path: if not, the restoration
    /// is pure surgery — the restored ports are re-advertised exactly
    /// where they are equal-cost next hops — and only columns whose
    /// distance can actually shrink (including previously cut-off ones)
    /// are rebuilt.
    ///
    /// Falls back to a full [`Topology::compute_routes_masked`] — and
    /// says so in the returned [`RouteRepair`] — only when routes were
    /// never computed under the current policy. The old non-minimal and
    /// mass-delta fallbacks are gone: every layer repairs incrementally,
    /// and a mass delta simply rebuilds its (large) dirty column set —
    /// never more work than the full recompute it used to trigger, since
    /// the full path visits every column anyway.
    ///
    /// The result is always identical to a full recomputation against
    /// `mask` (property-tested in `fabric_invariants`).
    pub fn repair_routes(&mut self, mask: &FaultMask) -> RouteRepair {
        let restored_links = mask.restored_links_since(&self.routes_mask);
        let restored_nodes = mask.restored_nodes_since(&self.routes_mask);
        // Directed restored entries come in symmetric pairs; count and
        // process each undirected link once.
        let restored_undirected: Vec<(u32, u16)> = restored_links
            .iter()
            .map(|&(n, p)| (n.0, p))
            .filter(|&(n, p)| {
                let back = self.port(NodeId(n), p);
                (n, p) <= (back.peer.0, back.peer_port)
            })
            .collect();
        let restored = restored_undirected.len() + restored_nodes.len();
        let n_layers = self.policy.layers;
        let full = RouteRepair {
            full: true,
            dests_rebuilt: self.hosts.len() * n_layers,
            dests_touched: self.hosts.len() * n_layers,
            restored,
        };
        if self.routes_policy != Some(self.policy) || self.weights_policy != Some(self.policy) {
            self.compute_routes_masked(mask);
            return full;
        }
        let new_links = mask.new_links_since(&self.routes_mask);
        let new_nodes = mask.new_nodes_since(&self.routes_mask);
        if new_links.is_empty() && new_nodes.is_empty() && restored == 0 {
            self.routes_mask = mask.clone();
            return RouteRepair {
                full: false,
                dests_rebuilt: 0,
                dests_touched: 0,
                restored: 0,
            };
        }
        // Every newly dead directed (node, port) hop: the failed links
        // (masks store both directions) plus each port of — and into —
        // a newly failed node.
        let mut dead: Vec<(u32, u16)> = new_links.iter().map(|&(n, p)| (n.0, p)).collect();
        for &w in &new_nodes {
            for (pi, p) in self.node_ports(w).iter().enumerate() {
                dead.push((w.0, pi as u16));
                dead.push((p.peer.0, p.peer_port));
            }
        }
        dead.sort_unstable();
        dead.dedup();
        // Surgery runs layer-major, dead-entry-major within a layer:
        // each dead (u, p) sweeps node u's route cells across all H
        // destination columns (one cell per column stride in the
        // column-major arena), shifting entries in place and flagging
        // per-destination outcomes in bitmaps that are aggregated
        // afterwards.
        let n_hosts = self.hosts.len();
        let mut dirty_cols: Vec<Vec<bool>> = Vec::with_capacity(n_layers);
        let mut touched_total = 0usize;
        for layer in 0..n_layers {
            let mut col_touched = vec![false; n_hosts];
            let mut col_dirty = vec![false; n_hosts];
            // A newly failed destination host needs its column cleared —
            // the rebuild handles that uniformly.
            for &w in &new_nodes {
                if let Some(h) = self.host_index[w.0 as usize] {
                    col_dirty[h as usize] = true;
                }
            }
            let tab = &mut self.layers[layer];
            let (nn, pt) = (tab.n_nodes, tab.n_ports);
            for &(u, p) in &dead {
                // A live switch that loses its last advertised port may
                // now be farther from (or cut off from) the destination,
                // which can cascade; those columns are rebuilt. Dead
                // nodes' distances are irrelevant (their cells are
                // cleared below), and hosts are leaves nothing routes
                // through.
                let alive = !mask.node_is_down(NodeId(u));
                let uu = u as usize;
                let empties_matter = self.kinds[uu] == NodeKind::Switch && alive;
                let is_host = self.kinds[uu] == NodeKind::Host;
                let base = self.port_off[uu] as usize;
                for h_idx in 0..n_hosts {
                    let li = h_idx * nn + uu;
                    let l = tab.len[li] as usize;
                    if l == 0 {
                        continue;
                    }
                    let cell = h_idx * pt + base;
                    if let Some(pos) = tab.buf[cell..cell + l].iter().position(|&x| x == p) {
                        tab.buf.copy_within(cell + pos + 1..cell + l, cell + pos);
                        tab.len[li] = (l - 1) as u16;
                        col_touched[h_idx] = true;
                        if l == 1 {
                            if empties_matter {
                                col_dirty[h_idx] = true;
                            } else if is_host && alive {
                                // A host with no way out is cut off
                                // (hosts have one link), and nothing
                                // routes through it, so no switch
                                // empties on its behalf — record the
                                // unreachability directly or the
                                // distance table would go stale for
                                // restore checks.
                                tab.set_dist(uu, h_idx, u32::MAX);
                            }
                        }
                    }
                }
            }
            // A dead node advertises nothing and is unreachable
            // everywhere (full recomputation never visits it); clear its
            // cells and distances wholesale.
            for &w in &new_nodes {
                for h_idx in 0..n_hosts {
                    tab.clear_cell(w.0 as usize, h_idx);
                    tab.set_dist(w.0 as usize, h_idx, u32::MAX);
                }
            }
            // Restore surgery, against the post-excision tables.
            // Distances of non-dirty columns are exact here (failure
            // surgery preserves them by the last-port argument), so each
            // restored element can be checked and patched in place;
            // dirty columns are skipped — their rebuild below covers
            // everything at once.
            restore_surgery_layer(
                &self.kinds,
                &self.ports,
                &self.port_off,
                &self.hosts,
                &self.weights[layer],
                mask,
                &restored_undirected,
                &restored_nodes,
                tab,
                &mut col_dirty,
            );
            touched_total += (0..n_hosts)
                .filter(|&h| col_touched[h] && !col_dirty[h])
                .count();
            dirty_cols.push(col_dirty);
        }
        let dirty_total: usize = dirty_cols
            .iter()
            .map(|cols| cols.iter().filter(|&&d| d).count())
            .sum();
        // The dirty (layer, column) rebuilds are the same pure,
        // disjoint-output units the full recompute fans out, so they
        // share the scatter: one job list across all layers keeps the
        // workers busy even when each layer dirtied only a few columns.
        let mut jobs: Vec<ColumnJob> = Vec::with_capacity(dirty_total);
        for (layer, tab) in self.layers.iter_mut().enumerate() {
            column_jobs(
                tab,
                &self.weights[layer],
                layer == 0,
                &self.hosts,
                Some(&dirty_cols[layer]),
                &mut jobs,
            );
        }
        let (ports, port_off) = (&self.ports, &self.port_off);
        crate::par::scatter(
            crate::par::resolve(self.parallelism),
            jobs,
            ColumnScratch::default,
            |scratch, job| {
                compute_column(
                    ports,
                    port_off,
                    job.weights,
                    job.uniform,
                    mask,
                    job.host,
                    job.buf,
                    job.len,
                    job.dist,
                    scratch,
                );
            },
        );
        self.routes_mask = mask.clone();
        RouteRepair {
            full: false,
            dests_rebuilt: dirty_total,
            dests_touched: touched_total,
            restored,
        }
    }

    /// Advertised layer-0 (minimal) ports of `node` towards `dst` (a
    /// host).
    ///
    /// # Panics
    /// Panics if routes were not computed or `dst` is unreachable —
    /// both are configuration bugs, not runtime conditions.
    pub fn next_ports(&self, node: NodeId, dst: NodeId) -> &[u16] {
        let next = self.try_next_ports(node, dst);
        assert!(
            !next.is_empty(),
            "no route from node {} to host {} (routes computed?)",
            node.0,
            dst.0
        );
        next
    }

    /// Advertised layer-0 (minimal) ports of `node` towards `dst`,
    /// empty when `dst` is unreachable under the mask the routes were
    /// computed with. The simulator uses this to drop (rather than
    /// panic on) packets whose destination a fault has disconnected.
    pub fn try_next_ports(&self, node: NodeId, dst: NodeId) -> &[u16] {
        self.try_next_ports_on(0, node, dst)
    }

    /// Advertised ports of `node` towards `dst` within one routing
    /// layer, empty when the layer has no path (the fault mask cut the
    /// layer off — the simulator's layer re-assignment moves flows away
    /// from such layers).
    #[inline]
    pub fn try_next_ports_on(&self, layer: usize, node: NodeId, dst: NodeId) -> &[u16] {
        self.try_next_ports_at(layer, node, self.host_index(dst))
    }

    /// [`Topology::try_next_ports_on`] with the destination given as a
    /// dense host index — the forwarding hot path resolves the index
    /// once per packet and reuses it across layer-liveness probes and
    /// the final port pick.
    #[inline]
    pub fn try_next_ports_at(&self, layer: usize, node: NodeId, dst_index: usize) -> &[u16] {
        self.layers[layer].advertised(&self.port_off, node.0 as usize, dst_index)
    }

    /// A layer's weighted distance from `node` to `dst` (`None` =
    /// unreachable under the mask the routes were computed with). On
    /// layer 0 the weighted distance is the plain hop count.
    pub fn layer_distance(&self, layer: usize, node: NodeId, dst: NodeId) -> Option<u32> {
        let h = self.host_index(dst);
        let d = self.layers[layer].dist_to(node.0 as usize, h);
        (d != u32::MAX).then_some(d)
    }

    /// Hop count of the shortest path between two hosts.
    pub fn path_hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        let mut hops = 0;
        let mut at = a;
        loop {
            let p = self.next_ports(at, b)[0];
            at = self.port(at, p).peer;
            hops += 1;
            if at == b {
                return hops;
            }
            assert!(hops < 64, "path longer than 64 hops; routing loop?");
        }
    }

    /// Structural invariants of the CSR arenas, for tests and debugging:
    /// offset monotonicity, port-arena symmetry, cell-capacity bounds,
    /// and advertised-port sanity (strictly ascending, in range, no
    /// dangling indices). Panics on the first violation.
    pub fn check_csr_invariants(&self) {
        let n = self.node_count();
        assert!(!self.ports_stale, "graph edited since the last freeze");
        assert_eq!(self.port_off.len(), n + 1, "offset table length");
        assert_eq!(self.port_off[0], 0, "offsets start at 0");
        for i in 0..n {
            assert!(
                self.port_off[i] <= self.port_off[i + 1],
                "offsets must be monotone at node {i}"
            );
        }
        assert_eq!(
            *self.port_off.last().unwrap() as usize,
            self.ports.len(),
            "offsets must cover the port arena"
        );
        for u in 0..n as u32 {
            for (pi, p) in self.node_ports(NodeId(u)).iter().enumerate() {
                let back = self.port(p.peer, p.peer_port);
                assert_eq!(back.peer, NodeId(u), "port symmetry (peer)");
                assert_eq!(back.peer_port as usize, pi, "port symmetry (index)");
            }
        }
        let n_hosts = self.hosts.len();
        for (layer, tab) in self.layers.iter().enumerate() {
            assert_eq!(tab.n_nodes, n, "layer {layer} node stride");
            assert_eq!(tab.n_hosts, n_hosts, "layer {layer} host stride");
            assert_eq!(tab.buf.len(), self.ports.len() * n_hosts, "arena size");
            assert_eq!(tab.len.len(), n * n_hosts, "len table size");
            assert_eq!(tab.dist.len(), n_hosts * n, "dist table size");
            for u in 0..n {
                let deg = (self.port_off[u + 1] - self.port_off[u]) as usize;
                for h_idx in 0..n_hosts {
                    let cell = tab.advertised(&self.port_off, u, h_idx);
                    assert!(
                        cell.len() <= deg,
                        "layer {layer} cell ({u}, {h_idx}) overflows deg {deg}"
                    );
                    for w in cell.windows(2) {
                        assert!(
                            w[0] < w[1],
                            "layer {layer} cell ({u}, {h_idx}) not ascending"
                        );
                    }
                    for &p in cell {
                        assert!(
                            (p as usize) < deg,
                            "layer {layer} cell ({u}, {h_idx}) dangles port {p}"
                        );
                    }
                }
            }
        }
    }

    /// Build a k-ary fat-tree (k even): k pods of (k/2 edge + k/2
    /// aggregation) switches, (k/2)² core switches, k²/4 hosts per pod
    /// wait — k/2 hosts per edge switch, so k³/4 hosts total. All links
    /// share `rate_bps`/`prop_ns` (the paper: 1 Gbps, 10 µs).
    // Index loops mirror the fat-tree's (pod, column) coordinate system;
    // iterator chains over the nested vecs obscure the symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn fat_tree(k: usize, rate_bps: u64, prop_ns: u64) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree requires even k >= 2"
        );
        let half = k / 2;
        let mut t = Topology::new();

        // Hosts and edge/agg switches, pod by pod.
        let mut edges = vec![vec![NodeId(0); half]; k];
        let mut aggs = vec![vec![NodeId(0); half]; k];
        for pod in 0..k {
            for e in 0..half {
                let edge = t.add_node(NodeKind::Switch);
                edges[pod][e] = edge;
                for _ in 0..half {
                    let host = t.add_node(NodeKind::Host);
                    t.connect(host, edge, rate_bps, prop_ns);
                }
            }
            for a in 0..half {
                aggs[pod][a] = t.add_node(NodeKind::Switch);
            }
            for e in 0..half {
                for a in 0..half {
                    t.connect(edges[pod][e], aggs[pod][a], rate_bps, prop_ns);
                }
            }
        }
        // Core layer: group g serves aggregation index g of every pod.
        for g in 0..half {
            for c in 0..half {
                let core = t.add_node(NodeKind::Switch);
                let _ = c;
                for pod in 0..k {
                    t.connect(aggs[pod][g], core, rate_bps, prop_ns);
                }
            }
        }
        t.compute_routes();
        t
    }

    /// The edge switch a host hangs off (host's single uplink peer).
    pub fn edge_switch(&self, host: NodeId) -> NodeId {
        assert_eq!(self.kind(host), NodeKind::Host);
        self.node_ports(host)[0].peer
    }

    /// Whether two hosts share an edge switch ("same rack"); used for
    /// the paper's replica placement rule (replicas outside the client's
    /// rack).
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_switch(a) == self.edge_switch(b)
    }

    /// Whether two hosts share a coarse shared-risk group: the same
    /// rack, or edge switches with a common switch neighbour — on a
    /// fat-tree that is "same pod" (one aggregation switch serves both),
    /// the blast radius of a single aggregation failure. Shared-risk-
    /// aware replica placement (`workload::scenario`) uses this to
    /// spread replica sets so no single agg/core event can strand more
    /// than one of them; fabrics where every pair shares risk (e.g. a
    /// two-tier leaf–spine, where all leaves see all spines) simply fall
    /// back to the rack rule.
    pub fn shared_risk(&self, a: NodeId, b: NodeId) -> bool {
        let (ea, eb) = (self.edge_switch(a), self.edge_switch(b));
        if ea == eb {
            return true;
        }
        self.node_ports(ea).iter().any(|p| {
            self.kind(p.peer) == NodeKind::Switch
                && self.node_ports(eb).iter().any(|q| q.peer == p.peer)
        })
    }

    /// One-way store-and-forward delay of a `bytes`-sized packet from
    /// `from` to `to`, walking the first advertised (minimal) path and
    /// summing each traversed link's own serialization and propagation
    /// delay — correct on heterogeneous fabrics (e.g. oversubscribed
    /// leaf–spine uplinks), where no single link speed describes a path.
    pub fn path_delay_ns(&self, from: NodeId, to: NodeId, bytes: u32) -> u64 {
        let mut total = 0u64;
        let mut at = from;
        let mut hops = 0u32;
        while at != to {
            let p = self.port(at, self.next_ports(at, to)[0]);
            total += crate::time::serialization_ns(bytes, p.rate_bps) + p.prop_ns;
            at = p.peer;
            hops += 1;
            assert!(hops < 256, "path longer than 256 hops; routing loop?");
        }
        total
    }

    /// Base round-trip time between two hosts for a given packet size:
    /// the actual forward path walked link by link with a data-size
    /// packet, plus the return path with a header-size packet. A
    /// convenience for transports sizing their initial window to one BDP.
    pub fn base_rtt_ns(&self, a: NodeId, b: NodeId, data_bytes: u32, ctrl_bytes: u32) -> u64 {
        self.path_delay_ns(a, b, data_bytes) + self.path_delay_ns(b, a, ctrl_bytes)
    }

    /// Build a two-tier leaf–spine fabric: `leaves` leaf switches with
    /// `hosts_per_leaf` hosts each, every leaf connected to every one of
    /// `spines` spine switches. Host links run at `rate_bps`; each
    /// uplink runs at `hosts_per_leaf × rate_bps / (spines × oversub)`,
    /// so `oversub = 1` is non-blocking and `oversub = 4` is the classic
    /// 4:1 oversubscribed data-centre fabric (and makes the fabric
    /// heterogeneous — uplinks slower than host links).
    pub fn leaf_spine(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        oversub: f64,
        rate_bps: u64,
        prop_ns: u64,
    ) -> Topology {
        assert!(
            leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1,
            "leaf-spine needs >= 2 leaves, >= 1 spine, >= 1 host per leaf"
        );
        assert!(oversub > 0.0, "oversubscription ratio must be positive");
        let uplink_bps =
            ((hosts_per_leaf as f64 * rate_bps as f64) / (spines as f64 * oversub)).round() as u64;
        assert!(uplink_bps > 0, "oversubscription leaves uplinks at 0 bps");
        let mut t = Topology::new();
        let mut leaf_ids = Vec::with_capacity(leaves);
        for _ in 0..leaves {
            let leaf = t.add_node(NodeKind::Switch);
            leaf_ids.push(leaf);
            for _ in 0..hosts_per_leaf {
                let host = t.add_node(NodeKind::Host);
                t.connect(host, leaf, rate_bps, prop_ns);
            }
        }
        let spine_ids: Vec<NodeId> = (0..spines).map(|_| t.add_node(NodeKind::Switch)).collect();
        for &leaf in &leaf_ids {
            for &spine in &spine_ids {
                t.connect(leaf, spine, uplink_bps, prop_ns);
            }
        }
        t.compute_routes();
        t
    }

    /// Build a Jellyfish-style fabric (Singla et al.): `switches`
    /// switches wired into a seeded random `net_degree`-regular graph
    /// (simple and connected — stub matching with deterministic
    /// retries), each hosting `hosts_per_switch` hosts. All links share
    /// `rate_bps`/`prop_ns`. Same seed ⇒ identical graph.
    pub fn jellyfish(
        switches: usize,
        net_degree: usize,
        hosts_per_switch: usize,
        rate_bps: u64,
        prop_ns: u64,
        seed: u64,
    ) -> Topology {
        assert!(
            net_degree >= 2 && switches > net_degree,
            "jellyfish needs net_degree >= 2 and more switches than the degree"
        );
        assert!(
            (switches * net_degree).is_multiple_of(2),
            "switches x net_degree must be even"
        );
        let edges = random_regular_edges(switches, net_degree, seed);
        let mut t = Topology::new();
        let sw: Vec<NodeId> = (0..switches)
            .map(|_| t.add_node(NodeKind::Switch))
            .collect();
        for &(a, b) in &edges {
            t.connect(sw[a], sw[b], rate_bps, prop_ns);
        }
        for &s in &sw {
            for _ in 0..hosts_per_switch {
                let host = t.add_node(NodeKind::Host);
                t.connect(host, s, rate_bps, prop_ns);
            }
        }
        t.compute_routes();
        t
    }

    /// Switches with no directly attached hosts — the "core layer" in a
    /// hierarchical fabric (fat-tree core, leaf-spine spines). Fault
    /// scenarios use this to aim failures at pure transit switches,
    /// whose loss degrades capacity without isolating any host.
    pub fn core_switches(&self) -> Vec<NodeId> {
        (0..self.node_count() as u32)
            .map(NodeId)
            .filter(|&n| {
                self.kind(n) == NodeKind::Switch
                    && self
                        .node_ports(n)
                        .iter()
                        .all(|p| self.kind(p.peer) == NodeKind::Switch)
            })
            .collect()
    }

    /// Partition this topology into up to `shards` event-loop shards
    /// (see [`crate::shard::ShardPlan::build`]) — a convenience for
    /// inspecting the partition a sharded [`crate::SimConfig`] would
    /// run under.
    pub fn shard_plan(&self, shards: usize) -> crate::shard::ShardPlan {
        crate::shard::ShardPlan::build(self, shards)
    }
}

/// Reusable scratch queues for [`compute_column`], so per-column
/// searches allocate nothing: the plain BFS frontier for unit-weight
/// layers and the binary heap for weighted ones.
#[derive(Default)]
struct ColumnScratch {
    frontier: std::collections::VecDeque<u32>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>>,
}

/// One (layer, destination-column) unit of route-computation work: the
/// column's disjoint slices of the column-major arenas plus the layer
/// context the rebuild needs. Built by [`column_jobs`], consumed by a
/// [`crate::par::scatter`] over [`compute_column`]. Columns never share
/// arena bytes, so any number of jobs can run concurrently and the
/// result is identical to the serial loop.
struct ColumnJob<'a> {
    /// The layer's link-weight arena (shared, read-only).
    weights: &'a [u8],
    /// Layer 0: unit weights, BFS fast path.
    uniform: bool,
    /// The destination host this column routes towards.
    host: NodeId,
    /// The column's `P`-length route-cell slice.
    buf: &'a mut [u16],
    /// The column's `N`-length occupied-prefix slice.
    len: &'a mut [u16],
    /// The column's `N`-length distance slice.
    dist: &'a mut [u32],
}

/// Split `v` into `count` disjoint column slices of `stride` elements
/// each. `stride == 0` yields `count` empty slices: a degenerate arena
/// (a graph with no links has no route cells) still has columns.
fn column_chunks<T>(v: &mut [T], stride: usize, count: usize) -> Vec<&mut [T]> {
    if stride == 0 {
        return (0..count).map(|_| &mut [] as &mut [T]).collect();
    }
    debug_assert_eq!(v.len(), stride * count);
    v.chunks_mut(stride).collect()
}

/// Carve one layer's arenas into per-destination-column jobs and push
/// them onto `out` — all columns, or only those flagged in `cols`. The
/// pushed jobs hold disjoint `&mut` slices into `tab`, which is what
/// makes the scatter safe without any interior synchronisation.
fn column_jobs<'a>(
    tab: &'a mut LayerTables,
    weights: &'a [u8],
    uniform: bool,
    hosts: &[NodeId],
    cols: Option<&[bool]>,
    out: &mut Vec<ColumnJob<'a>>,
) {
    let (n, p, nh) = (tab.n_nodes, tab.n_ports, tab.n_hosts);
    let bufs = column_chunks(&mut tab.buf, p, nh);
    let lens = column_chunks(&mut tab.len, n, nh);
    let dists = column_chunks(&mut tab.dist, n, nh);
    for (h_idx, ((buf, len), dist)) in bufs.into_iter().zip(lens).zip(dists).enumerate() {
        if cols.is_some_and(|c| !c[h_idx]) {
            continue;
        }
        out.push(ColumnJob {
            weights,
            uniform,
            host: hosts[h_idx],
            buf,
            len,
            dist,
        });
    }
}

/// Rebuild one layer's routing column for one destination host: a
/// weighted shortest-path search from the destination outward (weights
/// in {1, 2} per the layer's preferred-link draw), recording the
/// distances in `dist` (this column's N-length slice), then record
/// every node's advertised ports into its arena cell — exactly the
/// ports on weighted shortest paths, in ascending port order. With
/// `uniform` (layer 0, whose weights are all 1 — i.e. the whole of
/// every single-layer policy) the distance phase runs the original
/// O(1)-per-node BFS instead of heap Dijkstra, keeping the pre-layering
/// repair fast path at its old constant factor. The search traverses
/// links in reverse, but the mask and the weights are symmetric per
/// link, so checking the (u, port) direction suffices. A free function
/// (not a method), taking only this column's slices of the column-major
/// arenas (`buf`: P-length, `len`/`dist`: N-length), so the repair path
/// can borrow `Topology` fields disjointly and the parallel scatter can
/// run many columns at once.
#[allow(clippy::too_many_arguments)]
fn compute_column(
    ports: &[Port],
    port_off: &[u32],
    weights: &[u8],
    uniform: bool,
    mask: &FaultMask,
    host: NodeId,
    buf: &mut [u16],
    len: &mut [u16],
    dist: &mut [u32],
    scratch: &mut ColumnScratch,
) {
    use std::cmp::Reverse;
    let n = port_off.len() - 1;
    len.fill(0);
    dist.fill(u32::MAX);
    if mask.node_is_down(host) {
        return;
    }
    dist[host.0 as usize] = 0;
    if uniform {
        let frontier = &mut scratch.frontier;
        frontier.clear();
        frontier.push_back(host.0);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u as usize];
            let base = port_off[u as usize] as usize;
            let end = port_off[u as usize + 1] as usize;
            for (pi, port) in ports[base..end].iter().enumerate() {
                if mask.link_is_down(NodeId(u), pi as u16) || mask.node_is_down(port.peer) {
                    continue;
                }
                let v = port.peer.0;
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    frontier.push_back(v);
                }
            }
        }
    } else {
        let heap = &mut scratch.heap;
        heap.clear();
        heap.push(Reverse((0, host.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue; // stale heap entry
            }
            let base = port_off[u as usize] as usize;
            let end = port_off[u as usize + 1] as usize;
            for (pi, port) in ports[base..end].iter().enumerate() {
                if mask.link_is_down(NodeId(u), pi as u16) || mask.node_is_down(port.peer) {
                    continue;
                }
                let nd = d + weights[base + pi] as u32;
                let v = port.peer.0;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    for u in 0..n {
        if dist[u] == u32::MAX || u as u32 == host.0 || mask.node_is_down(NodeId(u as u32)) {
            continue;
        }
        let du = dist[u];
        let base = port_off[u] as usize;
        let deg = port_off[u + 1] as usize - base;
        let mut l = 0usize;
        for pi in 0..deg {
            let p = &ports[base + pi];
            if mask.link_is_down(NodeId(u as u32), pi as u16) || mask.node_is_down(p.peer) {
                continue;
            }
            let dp = dist[p.peer.0 as usize];
            if dp != u32::MAX && dp + weights[base + pi] as u32 == du {
                buf[base + l] = pi as u16;
                l += 1;
            }
        }
        len[u] = l as u16;
    }
}

/// Patch one layer's route arena for restored elements, column by
/// column. For every destination whose distances cannot shrink,
/// restored ports are re-advertised exactly where they are equal-cost
/// next hops under the layer's weights — in-place cell shifts, no
/// allocation; destinations where the restored element lies on a
/// strictly shorter weighted path (or re-attaches a cut-off region) are
/// flagged in `col_dirty` for a per-destination rebuild. Elements are
/// processed sequentially, so a restored node's freshly computed
/// distance feeds the checks of later elements in the same delta.
// The column loops index several parallel per-destination tables
// (`col_dirty`, the dist/len arenas, `hosts`); iterator chains would
// obscure that they advance in lockstep.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn restore_surgery_layer(
    kinds: &[NodeKind],
    ports: &[Port],
    off: &[u32],
    hosts: &[NodeId],
    weights: &[u8],
    mask: &FaultMask,
    restored_links: &[(u32, u16)],
    restored_nodes: &[NodeId],
    tab: &mut LayerTables,
    col_dirty: &mut [bool],
) {
    // A single-port host is a leaf nothing can route through, so its
    // reachability changes never cascade: restore surgery patches such
    // nodes in place instead of rebuilding whole destination columns.
    let leaf = |n: NodeId| {
        let i = n.0 as usize;
        kinds[i] == NodeKind::Host && off[i + 1] - off[i] == 1
    };
    for &w in restored_nodes {
        let wu = w.0 as usize;
        let base = off[wu] as usize;
        let n_ports = off[wu + 1] as usize - base;
        for h_idx in 0..hosts.len() {
            if col_dirty[h_idx] {
                continue;
            }
            // The restored node is this column's destination host: the
            // whole column was cleared when it died.
            if hosts[h_idx] == w {
                col_dirty[h_idx] = true;
                continue;
            }
            // New distance of w: one link past its closest usable
            // neighbour (usable = link up, peer up, peer reachable).
            let mut dw = u32::MAX;
            for pi in 0..n_ports {
                let peer = ports[base + pi].peer;
                if mask.link_is_down(w, pi as u16) || mask.node_is_down(peer) {
                    continue;
                }
                let dp = tab.dist_to(peer.0 as usize, h_idx);
                if dp != u32::MAX {
                    dw = dw.min(dp + weights[base + pi] as u32);
                }
            }
            if dw == u32::MAX {
                continue; // still cut off; cell stays empty
            }
            // Any usable neighbour strictly farther than dw + w(link)
            // (including unreachable ones) gets closer through w — the
            // shrink can cascade, so rebuild this destination.
            // Exception: a leaf host (nothing routes through it) can
            // only have its own cell change, which is pure surgery.
            let shrinks = (0..n_ports).any(|pi| {
                let peer = ports[base + pi].peer;
                !mask.link_is_down(w, pi as u16)
                    && !mask.node_is_down(peer)
                    && tab.dist_to(peer.0 as usize, h_idx)
                        > dw.saturating_add(weights[base + pi] as u32)
                    && !leaf(peer)
            });
            if shrinks {
                col_dirty[h_idx] = true;
                continue;
            }
            // Pure surgery: record w's own advertised ports straight
            // into its (empty — cleared when it died) cell, make w an
            // additional equal-cost hop at neighbours one link further
            // out, and re-attach leaf hosts w was the way out for.
            tab.set_dist(wu, h_idx, dw);
            let (cell, _) = tab.cell(off, wu, h_idx);
            let mut l = 0usize;
            for pi in 0..n_ports {
                let port = ports[base + pi];
                if mask.link_is_down(w, pi as u16) || mask.node_is_down(port.peer) {
                    continue;
                }
                let wl = weights[base + pi] as u32;
                let dp = tab.dist_to(port.peer.0 as usize, h_idx);
                if dp != u32::MAX && dp + wl == dw {
                    tab.buf[cell + l] = pi as u16;
                    l += 1;
                } else if dp == dw + wl {
                    tab.insert_port(off, port.peer.0 as usize, h_idx, port.peer_port);
                } else if dp > dw + wl && leaf(port.peer) {
                    tab.set_dist(port.peer.0 as usize, h_idx, dw + wl);
                    tab.set_single(off, port.peer.0 as usize, h_idx, port.peer_port);
                }
            }
            tab.len[h_idx * tab.n_nodes + wu] = l as u16;
        }
    }
    for &(u, p) in restored_links {
        let port = ports[off[u as usize] as usize + p as usize];
        let (v, q) = (port.peer, port.peer_port);
        // The link only carries traffic if both endpoints are alive.
        if mask.node_is_down(NodeId(u)) || mask.node_is_down(v) {
            continue;
        }
        let wl = weights[off[u as usize] as usize + p as usize] as u32;
        for h_idx in 0..hosts.len() {
            if col_dirty[h_idx] {
                continue;
            }
            let du = tab.dist_to(u as usize, h_idx);
            let dv = tab.dist_to(v.0 as usize, h_idx);
            if du == u32::MAX && dv == u32::MAX {
                continue; // both sides cut off; the link helps nobody
            }
            // One side unreachable or farther than the link's weight:
            // the restored link shortens (or creates) paths — rebuild,
            // unless the far side is a leaf host, whose revival can't
            // cascade (nothing routes through it) and is patched in
            // place.
            let (near, far) = (du.min(dv), du.max(dv));
            if far > near.saturating_add(wl) {
                let (far_node, far_port) = if du > dv { (NodeId(u), p) } else { (v, q) };
                if leaf(far_node) {
                    tab.set_dist(far_node.0 as usize, h_idx, near + wl);
                    tab.set_single(off, far_node.0 as usize, h_idx, far_port);
                } else {
                    col_dirty[h_idx] = true;
                }
                continue;
            }
            // Equal-cost surgery: the downhill direction (if any)
            // becomes a newly advertised shortest-path port. (When the
            // gap is smaller than the link's weight — e.g. equal
            // distances, or a gap of 1 on a weight-2 link — no shortest
            // path uses the link and nothing changes.)
            if du != u32::MAX && dv != u32::MAX {
                if du == dv + wl {
                    tab.insert_port(off, u as usize, h_idx, p);
                } else if dv == du + wl {
                    tab.insert_port(off, v.0 as usize, h_idx, q);
                }
            }
        }
    }
}

/// A simple connected random regular graph, seeded and deterministic.
///
/// Low degrees use stub matching: shuffle every switch's stubs, pair
/// them up, and retry the whole shuffle (with a deterministically
/// perturbed seed) on self-loops, duplicate edges, or a disconnected
/// result. The no-collision odds decay like `exp(-d²/4)`, so from
/// degree 6 up (the 5k-host Jellyfish runs at degree 12) the whole
/// graph is built by [`swapped_regular_edges`] instead.
fn random_regular_edges(n: usize, d: usize, seed: u64) -> Vec<(usize, usize)> {
    if d >= 6 {
        return swapped_regular_edges(n, d, seed);
    }
    'attempt: for attempt in 0..10_000u64 {
        let mut rng = Pcg32::new(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut stubs: Vec<usize> = (0..n).flat_map(|i| (0..d).map(move |_| i)).collect();
        rng.shuffle(&mut stubs);
        let mut seen = std::collections::BTreeSet::new();
        let mut edges = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || !seen.insert((a.min(b), a.max(b))) {
                continue 'attempt;
            }
            edges.push((a.min(b), a.max(b)));
        }
        // Connectivity check over the switch graph.
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        if count == n {
            return edges;
        }
    }
    panic!("could not build a connected {d}-regular graph on {n} switches");
}

/// Connected random regular graph for degrees where stub matching is
/// hopeless: start from a deterministic connected circulant (ring
/// chords 1..d/2, plus the antipodal matching when d is odd) and mix it
/// with seeded double-edge swaps, which preserve d-regularity and
/// simplicity by construction. Swapping continues in rounds until the
/// result is connected.
fn swapped_regular_edges(n: usize, d: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(
        d < n - 1,
        "degree-{d} regular graph needs > {} switches",
        d + 1
    );
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even for a {d}-regular graph"
    );
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    for j in 1..=d / 2 {
        for i in 0..n {
            let k = (i + j) % n;
            edges.push((i.min(k), i.max(k)));
        }
    }
    if d % 2 == 1 {
        // n is even here (n*d even with d odd).
        for i in 0..n / 2 {
            edges.push((i, i + n / 2));
        }
    }
    let mut present: std::collections::BTreeSet<(usize, usize)> = edges.iter().copied().collect();
    debug_assert_eq!(present.len(), edges.len(), "circulant base must be simple");
    let mut rng = Pcg32::new(seed ^ 0x0005_EED0_F1A7_u64);
    let target = 20 * edges.len();
    for round in 0..100 {
        let mut done = 0;
        let mut tries = 0;
        while done < target && tries < 20 * target {
            tries += 1;
            let i = rng.below(edges.len() as u64) as usize;
            let j = rng.below(edges.len() as u64) as usize;
            let (a, b) = edges[i];
            let (c, e) = edges[j];
            // Two orientations of the rewiring; pick one at random.
            let (c, e) = if rng.below(2) == 1 { (e, c) } else { (c, e) };
            if a == c || a == e || b == c || b == e {
                continue;
            }
            let na = (a.min(c), a.max(c));
            let nb = (b.min(e), b.max(e));
            if present.contains(&na) || present.contains(&nb) {
                continue;
            }
            present.remove(&edges[i]);
            present.remove(&edges[j]);
            present.insert(na);
            present.insert(nb);
            edges[i] = na;
            edges[j] = nb;
            done += 1;
        }
        // Connectivity check; a disconnected result gets another round
        // of mixing (swaps across components reconnect them).
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        if count == n {
            return edges;
        }
        let _ = round;
    }
    panic!("could not mix a connected {d}-regular graph on {n} switches");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts() {
        // k=4: 16 hosts, 4 pods × (2+2) switches + 4 cores = 20 switches.
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 8 + 8 + 4);
        // k=10: the paper's 250-server fabric.
        let t10 = Topology::fat_tree(10, 1_000_000_000, 10_000);
        assert_eq!(t10.hosts().len(), 250);
        assert_eq!(t10.node_count(), 250 + 50 + 50 + 25);
    }

    #[test]
    fn fat_tree_symmetric_ports() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        for n in 0..t.node_count() as u32 {
            for (i, p) in t.node_ports(NodeId(n)).iter().enumerate() {
                let back = t.port(p.peer, p.peer_port);
                assert_eq!(back.peer, NodeId(n));
                assert_eq!(back.peer_port as usize, i);
            }
        }
    }

    #[test]
    fn hosts_have_one_port_switches_k() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        for &h in t.hosts() {
            assert_eq!(t.node_ports(h).len(), 1);
        }
        for n in 0..t.node_count() as u32 {
            if t.kind(NodeId(n)) == NodeKind::Switch {
                assert_eq!(t.node_ports(NodeId(n)).len(), 4, "switch degree");
            }
        }
    }

    #[test]
    fn path_hops_structure() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        // Same rack: 2 hops (host→edge→host).
        assert_eq!(t.path_hops(hosts[0], hosts[1]), 2);
        // Same pod, different rack: 4 hops.
        assert_eq!(t.path_hops(hosts[0], hosts[2]), 4);
        // Different pod: 6 hops.
        assert_eq!(t.path_hops(hosts[0], hosts[15]), 6);
    }

    #[test]
    fn multipath_counts() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let (src, dst) = (hosts[0], hosts[15]);
        // At the source edge switch there are k/2 = 2 equal-cost uplinks.
        let edge = t.edge_switch(src);
        assert_eq!(t.next_ports(edge, dst).len(), 2);
        // At the host there is exactly one way out.
        assert_eq!(t.next_ports(src, dst).len(), 1);
    }

    #[test]
    fn same_rack_detection() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        assert!(t.same_rack(hosts[0], hosts[1]));
        assert!(!t.same_rack(hosts[0], hosts[2]));
    }

    #[test]
    fn base_rtt_sane() {
        let t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        // Inter-pod: 6 hops × (12µs ser + 10µs prop) forward
        //          + 6 hops × (0.512µs + 10µs) back.
        let rtt = t.base_rtt_ns(hosts[0], hosts[15], 1500, 64);
        assert_eq!(rtt, 6 * (12_000 + 10_000) + 6 * (512 + 10_000));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host);
        t.connect(a, a, 1, 1);
    }

    #[test]
    fn leaf_spine_structure_and_oversub() {
        // 4 leaves x 4 hosts, 2 spines, 2:1 oversubscription.
        let t = Topology::leaf_spine(4, 2, 4, 2.0, 1_000_000_000, 10_000);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 4 + 2);
        // Uplink rate = 4 x 1G / (2 spines x 2.0) = 1 Gbps... per uplink.
        let leaf = t.edge_switch(t.hosts()[0]);
        let uplink = t
            .node_ports(leaf)
            .iter()
            .find(|p| t.kind(p.peer) == NodeKind::Switch)
            .unwrap();
        assert_eq!(uplink.rate_bps, 1_000_000_000);
        // Inter-leaf paths go host-leaf-spine-leaf-host = 4 hops with 2
        // equal-cost spine choices at the leaf.
        let (a, b) = (t.hosts()[0], t.hosts()[15]);
        assert_eq!(t.path_hops(a, b), 4);
        assert_eq!(t.next_ports(t.edge_switch(a), b).len(), 2);
        // Spines are the core layer.
        assert_eq!(t.core_switches().len(), 2);
    }

    #[test]
    fn base_rtt_walks_heterogeneous_links() {
        // 4:1 oversubscribed uplinks: 4 hosts x 1G / (1 spine x 4.0) =
        // 1 Gbps... use 2 spines => 500 Mbps uplinks.
        let t = Topology::leaf_spine(2, 2, 4, 4.0, 1_000_000_000, 10_000);
        let (a, b) = (t.hosts()[0], t.hosts()[7]);
        // Forward 1500 B: host->leaf at 1G (12 us), leaf->spine and
        // spine->leaf at 500 M (24 us each), leaf->host at 1G (12 us),
        // plus 10 us propagation per hop.
        let fwd = (12_000 + 24_000 + 24_000 + 12_000) + 4 * 10_000;
        // Return 64 B: 512 ns at 1G, 1024 ns at 500 M.
        let back = (512 + 1_024 + 1_024 + 512) + 4 * 10_000;
        assert_eq!(t.base_rtt_ns(a, b, 1500, 64), fwd + back);
    }

    #[test]
    fn jellyfish_regular_connected_deterministic() {
        let t = Topology::jellyfish(8, 3, 2, 1_000_000_000, 10_000, 7);
        assert_eq!(t.hosts().len(), 16);
        assert_eq!(t.node_count(), 16 + 8);
        for n in 0..8u32 {
            assert_eq!(t.kind(NodeId(n)), NodeKind::Switch);
            assert_eq!(t.node_ports(NodeId(n)).len(), 3 + 2, "switch degree");
        }
        // All pairs reachable.
        for &a in t.hosts() {
            for &b in t.hosts() {
                if a != b {
                    assert!(t.path_hops(a, b) >= 2);
                }
            }
        }
        // Same seed => identical wiring; different seed => different.
        let t2 = Topology::jellyfish(8, 3, 2, 1_000_000_000, 10_000, 7);
        let t3 = Topology::jellyfish(8, 3, 2, 1_000_000_000, 10_000, 8);
        let wiring = |t: &Topology| -> Vec<Vec<u32>> {
            (0..t.node_count() as u32)
                .map(|n| t.node_ports(NodeId(n)).iter().map(|p| p.peer.0).collect())
                .collect()
        };
        assert_eq!(wiring(&t), wiring(&t2));
        assert_ne!(wiring(&t), wiring(&t3));
    }

    #[test]
    fn layered_policy_widens_path_set_and_stays_loop_free() {
        let mut t = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        let minimal: usize = count_advertised(&t, 0);
        // The old `RouteSet::NonMinimal` maps to a 2-layer policy.
        assert_eq!(RoutingPolicy::non_minimal(), RoutingPolicy::layered(2, 0));
        t.set_policy(RoutingPolicy::layered(3, 7));
        t.compute_routes();
        assert_eq!(t.layer_count(), 3);
        // Layer 0 is bit-identical to plain minimal routing.
        assert_eq!(count_advertised(&t, 0), minimal);
        // The union of layers advertises paths minimal routing lacks:
        // some (node, dst) pair must advertise a port on a non-minimal
        // layer that layer 0 does not.
        let mut widened = false;
        for layer in 1..t.layer_count() {
            for n in 0..t.node_count() as u32 {
                for &h in t.hosts() {
                    if NodeId(n) == h {
                        continue;
                    }
                    let min_ports = t.try_next_ports(NodeId(n), h);
                    if t.try_next_ports_on(layer, NodeId(n), h)
                        .iter()
                        .any(|p| !min_ports.contains(p))
                    {
                        widened = true;
                    }
                }
            }
        }
        assert!(widened, "extra layers must expose non-minimal paths");
        // Any walk over a layer's advertised ports terminates within the
        // 2x stretch bound (the weighted distance strictly decreases).
        let hosts = t.hosts().to_vec();
        let mut rng = Pcg32::new(99);
        for layer in 0..t.layer_count() {
            for _ in 0..100 {
                let a = hosts[rng.below(hosts.len() as u64) as usize];
                let b = hosts[rng.below(hosts.len() as u64) as usize];
                if a == b {
                    continue;
                }
                let bound = 2 * t.path_hops(a, b) as usize;
                let mut at = a;
                let mut steps = 0;
                while at != b {
                    let choices = t.try_next_ports_on(layer, at, b);
                    assert!(!choices.is_empty(), "layer {layer} lost {}->{}", a.0, b.0);
                    at = t
                        .port(at, choices[rng.below(choices.len() as u64) as usize])
                        .peer;
                    steps += 1;
                    assert!(steps <= bound, "layer {layer} walk exceeded 2x stretch");
                }
            }
        }
        // next_ports[0] still walks a minimal path.
        let (a, b) = (hosts[0], hosts[7]);
        let minimal_t = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        assert_eq!(t.path_hops(a, b), minimal_t.path_hops(a, b));
    }

    fn count_advertised(t: &Topology, layer: usize) -> usize {
        let mut total = 0;
        for n in 0..t.node_count() as u32 {
            for &h in t.hosts() {
                if NodeId(n) != h {
                    total += t.try_next_ports_on(layer, NodeId(n), h).len();
                }
            }
        }
        total
    }

    #[test]
    fn masked_recompute_routes_around_core_failure() {
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = t.core_switches()[0];
        let mut mask = FaultMask::new();
        mask.fail_node(core);
        t.compute_routes_masked(&mask);
        let hosts = t.hosts().to_vec();
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                // Every pair still routable, never through the dead core.
                let mut at = a;
                let mut steps = 0;
                while at != b {
                    let p = t.next_ports(at, b)[0];
                    at = t.port(at, p).peer;
                    assert_ne!(at, core, "path crosses the failed core");
                    steps += 1;
                    assert!(steps <= 6);
                }
            }
        }
        // Restoring the mask restores the full path set.
        t.compute_routes();
        let edge = t.edge_switch(hosts[0]);
        assert_eq!(t.next_ports(edge, hosts[15]).len(), 2);
    }

    /// Full snapshot of every layer's advertised route tables, for
    /// equivalence checks between incremental repair and full
    /// recomputation.
    fn route_tables(t: &Topology) -> Vec<Vec<Vec<Vec<u16>>>> {
        (0..t.layer_count())
            .map(|layer| {
                (0..t.node_count() as u32)
                    .map(|n| {
                        t.hosts()
                            .iter()
                            .map(|&h| t.try_next_ports_on(layer, NodeId(n), h).to_vec())
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Every layer's weight table, via the public accessor — the
    /// representation the cache-reuse test snapshots.
    fn weight_snapshot(t: &Topology) -> Vec<Vec<u8>> {
        (0..t.layer_count())
            .map(|layer| {
                (0..t.node_count() as u32)
                    .flat_map(|n| {
                        (0..t.node_ports(NodeId(n)).len() as u16)
                            .map(move |p| (NodeId(n), p))
                            .collect::<Vec<_>>()
                    })
                    .map(|(n, p)| t.layer_link_weight(layer, n, p))
                    .collect()
            })
            .collect()
    }

    /// Mid-run masked recomputes and repairs reuse the cached weight
    /// arenas: the tables depend only on (policy, frozen graph), never
    /// the fault mask, so fault events must not re-derive one seeded
    /// hash per inter-switch link — and the cached tables must be
    /// bit-identical to freshly derived ones.
    #[test]
    fn weight_tables_cached_across_masked_recomputes() {
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        t.set_policy(RoutingPolicy::layered(3, 9));
        t.compute_routes();
        let builds = t.weight_builds();
        let snapshot = weight_snapshot(&t);
        let mut mask = FaultMask::new();
        mask.fail_node(t.core_switches()[0]);
        t.compute_routes_masked(&mask);
        mask.fail_link(&t, t.hosts()[0], 0);
        t.repair_routes(&mask);
        mask.restore_node(t.core_switches()[0]);
        t.repair_routes(&mask);
        assert_eq!(
            t.weight_builds(),
            builds,
            "fault events rebuilt mask-independent weight tables"
        );
        assert_eq!(weight_snapshot(&t), snapshot, "cached tables diverged");
        // A policy change invalidates the cache; flipping back rebuilds
        // tables identical to the originally cached ones (the tables
        // are a pure function of policy + graph).
        t.set_policy(RoutingPolicy::layered(3, 10));
        t.compute_routes();
        assert_eq!(t.weight_builds(), builds + 1, "policy change must rebuild");
        t.set_policy(RoutingPolicy::layered(3, 9));
        t.compute_routes();
        assert_eq!(weight_snapshot(&t), snapshot);
    }

    /// Parallel route computation is byte-identical to serial — full
    /// compute and fail/restore repair alike. Columns are pure units
    /// writing disjoint arena slices, so the thread count (including 0
    /// = auto and counts above the column count) can never leak into
    /// the tables.
    #[test]
    fn parallel_compute_and_repair_match_serial() {
        let mut serial = Topology::fat_tree(4, 1_000_000_000, 10_000);
        serial.set_policy(RoutingPolicy::layered(3, 7));
        serial.compute_routes();
        for threads in [0, 2, 3, 64] {
            let mut par = Topology::fat_tree(4, 1_000_000_000, 10_000);
            par.set_policy(RoutingPolicy::layered(3, 7));
            par.set_parallelism(threads);
            par.compute_routes();
            assert_eq!(
                route_tables(&serial),
                route_tables(&par),
                "full compute, threads={threads}"
            );
            let core = serial.core_switches()[0];
            let victim = serial.hosts()[3];
            let mut mask = FaultMask::new();
            mask.fail_node(core);
            mask.fail_link(&serial, victim, 0);
            let mut serial_run = serial.clone();
            serial_run.repair_routes(&mask);
            par.repair_routes(&mask);
            assert_eq!(
                route_tables(&serial_run),
                route_tables(&par),
                "failure repair, threads={threads}"
            );
            mask.restore_node(core);
            mask.restore_link(&serial_run, victim, 0);
            serial_run.repair_routes(&mask);
            par.repair_routes(&mask);
            assert_eq!(
                route_tables(&serial_run),
                route_tables(&par),
                "restore repair, threads={threads}"
            );
            assert_eq!(
                route_tables(&serial),
                route_tables(&par),
                "restored tables must match pristine, threads={threads}"
            );
        }
    }

    #[test]
    fn repair_single_link_matches_full_and_rebuilds_few() {
        // Fail one agg–core link on a k=4 fat-tree: only the core's
        // single path into the agg's pod empties, so just that pod's
        // hosts (4 of 16) need a BFS rebuild. The true core layer is the
        // last-added (k/2)² nodes (`core_switches()` includes aggs).
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = NodeId(pristine.node_count() as u32 - 1);
        let mut mask = FaultMask::new();
        mask.fail_link(&pristine, core, 0);

        let mut full = pristine.clone();
        full.compute_routes_masked(&mask);
        let mut repaired = pristine.clone();
        let outcome = repaired.repair_routes(&mask);
        assert!(!outcome.full, "single link failure must repair in place");
        assert!(
            outcome.dests_rebuilt <= 4,
            "at most one pod's hosts rebuilt (got {})",
            outcome.dests_rebuilt
        );
        assert!(outcome.dests_touched > 0, "surgery must remove dead ports");
        assert_eq!(
            route_tables(&full),
            route_tables(&repaired),
            "repair must be exact"
        );
    }

    #[test]
    fn repair_core_switch_is_pure_surgery() {
        // Killing a whole core-layer switch changes no distances on a
        // fat-tree (every agg keeps an equal-cost sibling core), so the
        // repair is pure port-list surgery: zero BFS rebuilds. Note
        // `core_switches()` also returns aggs (any host-free switch);
        // the true core layer is the last-added (k/2)² nodes.
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = NodeId(pristine.node_count() as u32 - 1);
        let mut mask = FaultMask::new();
        mask.fail_node(core);
        let mut full = pristine.clone();
        full.compute_routes_masked(&mask);
        let mut repaired = pristine.clone();
        let outcome = repaired.repair_routes(&mask);
        assert!(!outcome.full);
        assert_eq!(outcome.dests_rebuilt, 0, "no distance changed");
        assert_eq!(route_tables(&full), route_tables(&repaired));
    }

    #[test]
    fn repair_sequential_faults_track_full_recompute() {
        // Grow the mask one failure at a time; each repair must leave the
        // tables identical to a from-scratch recomputation of the
        // accumulated mask.
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let cores = pristine.core_switches();
        let mut mask = FaultMask::new();
        let mut repaired = pristine.clone();
        for (step, &victim) in cores.iter().take(2).enumerate() {
            mask.fail_node(victim);
            repaired.repair_routes(&mask);
            let mut full = pristine.clone();
            full.compute_routes_masked(&mask);
            assert_eq!(
                route_tables(&full),
                route_tables(&repaired),
                "divergence after step {step}"
            );
        }
    }

    #[test]
    fn repair_restores_incrementally_on_every_layer() {
        // The true core layer is the last-added (k/2)² nodes
        // (`core_switches()` also returns aggs).
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let core = NodeId(t.node_count() as u32 - 1);
        let mut mask = FaultMask::new();
        mask.fail_node(core);
        assert!(!t.repair_routes(&mask).full);
        // Restoring the core re-adds equal-cost capacity without
        // changing any distance on a fat-tree: pure restore surgery.
        mask.restore_node(core);
        let outcome = t.repair_routes(&mask);
        assert!(!outcome.full, "restoration must repair incrementally");
        assert_eq!(outcome.restored, 1);
        assert_eq!(outcome.dests_rebuilt, 0, "no distance shrank");
        let healthy = Topology::fat_tree(4, 1_000_000_000, 10_000);
        assert_eq!(route_tables(&t), route_tables(&healthy));
        // An aggregation switch's death cuts its group's cores off from
        // the pod; the restoration must rebuild exactly that pod's
        // columns (where distances genuinely changed) and still match.
        let mut t2 = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let agg = t2.core_switches()[0]; // host-free ⇒ agg or core; [0] is an agg
        let mut m2 = FaultMask::new();
        m2.fail_node(agg);
        t2.repair_routes(&m2);
        m2.restore_node(agg);
        let o2 = t2.repair_routes(&m2);
        assert!(!o2.full, "agg restoration must repair incrementally");
        assert_eq!(o2.dests_rebuilt, 4, "one pod's host columns rebuilt");
        assert_eq!(route_tables(&t2), route_tables(&healthy));
        // Layered policies repair incrementally too — the old
        // non-minimal full-recompute fallback is gone. A host-link flap
        // on a 3-layer Jellyfish dirties exactly one column per layer
        // (hosts are leaves), so both deltas must be surgical and land
        // exactly on the from-scratch tables.
        let mut lt = Topology::jellyfish(12, 3, 2, 1_000_000_000, 10_000, 3);
        lt.set_policy(RoutingPolicy::layered(3, 11));
        lt.compute_routes();
        let layered_pristine = lt.clone();
        let victim_host = lt.hosts()[0];
        let mut m3 = FaultMask::new();
        m3.fail_link(&lt, victim_host, 0);
        let fail_outcome = lt.repair_routes(&m3);
        assert!(
            !fail_outcome.full,
            "layered host-link failure must repair incrementally"
        );
        let mut layered_full = layered_pristine.clone();
        layered_full.compute_routes_masked(&m3);
        assert_eq!(route_tables(&lt), route_tables(&layered_full));
        m3.restore_link(&lt, victim_host, 0);
        let o3 = lt.repair_routes(&m3);
        assert!(!o3.full, "layered restoration must repair incrementally");
        assert_eq!(o3.restored, 1);
        assert_eq!(
            o3.dests_rebuilt,
            lt.layer_count(),
            "only the cut host's column per layer"
        );
        assert_eq!(route_tables(&lt), route_tables(&layered_pristine));
        // An inter-switch link's blast radius on a weighted layer can
        // legitimately exceed the mass-delta threshold (weighted columns
        // often advertise a single port) — but fallback or surgery, the
        // repaired tables must equal a from-scratch recompute.
        let mut sw = layered_pristine.clone();
        let mut m4 = FaultMask::new();
        m4.fail_link(&sw, NodeId(0), 0);
        sw.repair_routes(&m4);
        let mut sw_full = layered_pristine.clone();
        sw_full.compute_routes_masked(&m4);
        assert_eq!(route_tables(&sw), route_tables(&sw_full));
        m4.restore_link(&sw, NodeId(0), 0);
        sw.repair_routes(&m4);
        assert_eq!(route_tables(&sw), route_tables(&layered_pristine));
    }

    #[test]
    fn restore_repair_link_and_host_cases() {
        // A host link flaps down and up: the restoration rebuilds only
        // the cut host's own column (its distance was genuinely cut to
        // MAX) and re-advertises the link everywhere else in place.
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let victim = pristine.hosts()[0];
        let mut t = pristine.clone();
        let mut mask = FaultMask::new();
        mask.fail_link(&t, victim, 0);
        assert!(!t.repair_routes(&mask).full);
        mask.restore_link(&t, victim, 0);
        let outcome = t.repair_routes(&mask);
        assert!(!outcome.full, "link restoration must repair in place");
        assert_eq!(outcome.restored, 1);
        assert_eq!(
            outcome.dests_rebuilt, 1,
            "only the cut host's column is rebuilt"
        );
        assert_eq!(route_tables(&t), route_tables(&pristine));

        // A whole host (node) dies and revives: same exactness.
        let mut t2 = pristine.clone();
        let mut m2 = FaultMask::new();
        m2.fail_node(victim);
        assert!(!t2.repair_routes(&m2).full);
        m2.restore_node(victim);
        let o2 = t2.repair_routes(&m2);
        assert!(!o2.full, "host restoration must repair in place");
        assert_eq!(route_tables(&t2), route_tables(&pristine));
    }

    #[test]
    fn restore_repair_rebuilds_on_distance_shrink() {
        // A triangle a—b—c with hosts at a and c plus ballast hosts at b
        // (so two dirty columns stay under the mass-delta threshold).
        // Failing the a—c shortcut forces the long way; restoring it
        // must shrink distances back, which only a BFS rebuild can do.
        let mut t = Topology::new();
        let h0 = t.add_node(NodeKind::Host);
        let a = t.add_node(NodeKind::Switch);
        let b = t.add_node(NodeKind::Switch);
        let c = t.add_node(NodeKind::Switch);
        let h1 = t.add_node(NodeKind::Host);
        t.connect(h0, a, 1_000_000_000, 10_000);
        t.connect(a, b, 1_000_000_000, 10_000);
        t.connect(b, c, 1_000_000_000, 10_000);
        t.connect(a, c, 1_000_000_000, 10_000); // the shortcut
        t.connect(c, h1, 1_000_000_000, 10_000);
        for _ in 0..6 {
            let hb = t.add_node(NodeKind::Host);
            t.connect(hb, b, 1_000_000_000, 10_000);
        }
        t.compute_routes();
        let pristine = t.clone();
        assert_eq!(t.path_hops(h0, h1), 3, "shortcut path");
        let mut mask = FaultMask::new();
        // Port 2 on a is the a—c shortcut (ports: h0, b, c).
        mask.fail_link(&t, a, 2);
        t.repair_routes(&mask);
        assert_eq!(t.path_hops(h0, h1), 4, "detour through b");
        mask.restore_link(&t, a, 2);
        let outcome = t.repair_routes(&mask);
        assert!(!outcome.full);
        assert!(
            outcome.dests_rebuilt >= 1,
            "shrinking distances need a BFS rebuild"
        );
        assert_eq!(route_tables(&t), route_tables(&pristine));
        assert_eq!(t.path_hops(h0, h1), 3, "shortcut back in use");
    }

    #[test]
    fn repair_after_policy_change_takes_full_fallback() {
        // Changing the policy (even just its seed) without recomputing
        // invalidates the weight tables surgery would run against; the
        // next repair must fall back to a full recompute under the new
        // policy and land exactly on its from-scratch tables.
        let mut t = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        t.set_policy(RoutingPolicy::layered(2, 1));
        t.compute_routes();
        t.set_policy(RoutingPolicy::layered(2, 2)); // same count, new seed
        let mut mask = FaultMask::new();
        mask.fail_link(&t, NodeId(0), 0);
        assert!(t.repair_routes(&mask).full, "stale weights force fallback");
        let mut fresh = Topology::jellyfish(8, 3, 1, 1_000_000_000, 10_000, 3);
        fresh.set_policy(RoutingPolicy::layered(2, 2));
        fresh.compute_routes_masked(&mask);
        assert_eq!(route_tables(&t), route_tables(&fresh));
        // With the policy stable again, the next delta repairs in place.
        mask.restore_link(&t, NodeId(0), 0);
        assert!(!t.repair_routes(&mask).full);
    }

    #[test]
    fn repair_with_no_delta_is_a_noop() {
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let before = route_tables(&t);
        let outcome = t.repair_routes(&FaultMask::new());
        assert!(!outcome.full);
        assert_eq!(outcome.dests_rebuilt + outcome.dests_touched, 0);
        assert_eq!(route_tables(&t), before);
    }

    #[test]
    fn repair_host_link_rebuilds_only_that_host() {
        // A dying host uplink cuts exactly one destination; everyone
        // else's trees route around nothing (hosts are leaves).
        let pristine = Topology::fat_tree(4, 1_000_000_000, 10_000);
        let victim = pristine.hosts()[0];
        let mut mask = FaultMask::new();
        mask.fail_link(&pristine, victim, 0);
        let mut full = pristine.clone();
        full.compute_routes_masked(&mask);
        let mut repaired = pristine.clone();
        let outcome = repaired.repair_routes(&mask);
        assert!(!outcome.full);
        assert_eq!(outcome.dests_rebuilt, 1, "only the cut host's tree");
        assert_eq!(route_tables(&full), route_tables(&repaired));
        assert!(repaired
            .try_next_ports(pristine.hosts()[1], victim)
            .is_empty());
    }

    #[test]
    fn masked_recompute_leaves_cut_hosts_unroutable() {
        let mut t = Topology::leaf_spine(2, 2, 2, 1.0, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let leaf = t.edge_switch(hosts[0]);
        let mut mask = FaultMask::new();
        mask.fail_node(leaf);
        t.compute_routes_masked(&mask);
        // Hosts behind the dead leaf are unreachable...
        assert!(t.try_next_ports(hosts[2], hosts[0]).is_empty());
        // ...but the other leaf's hosts still reach each other.
        assert!(!t.try_next_ports(hosts[2], hosts[3]).is_empty());
    }

    #[test]
    fn csr_invariants_hold_after_build_and_repair() {
        let mut t = Topology::fat_tree(4, 1_000_000_000, 10_000);
        t.check_csr_invariants();
        let mut mask = FaultMask::new();
        mask.fail_node(NodeId(t.node_count() as u32 - 1));
        t.repair_routes(&mask);
        t.check_csr_invariants();
        mask.restore_node(NodeId(t.node_count() as u32 - 1));
        t.repair_routes(&mask);
        t.check_csr_invariants();
    }
}
