//! Port queues: classic drop-tail and the NDP trimming queue.
//!
//! The NDP switch service discipline (paper §2, citing Handley et al.)
//! keeps two queues per output port:
//!
//! * a short **data queue** — when it overflows, the arriving packet is
//!   *trimmed* to its header and requeued as a control packet instead of
//!   being dropped, so the receiver always learns what was sent;
//! * a **header queue** for control traffic (pulls, ACKs, trimmed
//!   headers) served with strict priority. Headers are ~64 B against
//!   1500 B data packets, so priority service costs little bandwidth but
//!   bounds control-plane latency even under persistent congestion.

use std::collections::VecDeque;

use crate::packet::{Packet, SimPayload};

/// Queue discipline configuration for a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueConfig {
    /// Single FIFO with a packet-count capacity; overflow drops. The TCP
    /// baseline runs on this.
    DropTail {
        /// Maximum queued packets.
        cap_pkts: usize,
    },
    /// NDP dual queue with trimming.
    Ndp {
        /// Data-queue capacity in packets (NDP uses ~8).
        data_cap_pkts: usize,
        /// Header-queue capacity in packets.
        header_cap_pkts: usize,
    },
}

impl QueueConfig {
    /// The NDP configuration used throughout the paper's experiments.
    pub const NDP_DEFAULT: QueueConfig = QueueConfig::Ndp {
        data_cap_pkts: 8,
        header_cap_pkts: 1024,
    };
    /// A shallow drop-tail queue typical of commodity data-centre
    /// switches (~48 KB per port at 1500 B packets); both the paper and
    /// the classic Incast studies assume this regime.
    pub const DROPTAIL_DEFAULT: QueueConfig = QueueConfig::DropTail { cap_pkts: 32 };
}

/// What happened to an enqueued packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueued {
    /// Stored intact.
    Queued,
    /// Payload trimmed; header stored in the priority queue.
    Trimmed,
    /// Dropped entirely.
    Dropped,
}

/// Counters a queue maintains (read by the experiment harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Packets enqueued intact.
    pub enqueued: u64,
    /// Packets trimmed to headers.
    pub trimmed: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Bytes dequeued for transmission.
    pub tx_bytes: u64,
    /// High-water mark of the data queue, in packets.
    pub max_depth: usize,
}

/// A single output-port queue.
#[derive(Debug)]
pub struct PortQueue<P> {
    config: QueueConfig,
    data: VecDeque<Packet<P>>,
    headers: VecDeque<Packet<P>>,
    stats: QueueStats,
}

impl<P: SimPayload> PortQueue<P> {
    /// New empty queue with the given discipline.
    pub fn new(config: QueueConfig) -> Self {
        Self {
            config,
            data: VecDeque::new(),
            headers: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// Offer a packet to the queue.
    pub fn enqueue(&mut self, pkt: Packet<P>) -> Enqueued {
        match self.config {
            QueueConfig::DropTail { cap_pkts } => {
                if self.data.len() >= cap_pkts {
                    self.stats.dropped += 1;
                    Enqueued::Dropped
                } else {
                    self.data.push_back(pkt);
                    self.stats.enqueued += 1;
                    self.stats.max_depth = self.stats.max_depth.max(self.data.len());
                    Enqueued::Queued
                }
            }
            QueueConfig::Ndp {
                data_cap_pkts,
                header_cap_pkts,
            } => {
                if pkt.payload.is_control() {
                    if self.headers.len() >= header_cap_pkts {
                        self.stats.dropped += 1;
                        Enqueued::Dropped
                    } else {
                        self.headers.push_back(pkt);
                        self.stats.enqueued += 1;
                        Enqueued::Queued
                    }
                } else if self.data.len() < data_cap_pkts {
                    self.data.push_back(pkt);
                    self.stats.enqueued += 1;
                    self.stats.max_depth = self.stats.max_depth.max(self.data.len());
                    Enqueued::Queued
                } else {
                    // Data queue full: trim to header, priority-forward.
                    match pkt.trimmed() {
                        Some(header) if self.headers.len() < header_cap_pkts => {
                            self.headers.push_back(header);
                            self.stats.trimmed += 1;
                            Enqueued::Trimmed
                        }
                        _ => {
                            self.stats.dropped += 1;
                            Enqueued::Dropped
                        }
                    }
                }
            }
        }
    }

    /// Take the next packet to transmit (headers served with strict
    /// priority under NDP).
    pub fn dequeue(&mut self) -> Option<Packet<P>> {
        let pkt = if let Some(h) = self.headers.pop_front() {
            Some(h)
        } else {
            self.data.pop_front()
        };
        if let Some(ref p) = pkt {
            self.stats.tx_bytes += u64::from(p.size);
        }
        pkt
    }

    /// Discard everything queued (fault injection: the port's link or
    /// switch died with packets waiting). Returns the number of packets
    /// lost; the simulator accounts them as fault losses, so the queue's
    /// own `dropped` counter (congestion drops) is not touched.
    pub fn flush(&mut self) -> usize {
        let n = self.data.len() + self.headers.len();
        self.data.clear();
        self.headers.clear();
        n
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.headers.is_empty()
    }

    /// Packets currently queued (data + headers).
    pub fn len(&self) -> usize {
        self.data.len() + self.headers.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Dest, FlowId, HEADER_BYTES};
    use crate::topology::NodeId;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Data,
        Hdr,
        Pull,
    }

    impl SimPayload for P {
        fn is_control(&self) -> bool {
            matches!(self, P::Hdr | P::Pull)
        }
        fn trim(&self) -> Option<Self> {
            match self {
                P::Data => Some(P::Hdr),
                other => Some(other.clone()),
            }
        }
    }

    fn pkt(payload: P) -> Packet<P> {
        let size = if payload.is_control() {
            HEADER_BYTES
        } else {
            1500
        };
        Packet {
            src: NodeId(0),
            dst: Dest::Host(NodeId(1)),
            flow: FlowId(1),
            size,
            payload,
        }
    }

    #[test]
    fn droptail_drops_at_capacity() {
        let mut q = PortQueue::new(QueueConfig::DropTail { cap_pkts: 2 });
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Queued);
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Queued);
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn ndp_trims_on_overflow() {
        let mut q = PortQueue::new(QueueConfig::Ndp {
            data_cap_pkts: 1,
            header_cap_pkts: 10,
        });
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Queued);
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Trimmed);
        assert_eq!(q.stats().trimmed, 1);
        // The trimmed header is HEADER_BYTES and control-class.
        let first = q.dequeue().unwrap(); // header queue has priority
        assert_eq!(first.size, HEADER_BYTES);
        assert_eq!(first.payload, P::Hdr);
    }

    #[test]
    fn ndp_header_priority() {
        let mut q = PortQueue::new(QueueConfig::NDP_DEFAULT);
        q.enqueue(pkt(P::Data));
        q.enqueue(pkt(P::Pull));
        // The pull arrived second but departs first.
        assert_eq!(q.dequeue().unwrap().payload, P::Pull);
        assert_eq!(q.dequeue().unwrap().payload, P::Data);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn ndp_header_queue_overflow_drops() {
        let mut q = PortQueue::new(QueueConfig::Ndp {
            data_cap_pkts: 1,
            header_cap_pkts: 1,
        });
        assert_eq!(q.enqueue(pkt(P::Pull)), Enqueued::Queued);
        assert_eq!(q.enqueue(pkt(P::Pull)), Enqueued::Dropped);
        // Data overflow with full header queue also drops.
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Queued);
        assert_eq!(q.enqueue(pkt(P::Data)), Enqueued::Dropped);
    }

    #[test]
    fn fifo_order_within_class() {
        let mut q = PortQueue::new(QueueConfig::NDP_DEFAULT);
        let mut a = pkt(P::Data);
        a.flow = FlowId(1);
        let mut b = pkt(P::Data);
        b.flow = FlowId(2);
        q.enqueue(a);
        q.enqueue(b);
        assert_eq!(q.dequeue().unwrap().flow, FlowId(1));
        assert_eq!(q.dequeue().unwrap().flow, FlowId(2));
    }

    #[test]
    fn tx_bytes_counted() {
        let mut q = PortQueue::new(QueueConfig::NDP_DEFAULT);
        q.enqueue(pkt(P::Data));
        q.enqueue(pkt(P::Pull));
        q.dequeue();
        q.dequeue();
        assert_eq!(q.stats().tx_bytes, 1500 + u64::from(HEADER_BYTES));
    }
}
