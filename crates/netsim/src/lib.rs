//! # `netsim` — deterministic packet-level data-centre network simulator
//!
//! The substrate under the Polyraptor reproduction: an event-driven
//! (smoltcp-style explicit, no async runtime — simulation is pure
//! computation) discrete-event simulator with:
//!
//! * integer-nanosecond clock (1 Gbps ⇒ 1 bit/ns, all delays exact);
//! * store-and-forward links with per-link rate and propagation delay;
//! * drop-tail **and** NDP trimming/dual-priority switch queues;
//! * fat-tree, leaf–spine, and Jellyfish (random regular graph)
//!   topology builders with FatPaths-style path-diversity layers
//!   ([`topology::RoutingPolicy`]: layer 0 = shortest-path ECMP, extra
//!   layers = seeded near-disjoint link subsets with 2× bounded
//!   stretch), per-flow or per-packet layer assignment with
//!   re-assignment away from dead layers, and per-flow ECMP or
//!   per-packet spraying forwarding within a layer;
//! * scripted mid-run fault injection ([`fault::FaultPlan`]): link,
//!   switch, and host failures with incremental route repair (including
//!   restore repair and flap coalescing), multicast-tree repair, and
//!   fault-aware loss accounting — plus a seeded Poisson fault
//!   generator ([`fault::FaultProcess`]) for sustained churn;
//! * in-network multicast over deterministic forwarding trees;
//! * a transport-agnostic [`sim::Agent`] hook — Polyraptor and the TCP
//!   baseline plug in without `netsim` knowing either.
//!
//! Determinism is a contract: same seed ⇒ bit-identical event order and
//! results (the RNG is a local PCG32, never the `rand` crate, so results
//! survive dependency upgrades).
//!
//! ## Example: two hosts through one switch
//!
//! ```
//! use netsim::{Agent, Ctx, Dest, FlowId, Packet, SimConfig, SimPayload,
//!              SimTime, Simulator, Topology, NodeKind};
//!
//! #[derive(Debug, Clone)]
//! enum Ping { Data, Header }
//! impl SimPayload for Ping {
//!     fn is_control(&self) -> bool { matches!(self, Ping::Header) }
//!     fn trim(&self) -> Option<Self> { Some(Ping::Header) }
//! }
//!
//! struct App { got: usize }
//! impl Agent<Ping> for App {
//!     fn on_packet(&mut self, _p: Packet<Ping>, _ctx: &mut Ctx<Ping>) { self.got += 1; }
//!     fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<Ping>) {
//!         let dst = netsim::NodeId(2);
//!         ctx.send(Packet { src: ctx.node, dst: Dest::Host(dst),
//!                           flow: FlowId(1), size: 1500, payload: Ping::Data });
//!     }
//! }
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node(NodeKind::Host);
//! let s = topo.add_node(NodeKind::Switch);
//! let b = topo.add_node(NodeKind::Host);
//! topo.connect(a, s, 1_000_000_000, 10_000);
//! topo.connect(b, s, 1_000_000_000, 10_000);
//! topo.compute_routes();
//!
//! let mut sim = Simulator::new(topo, SimConfig::ndp(42));
//! sim.set_agent(a, App { got: 0 });
//! sim.set_agent(b, App { got: 0 });
//! sim.schedule_timer(a, SimTime::ZERO, 0);
//! sim.run_to_completion();
//! assert_eq!(sim.agent(b).got, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod packet;
pub mod par;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod telemetry;
pub mod time;
pub mod topology;

pub use fault::{
    FaultAction, FaultEvent, FaultMask, FaultMix, FaultPlan, FaultProcess, HostFailure,
};
pub use packet::{Dest, FlowId, GroupId, Packet, SimPayload, HEADER_BYTES};
pub use queue::{Enqueued, PortQueue, QueueConfig, QueueStats};
pub use rng::Pcg32;
pub use shard::ShardPlan;
pub use sim::{
    ecmp_choice, layer_choice, Agent, Ctx, FabricStats, LayerAssign, RouteMode, SimConfig,
    Simulator,
};
pub use telemetry::{
    Annotation, AnomalyKind, Bucket, FabricEvent, FlightDump, FlowSpanEvent, NoTelemetry,
    PortProbe, PortSample, Recorder, RingBuffer, SpanMark, TelemetryConfig, TelemetrySink,
    TraceBuilder,
};
pub use time::{serialization_ns, SimTime};
pub use topology::{NodeId, NodeKind, Port, RouteRepair, RoutingPolicy, Topology};
