//! Deterministic random number generation for the simulator.
//!
//! PCG32 seeded through SplitMix64. Implemented locally (rather than via
//! the `rand` crate) so that a simulation seed reproduces the identical
//! event sequence regardless of dependency versions — determinism is part
//! of the simulator's contract (results in EXPERIMENTS.md cite seeds).

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// PCG-XSH-RR 32-bit generator (O'Neill 2014).
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a seed; the stream selector is derived
    /// from the seed as well.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator (for per-entity streams).
    pub fn fork(&mut self, tag: u64) -> Pcg32 {
        Pcg32::new(u64::from(self.next_u32()) << 32 ^ u64::from(self.next_u32()) ^ tag)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        u64::from(self.next_u32()) << 32 | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method); used for Poisson inter-arrival times.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let mut u = self.f64();
        // Guard the log; f64() can return exactly 0.
        if u <= 0.0 {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly random derangement-free permutation of `0..n` with no
    /// fixed points (for permutation traffic matrices, where a host must
    /// not send to itself). Uses rejection sampling; expected ~e tries.
    pub fn derangement(&mut self, n: usize) -> Vec<usize> {
        assert!(n >= 2, "derangement needs n >= 2");
        let mut perm: Vec<usize> = (0..n).collect();
        loop {
            self.shuffle(&mut perm);
            if perm.iter().enumerate().all(|(i, &p)| i != p) {
                return perm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::new(123);
        let mut b = Pcg32::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_bounds_and_uniformity() {
        let mut rng = Pcg32::new(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(9);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = Pcg32::new(11);
        let n = 200_000;
        let mean = 390.625; // 1/2560 seconds in µs — the paper's λ
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.02,
            "sample mean {sample_mean} vs {mean}"
        );
    }

    #[test]
    fn derangement_has_no_fixed_points() {
        let mut rng = Pcg32::new(5);
        for n in [2usize, 3, 10, 250] {
            let p = rng.derangement(n);
            assert_eq!(p.len(), n);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "not a permutation");
            assert!(
                p.iter().enumerate().all(|(i, &x)| i != x),
                "fixed point found"
            );
        }
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = Pcg32::new(1);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 3);
    }
}
