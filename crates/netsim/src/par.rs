//! Scoped-thread chunked scatter for pure per-item work.
//!
//! No registry access means no rayon; this is the minimal house-style
//! replacement (compare the offline shims in `crates/shims/`): split a
//! job list into at most `threads` contiguous chunks and run each chunk
//! on a scoped `std::thread`. Every job owns its output — disjoint
//! `&mut` slices carved out of a shared arena by the caller — and reads
//! only shared immutable context, so each job is a pure function of
//! (context, job) and the result is byte-identical to the serial loop
//! for any thread count. Parallelism is a pure throughput knob, never a
//! behaviour knob.
//!
//! The route-computation paths in [`crate::topology`] are the intended
//! consumer: per-(layer, destination-column) rebuilds are independent
//! and each column is a contiguous slice of the column-major arenas.

/// Resolve a user-facing parallelism knob: `0` = one worker per
/// available core (as the OS reports it — cgroup and affinity limits
/// included), anything else is taken literally. Always ≥ 1.
pub fn resolve(parallelism: usize) -> usize {
    if parallelism == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        parallelism
    }
}

/// Run `f` over every job in order, fanning out to at most `threads`
/// scoped workers, each with its own scratch value from `scratch()`.
///
/// With `threads <= 1` — or fewer than two jobs — this is exactly the
/// serial loop on the calling thread: no thread is spawned, so a
/// parallelism-1 caller keeps the pre-parallel code path and its
/// byte-identity guarantees trivially. Otherwise jobs are split into
/// contiguous chunks, one scoped worker per chunk; workers never share
/// output (each job owns disjoint `&mut` slices) and never see each
/// other's scratch, so scheduling order cannot influence the result.
pub fn scatter<J, S, F, G>(threads: usize, jobs: Vec<J>, scratch: G, f: F)
where
    J: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, J) + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        let mut s = scratch();
        for job in jobs {
            f(&mut s, job);
        }
        return;
    }
    let workers = threads.min(jobs.len());
    let chunk = jobs.len().div_ceil(workers);
    let mut jobs = jobs.into_iter();
    let (f, scratch) = (&f, &scratch);
    std::thread::scope(|scope| loop {
        let batch: Vec<J> = jobs.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        scope.spawn(move || {
            let mut s = scratch();
            for job in batch {
                f(&mut s, job);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_at_least_one() {
        assert!(resolve(0) >= 1);
        assert_eq!(resolve(1), 1);
        assert_eq!(resolve(7), 7);
    }

    /// Any thread count produces the same output as the serial loop,
    /// including thread counts above the job count.
    #[test]
    fn scatter_matches_serial_for_any_thread_count() {
        let n = 103usize;
        let mut expect = vec![0u64; n];
        for (i, slot) in expect.iter_mut().enumerate() {
            *slot = (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD;
        }
        for threads in [1, 2, 3, 4, 8, 200] {
            let mut out = vec![0u64; n];
            let jobs: Vec<(usize, &mut u64)> = out.iter_mut().enumerate().collect();
            scatter(
                threads,
                jobs,
                || (),
                |(), (i, slot)| {
                    *slot = (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD;
                },
            );
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    /// Each worker gets its own scratch: a scratch that accumulates
    /// per-worker state never leaks across jobs of other workers, and
    /// the serial path reuses one scratch across all jobs (the same
    /// contract `ColumnScratch` relies on).
    #[test]
    fn scatter_scratch_is_per_worker() {
        let mut out = vec![0usize; 64];
        let jobs: Vec<&mut usize> = out.iter_mut().collect();
        // Record how many jobs this worker's scratch has seen so far;
        // with 4 workers over 64 jobs each chunk restarts at 1.
        scatter(
            4,
            jobs,
            || 0usize,
            |seen, slot| {
                *seen += 1;
                *slot = *seen;
            },
        );
        let max_chunk = 64usize.div_ceil(4);
        assert!(out.iter().all(|&c| (1..=max_chunk).contains(&c)));
        assert_eq!(out.iter().filter(|&&c| c == 1).count(), 4);
    }
}
