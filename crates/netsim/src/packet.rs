//! Packets and payloads.
//!
//! The simulator is generic over the transport payload type `P`, which
//! must implement [`SimPayload`]. This keeps `netsim` free of transport
//! knowledge (Polyraptor and TCP define their own payload enums) while
//! letting switches perform the two NDP operations that need payload
//! cooperation: *classification* (control packets ride the priority
//! header queue) and *trimming* (drop a data packet's payload, forward
//! the header).

use crate::topology::NodeId;

/// Identifies a transport session/flow end-to-end. Switch ECMP hashing
/// keys on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A multicast group handle, valid after registration with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Packet destination: a single host or a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Unicast to one host.
    Host(NodeId),
    /// Multicast along the group's tree (must be registered).
    Group(GroupId),
}

/// Behaviour the switch fabric needs from a transport payload.
pub trait SimPayload: Clone + std::fmt::Debug {
    /// Whether this packet belongs in the priority (header/control)
    /// queue: pull requests, ACKs, trimmed headers, session control.
    fn is_control(&self) -> bool;

    /// Produce the trimmed version of this payload (NDP packet
    /// trimming), or `None` if the payload cannot be meaningfully
    /// trimmed — in which case the switch drops the packet instead
    /// (classic drop-tail behaviour, used by the TCP baseline).
    fn trim(&self) -> Option<Self>;
}

/// A simulated packet.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Originating host.
    pub src: NodeId,
    /// Destination host or group.
    pub dst: Dest,
    /// Flow identifier (ECMP hash key).
    pub flow: FlowId,
    /// Total on-the-wire size in bytes (headers + payload).
    pub size: u32,
    /// Transport payload.
    pub payload: P,
}

/// Conventional size of a bare header packet after trimming, per NDP:
/// enough for addressing plus the transport header.
pub const HEADER_BYTES: u32 = 64;

impl<P: SimPayload> Packet<P> {
    /// Trim this packet to a header-only packet, if the payload allows.
    pub fn trimmed(&self) -> Option<Packet<P>> {
        self.payload.trim().map(|payload| Packet {
            src: self.src,
            dst: self.dst,
            flow: self.flow,
            size: HEADER_BYTES,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Data,
        DataTrimmed,
        Ctrl,
        Untrimmable,
    }

    impl SimPayload for P {
        fn is_control(&self) -> bool {
            matches!(self, P::Ctrl | P::DataTrimmed)
        }
        fn trim(&self) -> Option<Self> {
            match self {
                P::Data => Some(P::DataTrimmed),
                P::Untrimmable => None,
                other => Some(other.clone()),
            }
        }
    }

    fn pkt(payload: P) -> Packet<P> {
        Packet {
            src: NodeId(0),
            dst: Dest::Host(NodeId(1)),
            flow: FlowId(42),
            size: 1500,
            payload,
        }
    }

    #[test]
    fn trim_preserves_addressing() {
        let p = pkt(P::Data);
        let t = p.trimmed().expect("data packets trim");
        assert_eq!(t.src, p.src);
        assert_eq!(t.dst, p.dst);
        assert_eq!(t.flow, p.flow);
        assert_eq!(t.size, HEADER_BYTES);
        assert_eq!(t.payload, P::DataTrimmed);
    }

    #[test]
    fn untrimmable_payload_yields_none() {
        assert!(pkt(P::Untrimmable).trimmed().is_none());
    }

    #[test]
    fn control_payload_trims_to_itself() {
        let p = pkt(P::Ctrl);
        assert!(p.payload.is_control());
        let t = p.trimmed().expect("control packets survive trimming");
        assert_eq!(t.payload, P::Ctrl);
        assert_eq!(t.size, HEADER_BYTES);
    }
}
