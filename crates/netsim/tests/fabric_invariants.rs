//! Property tests on fabric invariants: routing consistency and
//! multicast tree correctness over randomized inputs.

use netsim::Topology;
use proptest::prelude::*;

fn fat_tree_ks() -> impl Strategy<Value = usize> {
    prop_oneof![Just(4usize), Just(6), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every host pair is connected by shortest paths whose hop count is
    /// one of the three fat-tree distances (2, 4, 6).
    #[test]
    fn path_lengths_are_fat_tree_distances(k in fat_tree_ks(), pair_seed in any::<u64>()) {
        let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut rng = netsim::Pcg32::new(pair_seed);
        for _ in 0..16 {
            let a = hosts[rng.below(hosts.len() as u64) as usize];
            let b = hosts[rng.below(hosts.len() as u64) as usize];
            if a == b { continue; }
            let hops = t.path_hops(a, b);
            prop_assert!(hops == 2 || hops == 4 || hops == 6, "odd hop count {}", hops);
        }
    }

    /// next_ports always step strictly closer: following any advertised
    /// port from any node reaches the destination without loops.
    #[test]
    fn all_multipath_choices_reach_destination(k in fat_tree_ks(), seed in any::<u64>()) {
        let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut rng = netsim::Pcg32::new(seed);
        let a = hosts[rng.below(hosts.len() as u64) as usize];
        let b = hosts[(rng.below(hosts.len() as u64 - 1) as usize + 1 + t.host_index(a))
            % hosts.len()];
        if a == b { return Ok(()); }
        // Random walk over advertised next hops must terminate.
        let mut at = a;
        let mut steps = 0;
        while at != b {
            let choices = t.next_ports(at, b);
            let pick = choices[rng.below(choices.len() as u64) as usize];
            at = t.port(at, pick).peer;
            steps += 1;
            prop_assert!(steps <= 6, "walk exceeded fat-tree diameter");
        }
    }

    /// A multicast tree delivers exactly one copy per member and nothing
    /// to non-members, for arbitrary member sets.
    #[test]
    fn multicast_tree_exactness(k in fat_tree_ks(), seed in any::<u64>()) {
        use netsim::{Agent, Ctx, Dest, FlowId, Packet, SimConfig, SimPayload, SimTime, Simulator};

        #[derive(Debug, Clone)]
        struct P;
        impl SimPayload for P {
            fn is_control(&self) -> bool { false }
            fn trim(&self) -> Option<Self> { Some(P) }
        }
        struct Counter { got: u64, send_to: Option<netsim::GroupId> }
        impl Agent<P> for Counter {
            fn on_packet(&mut self, _p: Packet<P>, _c: &mut Ctx<P>) { self.got += 1; }
            fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<P>) {
                let g = self.send_to.expect("only the sender gets a timer");
                ctx.send(Packet {
                    src: ctx.node, dst: Dest::Group(g), flow: FlowId(1), size: 1500, payload: P,
                });
            }
        }

        let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut rng = netsim::Pcg32::new(seed);
        let sender = hosts[rng.below(hosts.len() as u64) as usize];
        let n_members = 1 + rng.below(6) as usize;
        let mut members = Vec::new();
        while members.len() < n_members {
            let m = hosts[rng.below(hosts.len() as u64) as usize];
            if m != sender && !members.contains(&m) {
                members.push(m);
            }
        }
        let mut sim: Simulator<P, Counter> = Simulator::new(t, SimConfig::ndp(seed));
        for &h in &hosts {
            sim.set_agent(h, Counter { got: 0, send_to: None });
        }
        let gid = sim.register_group(sender, &members);
        sim.agent_mut(sender).send_to = Some(gid);
        sim.schedule_timer(sender, SimTime::ZERO, 0);
        sim.run_to_completion();
        for &h in &hosts {
            let expected = u64::from(members.contains(&h));
            prop_assert_eq!(sim.agent(h).got, expected, "host {} copies", h.0);
        }
    }
}
