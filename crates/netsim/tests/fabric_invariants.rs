//! Property tests on fabric invariants: routing consistency and
//! multicast tree correctness over randomized inputs — on fat-trees,
//! leaf–spine fabrics, and Jellyfish random graphs, healthy and under
//! single failures.

// The proptest shim's declarative macro recurses once per test; eight
// tests in one block need more headroom than the default 128.
#![recursion_limit = "256"]

use netsim::{FaultMask, NodeId, NodeKind, RoutingPolicy, Topology};
use proptest::prelude::*;

fn fat_tree_ks() -> impl Strategy<Value = usize> {
    prop_oneof![Just(4usize), Just(6usize), Just(8usize)]
}

/// A generator covering all three topology families at proptest-sized
/// scales: (topology, human-readable label).
fn any_fabric() -> impl Strategy<Value = (Topology, String)> {
    prop_oneof![
        fat_tree_ks().prop_map(|k| (
            Topology::fat_tree(k, 1_000_000_000, 10_000),
            format!("fat_tree k={k}")
        )),
        (
            2usize..=4,
            1usize..=3,
            1usize..=4,
            prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)]
        )
            .prop_map(|(leaves, spines, hpl, oversub)| (
                Topology::leaf_spine(leaves, spines, hpl, oversub, 1_000_000_000, 10_000),
                format!("leaf_spine {leaves}x{spines}x{hpl} {oversub}:1")
            )),
        // Even switch counts only: stub matching needs switches × degree
        // even, and the degree here is 3.
        (3usize..=5, 1usize..=2, any::<u64>()).prop_map(|(half, hps, seed)| (
            Topology::jellyfish(half * 2, 3, hps, 1_000_000_000, 10_000, seed),
            format!("jellyfish sw={} hps={hps} seed={seed}", half * 2)
        )),
    ]
}

/// Walk advertised next-hops from `a` to `b` under a seeded picker;
/// returns the hop count, failing the walk if it exceeds `bound`.
fn random_walk(
    t: &Topology,
    rng: &mut netsim::Pcg32,
    a: NodeId,
    b: NodeId,
    bound: usize,
) -> Result<usize, TestCaseError> {
    let mut at = a;
    let mut steps = 0usize;
    while at != b {
        let choices = t.next_ports(at, b);
        let pick = choices[rng.below(choices.len() as u64) as usize];
        at = t.port(at, pick).peer;
        steps += 1;
        prop_assert!(steps <= bound, "walk exceeded {} hops", bound);
    }
    Ok(steps)
}

/// Reference nested-`Vec` rebuild of one layer's route tables and
/// distances: a textbook per-destination Dijkstra over the public
/// port/weight accessors, fully independent of the CSR arenas it
/// checks. Returns `(next_ports[node][host_idx], dist[node][host_idx])`
/// in the pre-refactor nested layout.
#[allow(clippy::type_complexity)]
fn reference_layer(
    t: &Topology,
    mask: &FaultMask,
    layer: usize,
) -> (Vec<Vec<Vec<u16>>>, Vec<Vec<Option<u32>>>) {
    use std::cmp::Reverse;
    let n = t.node_count();
    let hosts = t.hosts().to_vec();
    let mut ports_ref = vec![vec![Vec::new(); hosts.len()]; n];
    let mut dist_ref = vec![vec![None; hosts.len()]; n];
    for (h_idx, &host) in hosts.iter().enumerate() {
        let mut dist = vec![u32::MAX; n];
        if !mask.node_is_down(host) {
            dist[host.0 as usize] = 0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(Reverse((0u32, host.0)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                for (pi, p) in t.node_ports(NodeId(u)).iter().enumerate() {
                    if mask.link_is_down(NodeId(u), pi as u16) || mask.node_is_down(p.peer) {
                        continue;
                    }
                    let nd = d + u32::from(t.layer_link_weight(layer, NodeId(u), pi as u16));
                    if nd < dist[p.peer.0 as usize] {
                        dist[p.peer.0 as usize] = nd;
                        heap.push(Reverse((nd, p.peer.0)));
                    }
                }
            }
        }
        for u in 0..n {
            let node = NodeId(u as u32);
            dist_ref[u][h_idx] = (dist[u] != u32::MAX).then_some(dist[u]);
            if dist[u] == u32::MAX || node == host || mask.node_is_down(node) {
                continue;
            }
            for (pi, p) in t.node_ports(node).iter().enumerate() {
                if mask.link_is_down(node, pi as u16) || mask.node_is_down(p.peer) {
                    continue;
                }
                let dp = dist[p.peer.0 as usize];
                let w = u32::from(t.layer_link_weight(layer, node, pi as u16));
                if dp != u32::MAX && dp + w == dist[u] {
                    ports_ref[u][h_idx].push(pi as u16);
                }
            }
        }
    }
    (ports_ref, dist_ref)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The CSR arenas are equivalent to a reference nested-`Vec` build
    /// on every topology family under 1–3-layer policies and mixed
    /// fail/restore sequences: same next-port sets (in the same
    /// ascending order), same distances, offsets monotone, and no
    /// dangling indices (the latter two via `check_csr_invariants`,
    /// which panics on violation).
    #[test]
    fn csr_tables_match_reference_nested_build(
        fabric in any_fabric(),
        layers in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let (mut t, label) = fabric;
        if layers > 1 {
            t.set_policy(RoutingPolicy::layered(layers, seed ^ 0x0C5A));
            t.compute_routes();
        }
        let mut rng = netsim::Pcg32::new(seed);
        let mut links = Vec::new();
        for n in 0..t.node_count() as u32 {
            for (pi, p) in t.node_ports(NodeId(n)).iter().enumerate() {
                if p.peer.0 > n {
                    links.push((NodeId(n), pi as u16));
                }
            }
        }
        let mut nodes: Vec<NodeId> = t.core_switches();
        nodes.extend(t.hosts().iter().copied());
        let hosts = t.hosts().to_vec();
        let mut mask = FaultMask::new();
        let mut failed_links: Vec<(NodeId, u16)> = Vec::new();
        let mut failed_nodes: Vec<NodeId> = Vec::new();
        for step in 0..3 {
            let restore = !(failed_links.is_empty() && failed_nodes.is_empty())
                && rng.below(2) == 0;
            if restore {
                let pick_link = !failed_links.is_empty()
                    && (failed_nodes.is_empty() || rng.below(2) == 0);
                if pick_link {
                    let i = rng.below(failed_links.len() as u64) as usize;
                    let (n, p) = failed_links.swap_remove(i);
                    mask.restore_link(&t, n, p);
                } else {
                    let i = rng.below(failed_nodes.len() as u64) as usize;
                    mask.restore_node(failed_nodes.swap_remove(i));
                }
            } else if rng.below(2) == 0 {
                let (n, p) = links[rng.below(links.len() as u64) as usize];
                if !mask.link_is_down(n, p) {
                    mask.fail_link(&t, n, p);
                    failed_links.push((n, p));
                }
            } else {
                let w = nodes[rng.below(nodes.len() as u64) as usize];
                if !mask.node_is_down(w) {
                    mask.fail_node(w);
                    failed_nodes.push(w);
                }
            }
            t.repair_routes(&mask);
            t.check_csr_invariants();
            for layer in 0..t.layer_count() {
                let (ports_ref, dist_ref) = reference_layer(&t, &mask, layer);
                for n in 0..t.node_count() as u32 {
                    for (h_idx, &h) in hosts.iter().enumerate() {
                        prop_assert_eq!(
                            t.try_next_ports_on(layer, NodeId(n), h),
                            &ports_ref[n as usize][h_idx][..],
                            "{}: layer {} node {} dest {} ports diverged at step {}",
                            label, layer, n, h.0, step
                        );
                        prop_assert_eq!(
                            t.layer_distance(layer, NodeId(n), h),
                            dist_ref[n as usize][h_idx],
                            "{}: layer {} node {} dest {} distance diverged at step {}",
                            label, layer, n, h.0, step
                        );
                    }
                }
            }
        }
    }

    /// Every host pair is connected by shortest paths whose hop count is
    /// one of the three fat-tree distances (2, 4, 6).
    #[test]
    fn path_lengths_are_fat_tree_distances(k in fat_tree_ks(), pair_seed in any::<u64>()) {
        let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut rng = netsim::Pcg32::new(pair_seed);
        for _ in 0..16 {
            let a = hosts[rng.below(hosts.len() as u64) as usize];
            let b = hosts[rng.below(hosts.len() as u64) as usize];
            if a == b { continue; }
            let hops = t.path_hops(a, b);
            prop_assert!(hops == 2 || hops == 4 || hops == 6, "odd hop count {}", hops);
        }
    }

    /// next_ports always step strictly closer: following any advertised
    /// port from any node reaches the destination without loops.
    #[test]
    fn all_multipath_choices_reach_destination(k in fat_tree_ks(), seed in any::<u64>()) {
        let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut rng = netsim::Pcg32::new(seed);
        let a = hosts[rng.below(hosts.len() as u64) as usize];
        let b = hosts[(rng.below(hosts.len() as u64 - 1) as usize + 1 + t.host_index(a))
            % hosts.len()];
        if a == b { return Ok(()); }
        // Random walk over advertised next hops must terminate.
        let mut at = a;
        let mut steps = 0;
        while at != b {
            let choices = t.next_ports(at, b);
            let pick = choices[rng.below(choices.len() as u64) as usize];
            at = t.port(at, pick).peer;
            steps += 1;
            prop_assert!(steps <= 6, "walk exceeded fat-tree diameter");
        }
    }

    /// A multicast tree delivers exactly one copy per member and nothing
    /// to non-members, for arbitrary member sets.
    #[test]
    fn multicast_tree_exactness(k in fat_tree_ks(), seed in any::<u64>()) {
        use netsim::{Agent, Ctx, Dest, FlowId, Packet, SimConfig, SimPayload, SimTime, Simulator};

        #[derive(Debug, Clone)]
        struct P;
        impl SimPayload for P {
            fn is_control(&self) -> bool { false }
            fn trim(&self) -> Option<Self> { Some(P) }
        }
        struct Counter { got: u64, send_to: Option<netsim::GroupId> }
        impl Agent<P> for Counter {
            fn on_packet(&mut self, _p: Packet<P>, _c: &mut Ctx<P>) { self.got += 1; }
            fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<P>) {
                let g = self.send_to.expect("only the sender gets a timer");
                ctx.send(Packet {
                    src: ctx.node, dst: Dest::Group(g), flow: FlowId(1), size: 1500, payload: P,
                });
            }
        }

        let t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let hosts = t.hosts().to_vec();
        let mut rng = netsim::Pcg32::new(seed);
        let sender = hosts[rng.below(hosts.len() as u64) as usize];
        let n_members = 1 + rng.below(6) as usize;
        let mut members = Vec::new();
        while members.len() < n_members {
            let m = hosts[rng.below(hosts.len() as u64) as usize];
            if m != sender && !members.contains(&m) {
                members.push(m);
            }
        }
        let mut sim: Simulator<P, Counter> = Simulator::new(t, SimConfig::ndp(seed));
        for &h in &hosts {
            sim.set_agent(h, Counter { got: 0, send_to: None });
        }
        let gid = sim.register_group(sender, &members);
        sim.agent_mut(sender).send_to = Some(gid);
        sim.schedule_timer(sender, SimTime::ZERO, 0);
        sim.run_to_completion();
        for &h in &hosts {
            let expected = u64::from(members.contains(&h));
            prop_assert_eq!(sim.agent(h).got, expected, "host {} copies", h.0);
        }
    }

    /// Every topology family keeps its port tables symmetric: the peer's
    /// back-pointer names exactly the port we came from.
    #[test]
    fn port_symmetry_all_topologies(fabric in any_fabric()) {
        let (t, label) = fabric;
        for n in 0..t.node_count() as u32 {
            for (i, p) in t.node_ports(NodeId(n)).iter().enumerate() {
                let back = t.port(p.peer, p.peer_port);
                prop_assert_eq!(back.peer, NodeId(n), "{}: asymmetric port", label);
                prop_assert_eq!(back.peer_port as usize, i, "{}: wrong back-port", label);
            }
        }
    }

    /// All-pairs reachability and loop-free next_ports on every topology
    /// family: a random walk over the advertised ports always reaches
    /// the destination within the node-count bound.
    #[test]
    fn all_pairs_routable_all_topologies(fabric in any_fabric(), seed in any::<u64>()) {
        let (t, label) = fabric;
        let mut rng = netsim::Pcg32::new(seed);
        let hosts = t.hosts().to_vec();
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    random_walk(&t, &mut rng, a, b, t.node_count())?;
                }
            }
        }
        let _ = label;
    }

    /// Every routing layer is loop-free and reaches every host within
    /// the 2× stretch bound, on every topology family: a random walk
    /// over any layer's advertised ports terminates at the destination
    /// in at most twice the minimal hop count (weights are in {1, 2},
    /// so the weighted-distance potential bounds the walk), and layer 0
    /// is bit-identical to plain minimal routing.
    #[test]
    fn layered_routes_loop_free_within_stretch(
        fabric in any_fabric(),
        layers in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let (mut t, label) = fabric;
        let minimal = t.clone();
        t.set_policy(RoutingPolicy::layered(layers, seed));
        t.compute_routes();
        prop_assert_eq!(t.layer_count(), layers, "{}", label);
        let hosts = t.hosts().to_vec();
        // Layer 0 stays the minimal route set, bit for bit.
        for n in 0..t.node_count() as u32 {
            for &h in &hosts {
                prop_assert_eq!(
                    t.try_next_ports_on(0, NodeId(n), h),
                    minimal.try_next_ports(NodeId(n), h),
                    "{}: layer 0 diverged from minimal at node {}", label, n
                );
            }
        }
        let mut rng = netsim::Pcg32::new(seed ^ 0x57AE);
        for layer in 0..layers {
            for &a in &hosts {
                for &b in &hosts {
                    if a == b { continue; }
                    let bound = 2 * minimal.path_hops(a, b) as usize;
                    let mut at = a;
                    let mut steps = 0usize;
                    while at != b {
                        let choices = t.try_next_ports_on(layer, at, b);
                        prop_assert!(
                            !choices.is_empty(),
                            "{}: layer {} cannot reach {} from {}", label, layer, b.0, at.0
                        );
                        let pick = choices[rng.below(choices.len() as u64) as usize];
                        at = t.port(at, pick).peer;
                        steps += 1;
                        prop_assert!(
                            steps <= bound,
                            "{}: layer {} walk {}->{} exceeded 2x stretch ({} hops)",
                            label, layer, a.0, b.0, bound
                        );
                    }
                }
            }
        }
    }

    /// Incremental route repair is exact: growing the fault mask one
    /// random failure at a time and calling `repair_routes` yields
    /// bit-identical route tables to a from-scratch
    /// `compute_routes_masked` of the accumulated mask, on every
    /// topology family.
    #[test]
    fn incremental_repair_matches_full_recompute(fabric in any_fabric(), seed in any::<u64>()) {
        let (pristine, label) = fabric;
        let mut rng = netsim::Pcg32::new(seed);
        // Candidate failures: switch-switch links and host-free switches
        // (host and edge failures legally disconnect hosts; they are
        // covered by the host-link unit test and excluded here to keep
        // the walk assertions meaningful).
        let mut fabric_links = Vec::new();
        for n in 0..pristine.node_count() as u32 {
            let node = NodeId(n);
            if pristine.kind(node) != NodeKind::Switch {
                continue;
            }
            for (pi, p) in pristine.node_ports(node).iter().enumerate() {
                if pristine.kind(p.peer) == NodeKind::Switch && p.peer.0 > n {
                    fabric_links.push((node, pi as u16));
                }
            }
        }
        let mut mask = FaultMask::new();
        let mut repaired = pristine.clone();
        let steps = 1 + rng.below(2) as usize;
        for step in 0..steps {
            if fabric_links.is_empty() { return Ok(()); }
            let (node, port) = fabric_links[rng.below(fabric_links.len() as u64) as usize];
            mask.fail_link(&repaired, node, port);
            repaired.repair_routes(&mask);
            let mut full = pristine.clone();
            full.compute_routes_masked(&mask);
            for n in 0..pristine.node_count() as u32 {
                for &h in pristine.hosts() {
                    prop_assert_eq!(
                        repaired.try_next_ports(NodeId(n), h),
                        full.try_next_ports(NodeId(n), h),
                        "{}: node {} dest {} diverged at step {}", label, n, h.0, step
                    );
                }
            }
        }
    }

    /// Restore repair and flap coalescing are exact on every layer: an
    /// arbitrary seeded sequence of failures *and restorations* — links
    /// (fabric and host links), transit switches, and whole hosts —
    /// applied one `repair_routes` delta at a time yields bit-identical
    /// route tables, per layer, to a from-scratch
    /// `compute_routes_masked` of the accumulated mask, on every
    /// topology family under a 1–3-layer policy. (A down+up pair
    /// landing in one delta is the coalesced-flap case: the repair must
    /// see it as a no-op.)
    #[test]
    fn restore_repair_matches_full_recompute(
        fabric in any_fabric(),
        layers in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let (mut pristine, label) = fabric;
        pristine.set_policy(RoutingPolicy::layered(layers, seed ^ 0xFA7));
        pristine.compute_routes();
        let mut rng = netsim::Pcg32::new(seed);
        // Candidate elements: every link (host links included — host
        // disconnection and re-attachment is exactly the churn case)
        // plus transit switches and hosts as node victims.
        let mut links = Vec::new();
        for n in 0..pristine.node_count() as u32 {
            let node = NodeId(n);
            for (pi, p) in pristine.node_ports(node).iter().enumerate() {
                if p.peer.0 > n {
                    links.push((node, pi as u16));
                }
            }
        }
        let mut nodes: Vec<NodeId> = pristine.core_switches();
        nodes.extend(pristine.hosts().iter().copied());
        let mut mask = FaultMask::new();
        let mut failed_links: Vec<(NodeId, u16)> = Vec::new();
        let mut failed_nodes: Vec<NodeId> = Vec::new();
        let mut repaired = pristine.clone();
        for step in 0..4 {
            // Each step mutates the mask by one or two ops (two ops in
            // one delta covers fail+restore coalescing) then repairs.
            let ops = 1 + rng.below(2);
            for _ in 0..ops {
                let restore = !(failed_links.is_empty() && failed_nodes.is_empty())
                    && rng.below(2) == 0;
                if restore {
                    let pick_link = !failed_links.is_empty()
                        && (failed_nodes.is_empty() || rng.below(2) == 0);
                    if pick_link {
                        let i = rng.below(failed_links.len() as u64) as usize;
                        let (n, p) = failed_links.swap_remove(i);
                        mask.restore_link(&repaired, n, p);
                    } else {
                        let i = rng.below(failed_nodes.len() as u64) as usize;
                        mask.restore_node(failed_nodes.swap_remove(i));
                    }
                } else if rng.below(2) == 0 {
                    let (n, p) = links[rng.below(links.len() as u64) as usize];
                    if !mask.link_is_down(n, p) {
                        mask.fail_link(&repaired, n, p);
                        failed_links.push((n, p));
                    }
                } else {
                    let w = nodes[rng.below(nodes.len() as u64) as usize];
                    if !mask.node_is_down(w) {
                        mask.fail_node(w);
                        failed_nodes.push(w);
                    }
                }
            }
            repaired.repair_routes(&mask);
            let mut full = pristine.clone();
            full.compute_routes_masked(&mask);
            for layer in 0..layers {
                for n in 0..pristine.node_count() as u32 {
                    for &h in pristine.hosts() {
                        prop_assert_eq!(
                            repaired.try_next_ports_on(layer, NodeId(n), h),
                            full.try_next_ports_on(layer, NodeId(n), h),
                            "{}: layer {} node {} dest {} diverged at step {}",
                            label, layer, n, h.0, step
                        );
                    }
                }
            }
        }
    }

    /// Parallel route computation is byte-identical to serial: the same
    /// full compute, mixed fail/restore deltas, and per-delta repairs
    /// executed at 2–4 worker threads yield exactly the serial
    /// topology's next-port sets and per-layer distances, on every
    /// topology family under a 1–3-layer policy. (The chunked scatter
    /// only partitions disjoint destination columns — see
    /// `netsim::par` — so thread count must never leak into results.)
    #[test]
    fn parallel_routes_byte_identical_to_serial(
        fabric in any_fabric(),
        layers in 1usize..=3,
        threads in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let (mut serial, label) = fabric;
        serial.set_policy(RoutingPolicy::layered(layers, seed ^ 0x9A12));
        serial.compute_routes();
        let mut par = serial.clone();
        par.set_parallelism(threads);
        par.compute_routes();
        let hosts = serial.hosts().to_vec();
        let mut links = Vec::new();
        for n in 0..serial.node_count() as u32 {
            let node = NodeId(n);
            for (pi, p) in serial.node_ports(node).iter().enumerate() {
                if p.peer.0 > n {
                    links.push((node, pi as u16));
                }
            }
        }
        let mut nodes: Vec<NodeId> = serial.core_switches();
        nodes.extend(serial.hosts().iter().copied());
        let mut rng = netsim::Pcg32::new(seed);
        let mut mask = FaultMask::new();
        let mut failed_links: Vec<(NodeId, u16)> = Vec::new();
        let mut failed_nodes: Vec<NodeId> = Vec::new();
        for step in 0..4 {
            if step > 0 {
                // Mixed fail/restore delta, repaired on both sides.
                let restore = !(failed_links.is_empty() && failed_nodes.is_empty())
                    && rng.below(2) == 0;
                if restore {
                    let pick_link = !failed_links.is_empty()
                        && (failed_nodes.is_empty() || rng.below(2) == 0);
                    if pick_link {
                        let i = rng.below(failed_links.len() as u64) as usize;
                        let (n, p) = failed_links.swap_remove(i);
                        mask.restore_link(&serial, n, p);
                    } else {
                        let i = rng.below(failed_nodes.len() as u64) as usize;
                        mask.restore_node(failed_nodes.swap_remove(i));
                    }
                } else if rng.below(2) == 0 {
                    let (n, p) = links[rng.below(links.len() as u64) as usize];
                    if !mask.link_is_down(n, p) {
                        mask.fail_link(&serial, n, p);
                        failed_links.push((n, p));
                    }
                } else {
                    let w = nodes[rng.below(nodes.len() as u64) as usize];
                    if !mask.node_is_down(w) {
                        mask.fail_node(w);
                        failed_nodes.push(w);
                    }
                }
                serial.repair_routes(&mask);
                par.repair_routes(&mask);
            }
            par.check_csr_invariants();
            for layer in 0..layers {
                for n in 0..serial.node_count() as u32 {
                    for &h in &hosts {
                        prop_assert_eq!(
                            par.try_next_ports_on(layer, NodeId(n), h),
                            serial.try_next_ports_on(layer, NodeId(n), h),
                            "{}: {} threads, layer {} node {} dest {} ports diverged at step {}",
                            label, threads, layer, n, h.0, step
                        );
                        prop_assert_eq!(
                            par.layer_distance(layer, NodeId(n), h),
                            serial.layer_distance(layer, NodeId(n), h),
                            "{}: {} threads, layer {} node {} dest {} distance diverged at step {}",
                            label, threads, layer, n, h.0, step
                        );
                    }
                }
            }
        }
    }

    /// Any single fabric-link or transit/aggregation-switch failure in a
    /// k ≥ 4 fat-tree leaves every host pair routable after a masked
    /// recompute (edge switches are excluded: killing one provably
    /// isolates its rack).
    #[test]
    fn fat_tree_single_failure_keeps_all_pairs_routable(
        k in prop_oneof![Just(4usize), Just(6usize)],
        seed in any::<u64>(),
    ) {
        let mut t = Topology::fat_tree(k, 1_000_000_000, 10_000);
        let mut rng = netsim::Pcg32::new(seed);
        // Candidates: all switch-switch links, plus all switches that
        // serve no hosts directly is too narrow (aggs have no hosts but
        // cores too) — any switch except the edge layer qualifies.
        let mut fabric_links = Vec::new();
        let mut non_edge_switches = Vec::new();
        for n in 0..t.node_count() as u32 {
            let node = NodeId(n);
            if t.kind(node) != NodeKind::Switch {
                continue;
            }
            let has_host = t.node_ports(node).iter().any(|p| t.kind(p.peer) == NodeKind::Host);
            if !has_host {
                non_edge_switches.push(node);
            }
            for (pi, p) in t.node_ports(node).iter().enumerate() {
                if t.kind(p.peer) == NodeKind::Switch && p.peer.0 > n {
                    fabric_links.push((node, pi as u16));
                }
            }
        }
        let mut mask = FaultMask::new();
        let total = fabric_links.len() + non_edge_switches.len();
        let pick = rng.below(total as u64) as usize;
        if pick < fabric_links.len() {
            let (node, port) = fabric_links[pick];
            mask.fail_link(&t, node, port);
        } else {
            mask.fail_node(non_edge_switches[pick - fabric_links.len()]);
        }
        t.compute_routes_masked(&mask);
        let hosts = t.hosts().to_vec();
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    prop_assert!(
                        !t.try_next_ports(a, b).is_empty(),
                        "pair {}->{} unroutable after single failure", a.0, b.0
                    );
                    random_walk(&t, &mut rng, a, b, t.node_count())?;
                }
            }
        }
    }
}
