//! Deterministic pseudo-random primitives used by the code construction.
//!
//! RFC 6330 drives its tuple generator from fixed 256-entry random tables
//! (`V0..V3`). We use a SplitMix64-based hash instead: it is simpler, has
//! excellent avalanche behaviour, and — crucially for a *code* — is a pure
//! deterministic function of its inputs, so encoder and decoder always agree
//! with no shared tables to transcribe.
//!
//! The same generator doubles as the sender-side ESI sampler that gives
//! Polyraptor's multi-source mode its "statistically unique symbols from
//! independently seeded senders" property (paper §2, *Multi-source
//! transport*).

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash two words into one; used to derive per-symbol seeds from
/// `(construction tweak, internal symbol id)`.
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b.wrapping_add(0xA0761D6478BD642F)))
}

/// The code-construction random function: a deterministic value in
/// `[0, m)` derived from seed `y` and stream index `i`.
///
/// Mirrors the role of RFC 6330's `Rand[y, i, m]`.
#[inline]
pub fn rand(y: u64, i: u64, m: u32) -> u32 {
    debug_assert!(m > 0, "rand: modulus must be positive");
    // Multiply-shift reduction avoids the slight bias of `% m` for small m
    // while staying branch-free and deterministic.
    let h = hash2(y, i);
    (((h >> 32) * m as u64) >> 32) as u32
}

/// A small, fast, seedable PRNG (xorshift64*), used where a *stream* of
/// random values is needed (e.g. random ESI sampling by repair senders).
///
/// Deliberately implemented here rather than pulling `rand` into the
/// library's dependency graph: the value sequence is part of the wire
/// contract between independently-seeded senders, so it must never change
/// underneath us with a crate upgrade.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Create a generator from a seed. A zero seed is remapped (xorshift
    /// state must be nonzero).
    pub fn new(seed: u64) -> Self {
        let mut state = mix64(seed);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Self { state }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, m)`.
    #[inline]
    pub fn next_below(&mut self, m: u64) -> u64 {
        debug_assert!(m > 0);
        ((u128::from(self.next_u64()) * u128::from(m)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn rand_in_range() {
        for m in [1u32, 2, 3, 7, 255, 1 << 20] {
            for i in 0..200 {
                let v = rand(0xDEAD_BEEF, i, m);
                assert!(v < m, "rand out of range: {v} >= {m}");
            }
        }
    }

    #[test]
    fn rand_is_roughly_uniform() {
        // Chi-square style sanity check over 16 buckets.
        let m = 16u32;
        let n = 16_000;
        let mut counts = [0usize; 16];
        for i in 0..n {
            counts[rand(42, i, m) as usize] += 1;
        }
        let expected = n as f64 / m as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn rand_streams_differ_by_seed() {
        let a: Vec<u32> = (0..32).map(|i| rand(1, i, 1 << 20)).collect();
        let b: Vec<u32> = (0..32).map(|i| rand(2, i, 1 << 20)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn xorshift_deterministic_per_seed() {
        let mut a = Xorshift64::new(7);
        let mut b = Xorshift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_zero_seed_ok() {
        let mut g = Xorshift64::new(0);
        // Must not get stuck at zero.
        let vals: Vec<u64> = (0..10).map(|_| g.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn next_below_bounds() {
        let mut g = Xorshift64::new(99);
        for m in [1u64, 2, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(g.next_below(m) < m);
            }
        }
    }
}
