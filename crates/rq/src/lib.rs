//! # `rq` — a systematic rateless fountain code (RaptorQ family)
//!
//! A from-scratch implementation of the code family Polyraptor
//! (SIGCOMM'18) builds on: **Raptor codes with a GF(256) high-density
//! precode**, per the architecture of RFC 6330 (RaptorQ). The crate
//! provides:
//!
//! * a **systematic** encoder — encoding symbols `0..k` *are* the source
//!   symbols, so a lossless transfer needs no decoding at all; in the
//!   default [`CodeMode::Systematic`] construction (SCDP-style) the
//!   encoder is also *solve-free* and the decoder's solve shrinks with
//!   the loss count ([`CodeMode::Legacy`] keeps the original solve-based
//!   construction for A/B comparison);
//! * a **rateless** repair stream — any `esi >= k` yields a repair symbol,
//!   and any fresh symbol is as useful as any other, which is what lets
//!   Polyraptor never retransmit and never care which packet was lost;
//! * a **steep overhead/failure curve** — with `k + 2` distinct symbols
//!   decoding fails with probability on the order of 10⁻⁶ (the property
//!   quoted in the paper, validated empirically in
//!   `benches/rq_overhead.rs` and the property tests);
//! * an **object layer** that splits arbitrarily large objects into
//!   blocks (RFC 6330 §4.4.1 partitioning);
//! * a plain **LT code** baseline for ablations.
//!
//! ## Quickstart
//!
//! ```
//! use rq::{Encoder, Decoder};
//!
//! let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
//! let enc = Encoder::new(&data, 1440).unwrap();
//! let mut dec = Decoder::new(enc.params());
//!
//! // Simulate loss: drop the first two source symbols, top up with any
//! // two repair symbols instead.
//! let k = enc.params().k as u32;
//! for esi in 2..k {
//!     dec.push(esi, enc.symbol(esi));
//! }
//! dec.push(k + 7, enc.symbol(k + 7));
//! dec.push(k + 8, enc.symbol(k + 8));
//!
//! assert_eq!(dec.try_decode().unwrap(), data);
//! ```
//!
//! ## Relationship to RFC 6330 (substitution S1 in DESIGN.md)
//!
//! The construction mirrors RFC 6330 structurally — LDPC rows, dense
//! GF(256) HDPC rows, LT tuple walk modulo a prime, inactivation
//! decoding — but derives its parameters from `K` instead of shipping the
//! RFC's 477-entry constant table, and uses a hash-based deterministic
//! PRNG instead of the RFC's fixed random tables. Wire compatibility with
//! RFC 6330 is therefore **not** a goal; the behavioural contract the
//! paper relies on is, and is enforced by tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod decoder;
pub mod degree;
pub mod encoder;
pub mod gf256;
pub mod lt;
pub mod matrix;
pub mod params;
pub mod rand;
pub mod solver;
pub mod tuple;

pub use block::{ObjectDecoder, ObjectEncoder, ObjectParams, PayloadId};
pub use decoder::{DecodeError, DecodeStats, Decoder};
pub use encoder::{CodeParams, EncodeError, Encoder};
pub use params::{BlockParams, CodeMode};
pub use solver::SolveError;
