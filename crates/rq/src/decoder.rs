//! Decoder for a single source block.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::encoder::CodeParams;
use crate::gf256;
use crate::matrix::{hdpc_rows, ldpc_rows, lt_row, ConstraintRow, RowKind};
use crate::params::{BlockParams, CodeMode};
use crate::solver::{solve, SolveError};
use crate::tuple::{lt_columns, lt_columns_with_floor};

/// Decode outcome when the data is not (yet) recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than `k` distinct symbols received — decoding cannot
    /// possibly succeed yet.
    NeedMoreSymbols {
        /// Distinct symbols received so far.
        have: usize,
        /// Minimum required (`k`).
        need: usize,
    },
    /// At least `k` symbols are present but the received combination is
    /// rank-deficient; any additional fresh symbol will very likely fix
    /// it (probability ≈ 1 − 2⁻⁸ per symbol).
    RankDeficient {
        /// Distinct symbols received so far.
        have: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NeedMoreSymbols { have, need } => {
                write!(f, "need more symbols: have {have}, need at least {need}")
            }
            DecodeError::RankDeficient { have } => {
                write!(f, "received {have} symbols but system is rank deficient")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Which decode paths a [`Decoder`] has taken so far — instrumentation for
/// the fast-path contract ("the solver is *not* invoked when all `K`
/// source symbols arrive") and for A/B benchmarking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Successful decodes that took the zero-copy fast path (all source
    /// symbols present; no linear algebra).
    pub fast_path_decodes: u64,
    /// Decodes (successful or not) that invoked the inactivation solver.
    pub solver_decodes: u64,
    /// Number of unknowns in the most recent solver invocation. In
    /// systematic mode this is `missing + S + H` — it shrinks with the
    /// loss count; in legacy mode it is always `L`.
    pub last_solve_unknowns: usize,
}

/// Rateless decoder for one source block.
///
/// Feed it encoding symbols in any order with [`Decoder::push`]; call
/// [`Decoder::try_decode`] once at least `k` distinct symbols arrived.
/// Duplicates (same ESI) are ignored — this mirrors the on-the-wire
/// behaviour Polyraptor relies on: only *distinct* symbols advance
/// decoding, which is why multi-source senders partition/randomize their
/// ESI spaces.
///
/// ```
/// use rq::{Decoder, Encoder};
/// let data: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
/// let enc = Encoder::new(&data, 1440).unwrap();
/// let mut dec = Decoder::new(enc.params());
/// // Lose all source symbols; feed repair symbols only.
/// for esi in 100..104 {
///     dec.push(esi, enc.symbol(esi));
/// }
/// assert_eq!(dec.try_decode().unwrap(), data);
/// ```
pub struct Decoder {
    params: BlockParams,
    code: CodeParams,
    received: BTreeMap<u32, Vec<u8>>,
    source_seen: usize,
    stats: Cell<DecodeStats>,
}

impl Decoder {
    /// New decoder for a block described by `code` (from
    /// [`crate::Encoder::params`], carried out-of-band).
    pub fn new(code: CodeParams) -> Self {
        Self {
            params: BlockParams::new(code.k),
            code,
            received: BTreeMap::new(),
            source_seen: 0,
            stats: Cell::new(DecodeStats::default()),
        }
    }

    /// Add a received encoding symbol. Returns `true` if the symbol was
    /// new (distinct ESI), `false` for duplicates.
    ///
    /// # Panics
    /// Panics if the symbol length differs from the block's symbol size —
    /// symbols are fixed-size by construction, so a mismatch is a framing
    /// bug in the caller, not a runtime condition.
    pub fn push(&mut self, esi: u32, symbol: Vec<u8>) -> bool {
        assert_eq!(symbol.len(), self.code.symbol_size, "symbol size mismatch");
        if self.received.contains_key(&esi) {
            return false;
        }
        if (esi as usize) < self.code.k {
            self.source_seen += 1;
        }
        self.received.insert(esi, symbol);
        true
    }

    /// Number of distinct symbols received so far.
    pub fn symbols_received(&self) -> usize {
        self.received.len()
    }

    /// `true` when every source symbol arrived — the zero-decode-cost
    /// fast path for lossless transfers (paper §2: "source symbols are
    /// immediately passed to the application without ... decoding
    /// latency").
    pub fn systematic_complete(&self) -> bool {
        self.source_seen == self.code.k
    }

    /// The decoder-facing code parameters.
    pub fn params(&self) -> CodeParams {
        self.code
    }

    /// Decode-path counters — see [`DecodeStats`].
    pub fn decode_stats(&self) -> DecodeStats {
        self.stats.get()
    }

    /// Attempt to decode the block. On success returns exactly the
    /// original data (padding stripped).
    ///
    /// When every source symbol arrived this is the zero-copy fast path:
    /// received symbols are appended straight into the output buffer and
    /// no linear algebra runs at all (observable via [`DecodeStats`]).
    /// Otherwise the solver runs — in [`CodeMode::Systematic`] a *reduced*
    /// solve seeded with the known source symbols, in [`CodeMode::Legacy`]
    /// the full `L×L` system.
    pub fn try_decode(&self) -> Result<Vec<u8>, DecodeError> {
        // Fast path: all source symbols present, no linear algebra at all.
        if self.systematic_complete() {
            let mut st = self.stats.get();
            st.fast_path_decodes += 1;
            self.stats.set(st);
            let k = self.code.k;
            let t = self.code.symbol_size;
            let mut out = Vec::with_capacity(k * t);
            for esi in 0..k as u32 {
                out.extend_from_slice(&self.received[&esi]);
            }
            out.truncate(self.code.data_len);
            return Ok(out);
        }
        self.try_decode_solver()
    }

    /// Decode via the solver even when the fast path is eligible.
    ///
    /// Exists for the fast-path/solver equivalence tests and for A/B
    /// benchmarking the fast path against the work it avoids; production
    /// callers want [`Decoder::try_decode`].
    pub fn try_decode_solver(&self) -> Result<Vec<u8>, DecodeError> {
        if self.received.len() < self.code.k {
            return Err(DecodeError::NeedMoreSymbols {
                have: self.received.len(),
                need: self.code.k,
            });
        }
        match self.code.mode {
            CodeMode::Systematic => self.decode_systematic(),
            CodeMode::Legacy => self.decode_legacy(),
        }
    }

    /// Reduced solve for the systematic construction: received source
    /// symbols pin intermediate columns `0..k` directly, so the unknowns
    /// are only the *missing* source columns plus the `S + H` parity
    /// columns. Every constraint row is projected onto those unknowns,
    /// with the known-source contributions folded into its RHS — the
    /// "seeding" that makes the system shrink with the loss count.
    fn decode_systematic(&self) -> Result<Vec<u8>, DecodeError> {
        let k = self.code.k;
        let t = self.code.symbol_size;
        let p = &self.params;

        // Compact unknown indices: missing source columns first
        // (ascending), then all parity columns `k..l`.
        let missing: Vec<u32> = (0..k as u32)
            .filter(|esi| !self.received.contains_key(esi))
            .collect();
        let m = missing.len();
        let n_unknown = m + p.s + p.h;
        const KNOWN: u32 = u32::MAX;
        let mut compact = vec![KNOWN; p.l];
        for (i, &c) in missing.iter().enumerate() {
            compact[c as usize] = i as u32;
        }
        for (i, c) in (k..p.l).enumerate() {
            compact[c] = (m + i) as u32;
        }

        let n_repair = self.received.len() - (k - m);
        let mut rows: Vec<ConstraintRow> = Vec::with_capacity(p.s + p.h + n_repair);

        // Project a binary row: unknown columns survive (remapped), known
        // source columns XOR into the RHS.
        let project_binary = |cols: Vec<u32>, mut value: Vec<u8>| -> ConstraintRow {
            let mut ucols = Vec::with_capacity(cols.len());
            for c in cols {
                match compact[c as usize] {
                    KNOWN => gf256::xor_assign(&mut value, &self.received[&c]),
                    u => ucols.push(u),
                }
            }
            ConstraintRow {
                kind: RowKind::Binary { cols: ucols },
                value,
            }
        };

        for row in ldpc_rows(p, t) {
            let RowKind::Binary { cols } = row.kind else {
                unreachable!("LDPC rows are binary")
            };
            rows.push(project_binary(cols, row.value));
        }
        for row in hdpc_rows(p, 0, t) {
            let RowKind::Dense { coefs } = row.kind else {
                unreachable!("HDPC rows are dense")
            };
            let mut value = row.value;
            let mut ucoefs = vec![0u8; n_unknown];
            for (c, &coef) in coefs.iter().enumerate() {
                if coef == 0 {
                    continue;
                }
                match compact[c] {
                    KNOWN => gf256::addmul(&mut value, &self.received[&(c as u32)], coef),
                    u => ucoefs[u as usize] = coef,
                }
            }
            rows.push(ConstraintRow {
                kind: RowKind::Dense { coefs: ucoefs },
                value,
            });
        }
        // One row per received repair symbol; its LT columns over the
        // intermediates (degree-floored in systematic mode, matching the
        // encoder), known sources folded into the RHS.
        for (&esi, sym) in self.received.range(k as u32..) {
            let cols = lt_columns_with_floor(
                p,
                self.code.tweak,
                esi,
                crate::params::sys_repair_min_degree(p.l),
            );
            rows.push(project_binary(cols, sym.clone()));
        }

        let mut st = self.stats.get();
        st.solver_decodes += 1;
        st.last_solve_unknowns = n_unknown;
        self.stats.set(st);

        let solution = match solve(n_unknown, rows, t) {
            Ok(c) => c,
            Err(SolveError::Singular) => {
                return Err(DecodeError::RankDeficient {
                    have: self.received.len(),
                })
            }
        };

        // Assemble: received source symbols verbatim, missing ones straight
        // from the solution (in systematic mode the intermediate *is* the
        // source symbol — no LT re-encode needed).
        let mut out = Vec::with_capacity(k * t);
        for esi in 0..k as u32 {
            if let Some(sym) = self.received.get(&esi) {
                out.extend_from_slice(sym);
            } else {
                out.extend_from_slice(&solution[compact[esi as usize] as usize]);
            }
        }
        out.truncate(self.code.data_len);
        Ok(out)
    }

    /// Full solve for the legacy construction: precode constraints plus
    /// one LT row per received symbol, over all `L` intermediates.
    fn decode_legacy(&self) -> Result<Vec<u8>, DecodeError> {
        let k = self.code.k;
        let t = self.code.symbol_size;
        let mut rows: Vec<ConstraintRow> =
            Vec::with_capacity(self.params.s + self.params.h + self.received.len());
        rows.extend(ldpc_rows(&self.params, t));
        rows.extend(hdpc_rows(&self.params, self.code.tweak, t));
        for (&esi, sym) in &self.received {
            rows.push(lt_row(&self.params, self.code.tweak, esi, sym.clone()));
        }

        let mut st = self.stats.get();
        st.solver_decodes += 1;
        st.last_solve_unknowns = self.params.l;
        self.stats.set(st);

        let intermediates = match solve(self.params.l, rows, t) {
            Ok(c) => c,
            Err(SolveError::Singular) => {
                return Err(DecodeError::RankDeficient {
                    have: self.received.len(),
                })
            }
        };

        // Reassemble: received source symbols verbatim, missing ones
        // re-encoded from the recovered intermediate block.
        let mut out = Vec::with_capacity(k * t);
        for esi in 0..k as u32 {
            if let Some(sym) = self.received.get(&esi) {
                out.extend_from_slice(sym);
            } else {
                let cols = lt_columns(&self.params, self.code.tweak, esi);
                let mut sym = vec![0u8; t];
                for c in cols {
                    gf256::xor_assign(&mut sym, &intermediates[c as usize]);
                }
                out.extend_from_slice(&sym);
            }
        }
        out.truncate(self.code.data_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::rand::Xorshift64;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 97 + 43) as u8).collect()
    }

    #[test]
    fn lossless_systematic_fast_path() {
        let d = data(1000);
        let enc = Encoder::new(&d, 100).unwrap();
        let mut dec = Decoder::new(enc.params());
        for esi in 0..enc.params().k as u32 {
            assert!(dec.push(esi, enc.symbol(esi)));
        }
        assert!(dec.systematic_complete());
        assert_eq!(dec.try_decode().unwrap(), d);
    }

    #[test]
    fn repair_only_decode() {
        let d = data(640);
        let enc = Encoder::new(&d, 64).unwrap(); // k = 10
        let mut dec = Decoder::new(enc.params());
        // No source symbols at all; k+2 repair symbols.
        for esi in 1000..1012u32 {
            dec.push(esi, enc.symbol(esi));
        }
        assert_eq!(dec.try_decode().unwrap(), d);
    }

    #[test]
    fn mixed_loss_decode() {
        let d = data(5000);
        let enc = Encoder::new(&d, 128).unwrap(); // k = 40
        let k = enc.params().k as u32;
        let mut dec = Decoder::new(enc.params());
        // Drop every third source symbol; top up with repairs.
        let mut pushed = 0;
        for esi in 0..k {
            if esi % 3 != 0 {
                dec.push(esi, enc.symbol(esi));
                pushed += 1;
            }
        }
        let mut esi = k;
        while pushed < k + 2 {
            dec.push(esi, enc.symbol(esi));
            esi += 1;
            pushed += 1;
        }
        assert_eq!(dec.try_decode().unwrap(), d);
    }

    #[test]
    fn duplicates_do_not_advance() {
        let d = data(300);
        let enc = Encoder::new(&d, 100).unwrap();
        let mut dec = Decoder::new(enc.params());
        assert!(dec.push(0, enc.symbol(0)));
        assert!(!dec.push(0, enc.symbol(0)));
        assert_eq!(dec.symbols_received(), 1);
    }

    #[test]
    fn need_more_symbols_reported() {
        let d = data(300);
        let enc = Encoder::new(&d, 100).unwrap(); // k = 3
        let mut dec = Decoder::new(enc.params());
        dec.push(5, enc.symbol(5));
        match dec.try_decode() {
            Err(DecodeError::NeedMoreSymbols { have: 1, need: 3 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn random_loss_patterns_decode_at_small_overhead() {
        // Property-style deterministic sweep: across many loss patterns,
        // k+3 random distinct symbols decode with overwhelming
        // probability. Failures here indicate a structural bug rather
        // than statistical bad luck (P ≈ 2^-24 per trial).
        let d = data(2560);
        let enc = Encoder::new(&d, 64).unwrap(); // k = 40
        let k = enc.params().k;
        let mut rng = Xorshift64::new(2024);
        for trial in 0..30 {
            let mut dec = Decoder::new(enc.params());
            let mut added = 0;
            while added < k + 3 {
                let esi = rng.next_below(10 * k as u64) as u32;
                if dec.push(esi, enc.symbol(esi)) {
                    added += 1;
                }
            }
            assert_eq!(dec.try_decode().unwrap(), d, "trial {trial} failed");
        }
    }

    #[test]
    fn wrong_symbol_size_panics() {
        let d = data(300);
        let enc = Encoder::new(&d, 100).unwrap();
        let mut dec = Decoder::new(enc.params());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dec.push(0, vec![0u8; 99]);
        }));
        assert!(result.is_err());
    }
}
