//! Plain LT code (Luby Transform) — the ablation baseline.
//!
//! LT is the fountain code *without* a precode: every encoding symbol is
//! the XOR of source symbols sampled from the robust soliton
//! distribution, and decoding is peeling/elimination straight over the
//! source symbols. Compared to the Raptor construction it needs noticeably
//! more reception overhead (Θ(√k·ln²(k/δ)) extra symbols instead of a
//! small constant) and is not systematic — both differences are measured
//! by `benches/ablations.rs` to justify the paper's choice of RaptorQ.

use crate::gf256;
use crate::matrix::{ConstraintRow, RowKind};
use crate::params::next_prime;
use crate::rand::{hash2, rand};
use crate::solver::{solve, SolveError};

/// Robust soliton distribution over degrees `1..=k`.
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    cumulative: Vec<f64>,
}

impl RobustSoliton {
    /// Build the distribution for `k` source symbols with the usual
    /// parameters (`c`, `delta`).
    pub fn new(k: usize, c: f64, delta: f64) -> Self {
        assert!(k >= 1);
        let kf = k as f64;
        let r = c * (kf / delta).ln() * kf.sqrt();
        let threshold = (kf / r).floor() as usize;
        let mut weights = vec![0f64; k + 1];
        // Ideal soliton.
        weights[1] = 1.0 / kf;
        for (d, w) in weights.iter_mut().enumerate().skip(2) {
            *w = 1.0 / (d as f64 * (d as f64 - 1.0));
        }
        // Robust addition τ.
        for (d, w) in weights.iter_mut().enumerate().skip(1) {
            if threshold >= 1 && d < threshold {
                *w += r / (d as f64 * kf);
            } else if threshold >= 1 && d == threshold {
                *w += r * (r / delta).ln() / kf;
            }
        }
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(k);
        let mut acc = 0.0;
        for w in &weights[1..] {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating point drift.
        *cumulative.last_mut().expect("k >= 1") = 1.0;
        Self { cumulative }
    }

    /// Sample a degree from a uniform `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i + 1,
        }
    }
}

/// Columns (source-symbol indices) of LT encoding symbol `esi`.
fn lt_plain_columns(k: usize, dist: &RobustSoliton, seed: u64, esi: u32) -> Vec<u32> {
    let y = hash2(seed, u64::from(esi));
    let u = f64::from(rand(y, 0, 1 << 30)) / f64::from(1u32 << 30);
    let d = dist.sample(u).min(k);
    // Distinct-column walk modulo a prime, as in the Raptor LT encoder.
    let kp = next_prime(k.max(2)) as u32;
    let a = 1 + rand(y, 1, kp - 1);
    let mut b = rand(y, 2, kp);
    let mut cols = Vec::with_capacity(d);
    for _ in 0..d {
        while b >= k as u32 {
            b = (b + a) % kp;
        }
        cols.push(b);
        b = (b + a) % kp;
    }
    cols
}

/// Non-systematic LT encoder over `k` source symbols.
pub struct LtEncoder {
    source: Vec<Vec<u8>>,
    dist: RobustSoliton,
    seed: u64,
    symbol_size: usize,
    data_len: usize,
}

impl LtEncoder {
    /// Build an encoder; `seed` parameterizes the symbol stream.
    pub fn new(data: &[u8], symbol_size: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot LT-encode empty data");
        let k = data.len().div_ceil(symbol_size);
        let mut source = Vec::with_capacity(k);
        for i in 0..k {
            let start = i * symbol_size;
            let end = (start + symbol_size).min(data.len());
            let mut sym = data[start..end].to_vec();
            sym.resize(symbol_size, 0);
            source.push(sym);
        }
        Self {
            source,
            dist: RobustSoliton::new(k, 0.1, 0.05),
            seed,
            symbol_size,
            data_len: data.len(),
        }
    }

    /// Number of source symbols.
    pub fn k(&self) -> usize {
        self.source.len()
    }

    /// Original data length in bytes.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Produce encoding symbol `esi`.
    pub fn symbol(&self, esi: u32) -> Vec<u8> {
        let cols = lt_plain_columns(self.k(), &self.dist, self.seed, esi);
        let mut out = vec![0u8; self.symbol_size];
        for c in cols {
            gf256::xor_assign(&mut out, &self.source[c as usize]);
        }
        out
    }
}

/// LT decoder: collects symbols, solves over the source symbols directly.
pub struct LtDecoder {
    k: usize,
    symbol_size: usize,
    data_len: usize,
    dist: RobustSoliton,
    seed: u64,
    received: Vec<(u32, Vec<u8>)>,
    seen: std::collections::HashSet<u32>,
}

impl LtDecoder {
    /// Decoder matching an [`LtEncoder`] with the same `(k, symbol_size,
    /// data_len, seed)`.
    pub fn new(k: usize, symbol_size: usize, data_len: usize, seed: u64) -> Self {
        Self {
            k,
            symbol_size,
            data_len,
            dist: RobustSoliton::new(k, 0.1, 0.05),
            seed,
            received: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Add a symbol; `true` if new.
    pub fn push(&mut self, esi: u32, symbol: Vec<u8>) -> bool {
        assert_eq!(symbol.len(), self.symbol_size);
        if !self.seen.insert(esi) {
            return false;
        }
        self.received.push((esi, symbol));
        true
    }

    /// Distinct symbols so far.
    pub fn symbols_received(&self) -> usize {
        self.received.len()
    }

    /// Attempt decoding; `None` until the received set has full rank.
    pub fn try_decode(&self) -> Option<Vec<u8>> {
        if self.received.len() < self.k {
            return None;
        }
        let rows: Vec<ConstraintRow> = self
            .received
            .iter()
            .map(|(esi, sym)| ConstraintRow {
                kind: RowKind::Binary {
                    cols: lt_plain_columns(self.k, &self.dist, self.seed, *esi),
                },
                value: sym.clone(),
            })
            .collect();
        match solve(self.k, rows, self.symbol_size) {
            Ok(symbols) => {
                let mut out = Vec::with_capacity(self.k * self.symbol_size);
                for s in symbols {
                    out.extend_from_slice(&s);
                }
                out.truncate(self.data_len);
                Some(out)
            }
            Err(SolveError::Singular) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 1) as u8).collect()
    }

    #[test]
    fn soliton_cumulative_monotone() {
        let d = RobustSoliton::new(100, 0.1, 0.05);
        for w in d.cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((d.cumulative.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn soliton_sampling_in_range() {
        let d = RobustSoliton::new(50, 0.1, 0.05);
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            let deg = d.sample(u);
            assert!((1..=50).contains(&deg));
        }
    }

    #[test]
    fn lt_roundtrip_with_overhead() {
        let d = data(3200);
        let enc = LtEncoder::new(&d, 64, 99); // k = 50
        let k = enc.k();
        let mut dec = LtDecoder::new(k, 64, d.len(), 99);
        // LT needs noticeably more than k symbols; feed 1.4k and decode.
        for esi in 0..(k as u32 * 14 / 10) {
            dec.push(esi, enc.symbol(esi));
        }
        assert_eq!(dec.try_decode().expect("LT decode within 40% overhead"), d);
    }

    #[test]
    fn lt_insufficient_symbols() {
        let d = data(640);
        let enc = LtEncoder::new(&d, 64, 1);
        let mut dec = LtDecoder::new(enc.k(), 64, d.len(), 1);
        for esi in 0..5u32 {
            dec.push(esi, enc.symbol(esi));
        }
        assert!(dec.try_decode().is_none());
    }

    #[test]
    fn different_seeds_different_streams() {
        let d = data(640);
        let a = LtEncoder::new(&d, 64, 1);
        let b = LtEncoder::new(&d, 64, 2);
        let differs = (0..20u32).any(|esi| a.symbol(esi) != b.symbol(esi));
        assert!(differs);
    }
}
