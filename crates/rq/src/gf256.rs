//! Arithmetic over GF(2^8).
//!
//! The field is constructed modulo the RFC 6330 polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`), with `α = 2` as the multiplicative
//! generator. Log/exp tables are generated at compile time so multiplication
//! is two table lookups and an addition.
//!
//! Besides scalar arithmetic this module provides the *symbol* operations
//! the codec is built from: XOR of whole symbols and fused
//! multiply-accumulate (`dst += c · src`), both with a `u64`-wide fast path.

/// The reduction polynomial, `x^8 + x^4 + x^3 + x^2 + 1`, as the low 9 bits.
pub const POLY: u16 = 0x11D;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Exponent table: `EXP[i] = α^i` for `i` in `0..510`.
///
/// The table is doubled in length so `mul` can index `EXP[log a + log b]`
/// without a modular reduction.
pub static EXP: [u8; 510] = build_exp();

/// Log table: `LOG[x] = log_α x` for `x != 0`. `LOG[0]` is a sentinel (0)
/// and must never be used; all callers guard against zero operands.
pub static LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 510] {
    let mut table = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// Multiply two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse. Panics on zero (division by zero is a logic
/// error in the solver, not a runtime condition).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "gf256: inverse of zero");
    EXP[255 - LOG[a as usize] as usize]
}

/// Divide `a` by `b`. Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    if a == 0 {
        0
    } else {
        assert!(b != 0, "gf256: division by zero");
        let diff = 255 + LOG[a as usize] as usize - LOG[b as usize] as usize;
        EXP[diff]
    }
}

/// Addition (= subtraction) in GF(2^8) is XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// `α^i` for arbitrary exponent.
#[inline]
pub fn alpha_pow(i: usize) -> u8 {
    EXP[i % 255]
}

/// XOR `src` into `dst` (symbol addition). Both slices must be the same
/// length; this is an invariant of symbol storage, so it is asserted.
#[inline]
pub fn xor_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "symbol length mismatch");
    // u64-wide fast path; the remainder is handled byte by byte.
    let (dst_chunks, dst_rest) = dst.split_at_mut(dst.len() - dst.len() % 8);
    let (src_chunks, src_rest) = src.split_at(src.len() - src.len() % 8);
    for (d, s) in dst_chunks
        .chunks_exact_mut(8)
        .zip(src_chunks.chunks_exact(8))
    {
        let x = u64::from_ne_bytes(d.try_into().unwrap());
        let y = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&(x ^ y).to_ne_bytes());
    }
    for (d, s) in dst_rest.iter_mut().zip(src_rest) {
        *d ^= s;
    }
}

/// Fused multiply-accumulate on symbols: `dst[i] ^= c · src[i]`.
///
/// `c == 0` is a no-op and `c == 1` degenerates to [`xor_assign`]; both are
/// common in the solver so they get dedicated paths.
#[inline]
pub fn fma(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_assign(dst, src),
        _ => {
            assert_eq!(dst.len(), src.len(), "symbol length mismatch");
            let log_c = LOG[c as usize] as usize;
            for (d, s) in dst.iter_mut().zip(src) {
                if *s != 0 {
                    *d ^= EXP[log_c + LOG[*s as usize] as usize];
                }
            }
        }
    }
}

/// Scale a symbol in place: `dst[i] = c · dst[i]`.
#[inline]
pub fn scale(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let log_c = LOG[c as usize] as usize;
            for d in dst.iter_mut() {
                if *d != 0 {
                    *d = EXP[log_c + LOG[*d as usize] as usize];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
    }

    #[test]
    fn alpha_generates_field() {
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[EXP[i] as usize] = true;
        }
        // α generates every nonzero element exactly once.
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn mul_commutative_associative() {
        // Spot-check algebraic laws over a grid (exhaustive over pairs).
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
                assert_eq!(mul(a, 1), a);
                assert_eq!(mul(a, 0), 0);
            }
        }
        // Associativity on a coarser grid to keep the test fast.
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_law() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inverse_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn div_matches_mul_inv() {
        for a in (0..=255u8).step_by(3) {
            for b in 1..=255u8 {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    fn xor_assign_all_lengths() {
        // Exercise the chunked fast path and the tail for many lengths.
        for len in 0..70 {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 53 + 7) as u8).collect();
            let mut d = a.clone();
            xor_assign(&mut d, &b);
            for i in 0..len as usize {
                assert_eq!(d[i], a[i] ^ b[i]);
            }
            // XOR is an involution.
            xor_assign(&mut d, &b);
            assert_eq!(d, a);
        }
    }

    #[test]
    fn fma_matches_scalar() {
        let src: Vec<u8> = (0..100).map(|i| (i * 17) as u8).collect();
        for c in [0u8, 1, 2, 37, 255] {
            let mut dst: Vec<u8> = (0..100).map(|i| (i * 29 + 3) as u8).collect();
            let orig = dst.clone();
            fma(&mut dst, &src, c);
            for i in 0..100 {
                assert_eq!(dst[i], orig[i] ^ mul(c, src[i]));
            }
        }
    }

    #[test]
    fn scale_matches_scalar() {
        for c in [0u8, 1, 5, 128, 255] {
            let mut dst: Vec<u8> = (0..64).map(|i| (i * 41 + 1) as u8).collect();
            let orig = dst.clone();
            scale(&mut dst, c);
            for i in 0..64 {
                assert_eq!(dst[i], mul(c, orig[i]));
            }
        }
    }
}
