//! Arithmetic over GF(2^8).
//!
//! The field is constructed modulo the RFC 6330 polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`), with `α = 2` as the multiplicative
//! generator. Log/exp tables are generated at compile time so multiplication
//! is two table lookups and an addition.
//!
//! Besides scalar arithmetic this module provides the *symbol* operations
//! the codec is built from: XOR of whole symbols (`u64`-wide,
//! autovectorizable) and table-driven multiply-accumulate / scaling over
//! whole slices ([`addmul`], [`mul_slice`]) that index one 256-byte row of
//! a compile-time 64 KiB product table per coefficient — branchless in the
//! per-byte loop, which is what the solver's forward-elimination and dense
//! phases spend their time in.

/// The reduction polynomial, `x^8 + x^4 + x^3 + x^2 + 1`, as the low 9 bits.
pub const POLY: u16 = 0x11D;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Exponent table: `EXP[i] = α^i` for `i` in `0..510`.
///
/// The table is doubled in length so `mul` can index `EXP[log a + log b]`
/// without a modular reduction.
pub static EXP: [u8; 510] = build_exp();

/// Log table: `LOG[x] = log_α x` for `x != 0`. `LOG[0]` is a sentinel (0)
/// and must never be used; all callers guard against zero operands.
pub static LOG: [u8; 256] = build_log();

/// Full 256×256 product table: `MUL_TABLE[a][b] = a · b`.
///
/// 64 KiB, built at compile time. The symbol-slice hot loops
/// ([`addmul`], [`mul_slice`]) index one *row* of this table, which turns
/// the per-byte work into a single data-dependent load and an XOR — no
/// zero-operand branch and no log-domain addition as with the
/// [`EXP`]/[`LOG`] pair. The row layout keeps the working set at 256
/// bytes (four cache lines) per coefficient, which is what lets the
/// compiler unroll the loop and the prefetcher keep up.
pub static MUL_TABLE: [[u8; 256]; 256] = build_mul_table();

const fn build_exp() -> [u8; 510] {
    let mut table = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

const fn build_mul_table() -> [[u8; 256]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let mut b = 1usize;
        while b < 256 {
            table[a][b] = exp[log[a] as usize + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

/// Multiply two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL_TABLE[a as usize][b as usize]
}

/// Multiplicative inverse. Panics on zero (division by zero is a logic
/// error in the solver, not a runtime condition).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "gf256: inverse of zero");
    EXP[255 - LOG[a as usize] as usize]
}

/// Divide `a` by `b`. Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    if a == 0 {
        0
    } else {
        assert!(b != 0, "gf256: division by zero");
        let diff = 255 + LOG[a as usize] as usize - LOG[b as usize] as usize;
        EXP[diff]
    }
}

/// Addition (= subtraction) in GF(2^8) is XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// `α^i` for arbitrary exponent.
#[inline]
pub fn alpha_pow(i: usize) -> u8 {
    EXP[i % 255]
}

/// XOR `src` into `dst` (symbol addition). Both slices must be the same
/// length; this is an invariant of symbol storage, so it is asserted.
#[inline]
pub fn xor_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "symbol length mismatch");
    // u64-wide fast path; the remainder is handled byte by byte.
    let (dst_chunks, dst_rest) = dst.split_at_mut(dst.len() - dst.len() % 8);
    let (src_chunks, src_rest) = src.split_at(src.len() - src.len() % 8);
    for (d, s) in dst_chunks
        .chunks_exact_mut(8)
        .zip(src_chunks.chunks_exact(8))
    {
        let x = u64::from_ne_bytes(d.try_into().unwrap());
        let y = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&(x ^ y).to_ne_bytes());
    }
    for (d, s) in dst_rest.iter_mut().zip(src_rest) {
        *d ^= s;
    }
}

/// Table-driven multiply-accumulate over whole symbol slices:
/// `dst[i] ^= c · dst_len-matched src[i]`.
///
/// The per-byte loop is branchless — one row of [`MUL_TABLE`] is selected
/// once, then every byte is a load + XOR with no data-dependent control
/// flow (the old log/exp formulation branched on `src[i] == 0` and did two
/// dependent lookups per byte). `c == 0` is a no-op and `c == 1`
/// degenerates to [`xor_assign`] (which takes the `u64`-wide
/// autovectorized path); both are common in the solver so they get
/// dedicated paths.
#[inline]
pub fn addmul(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {}
        1 => xor_assign(dst, src),
        _ => {
            assert_eq!(dst.len(), src.len(), "symbol length mismatch");
            let row = &MUL_TABLE[c as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
}

/// Table-driven in-place symbol scaling: `dst[i] = c · dst[i]`.
///
/// Branchless per-byte loop over one [`MUL_TABLE`] row, like [`addmul`].
#[inline]
pub fn mul_slice(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = &MUL_TABLE[c as usize];
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
    }
}

/// Fused multiply-accumulate on symbols: `dst[i] ^= c · src[i]`.
///
/// Alias for [`addmul`], kept for the solver's historical vocabulary.
#[inline]
pub fn fma(dst: &mut [u8], src: &[u8], c: u8) {
    addmul(dst, src, c);
}

/// Scale a symbol in place: `dst[i] = c · dst[i]`.
///
/// Alias for [`mul_slice`].
#[inline]
pub fn scale(dst: &mut [u8], c: u8) {
    mul_slice(dst, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent scalar reference: carry-less "Russian peasant"
    /// multiplication modulo [`POLY`], sharing no code (and no tables)
    /// with the implementations under test.
    fn mul_ref(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let mut aa = u16::from(a);
        let mut bb = b;
        while bb != 0 {
            if bb & 1 != 0 {
                acc ^= aa;
            }
            aa <<= 1;
            if aa & 0x100 != 0 {
                aa ^= POLY;
            }
            bb >>= 1;
        }
        acc as u8
    }

    /// Deterministic byte stream for slice tests (no external RNG dep).
    fn bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn mul_table_matches_reference_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_ref(a, b), "mul({a},{b})");
                assert_eq!(
                    MUL_TABLE[a as usize][b as usize],
                    mul_ref(a, b),
                    "MUL_TABLE[{a}][{b}]"
                );
            }
        }
    }

    #[test]
    fn addmul_matches_reference_all_scalars() {
        // Every scalar, over a slice long enough to exercise unrolling.
        let src = bytes(0xA11CE, 257);
        let base = bytes(0xB0B, 257);
        for c in 0..=255u8 {
            let mut dst = base.clone();
            addmul(&mut dst, &src, c);
            for i in 0..src.len() {
                assert_eq!(dst[i], base[i] ^ mul_ref(c, src[i]), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_reference_all_scalars() {
        let base = bytes(0xCAFE, 257);
        for c in 0..=255u8 {
            let mut dst = base.clone();
            mul_slice(&mut dst, c);
            for i in 0..base.len() {
                assert_eq!(dst[i], mul_ref(c, base[i]), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn addmul_length_edges() {
        // Empty slices, sub-word lengths, and word-boundary straddles —
        // the lengths where a chunked fast path would get its tail wrong.
        for len in [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let src = bytes(len as u64 + 1, len);
            let base = bytes(len as u64 + 1000, len);
            for c in [0u8, 1, 2, 0x53, 0xFF] {
                let mut dst = base.clone();
                addmul(&mut dst, &src, c);
                for i in 0..len {
                    assert_eq!(dst[i], base[i] ^ mul_ref(c, src[i]), "len={len} c={c}");
                }
                let mut dst2 = base.clone();
                mul_slice(&mut dst2, c);
                for i in 0..len {
                    assert_eq!(dst2[i], mul_ref(c, base[i]), "len={len} c={c}");
                }
            }
        }
    }

    #[test]
    fn addmul_random_slices() {
        // Random (length, scalar, contents) triples, checked bytewise.
        let mut seed = 0x5EED_u64;
        for trial in 0..200 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let len = (seed >> 33) as usize % 200;
            let c = (seed >> 24) as u8;
            let src = bytes(seed ^ 0x1111, len);
            let base = bytes(seed ^ 0x2222, len);
            let mut dst = base.clone();
            addmul(&mut dst, &src, c);
            for i in 0..len {
                assert_eq!(
                    dst[i],
                    base[i] ^ mul_ref(c, src[i]),
                    "trial={trial} len={len} c={c} i={i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "symbol length mismatch")]
    fn addmul_length_mismatch_panics() {
        let mut dst = vec![0u8; 4];
        addmul(&mut dst, &[1u8; 5], 2);
    }

    #[test]
    fn exp_log_roundtrip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
    }

    #[test]
    fn alpha_generates_field() {
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[EXP[i] as usize] = true;
        }
        // α generates every nonzero element exactly once.
        assert!(!seen[0]);
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn mul_commutative_associative() {
        // Spot-check algebraic laws over a grid (exhaustive over pairs).
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
                assert_eq!(mul(a, 1), a);
                assert_eq!(mul(a, 0), 0);
            }
        }
        // Associativity on a coarser grid to keep the test fast.
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(9) {
                for c in (0..=255u8).step_by(13) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_law() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inverse_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn div_matches_mul_inv() {
        for a in (0..=255u8).step_by(3) {
            for b in 1..=255u8 {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    fn xor_assign_all_lengths() {
        // Exercise the chunked fast path and the tail for many lengths.
        for len in 0..70 {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 53 + 7) as u8).collect();
            let mut d = a.clone();
            xor_assign(&mut d, &b);
            for i in 0..len as usize {
                assert_eq!(d[i], a[i] ^ b[i]);
            }
            // XOR is an involution.
            xor_assign(&mut d, &b);
            assert_eq!(d, a);
        }
    }

    #[test]
    fn fma_matches_scalar() {
        let src: Vec<u8> = (0..100).map(|i| (i * 17) as u8).collect();
        for c in [0u8, 1, 2, 37, 255] {
            let mut dst: Vec<u8> = (0..100).map(|i| (i * 29 + 3) as u8).collect();
            let orig = dst.clone();
            fma(&mut dst, &src, c);
            for i in 0..100 {
                assert_eq!(dst[i], orig[i] ^ mul(c, src[i]));
            }
        }
    }

    #[test]
    fn scale_matches_scalar() {
        for c in [0u8, 1, 5, 128, 255] {
            let mut dst: Vec<u8> = (0..64).map(|i| (i * 41 + 1) as u8).collect();
            let orig = dst.clone();
            scale(&mut dst, c);
            for i in 0..64 {
                assert_eq!(dst[i], mul(c, orig[i]));
            }
        }
    }
}
