//! Systematic encoder for a single source block.

use crate::gf256;
use crate::matrix::{hdpc_rows, ldpc_rows, lt_row, ConstraintRow, RowKind};
use crate::params::{BlockParams, CodeMode};
use crate::solver::{solve, SolveError};
use crate::tuple::lt_columns_with_floor;

/// Everything a decoder must know to decode one block. Communicated
/// out-of-band (in Polyraptor: at session establishment), like RFC 6330's
/// object transmission information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeParams {
    /// Number of source symbols in the block.
    pub k: usize,
    /// Symbol size in bytes.
    pub symbol_size: usize,
    /// Length of the real data (the last symbol may carry zero padding).
    pub data_len: usize,
    /// Construction tweak: bumped (rarely) until the legacy systematic
    /// constraint matrix is invertible for this `k`. Always 0 in
    /// [`CodeMode::Systematic`] — the direct construction cannot fail.
    pub tweak: u8,
    /// Intermediate-block construction mode; encoder and decoder must
    /// agree, so it travels with the block parameters.
    pub mode: CodeMode,
}

/// Errors from encoder construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The input was empty; a block must carry at least one byte.
    EmptyData,
    /// `k` would exceed [`crate::params::MAX_K`]; split the object into
    /// blocks (see [`crate::block`]).
    BlockTooLarge {
        /// The number of source symbols the data would need.
        k: usize,
    },
    /// No construction tweak in `0..=255` produced an invertible matrix.
    /// Practically unreachable (each attempt fails with probability
    /// ~2⁻⁹⁶); kept as an honest error path instead of a panic.
    ConstructionFailed,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::EmptyData => write!(f, "cannot encode an empty block"),
            EncodeError::BlockTooLarge { k } => {
                write!(
                    f,
                    "block needs K={k} symbols, above MAX_K; use ObjectEncoder"
                )
            }
            EncodeError::ConstructionFailed => {
                write!(f, "no construction tweak yields an invertible matrix")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Systematic rateless encoder for one source block.
///
/// Encoding symbols are addressed by *encoding symbol id* (ESI):
/// `esi < k` returns the source symbols themselves (the systematic part —
/// in Polyraptor these flow first so a lossless transfer pays zero decode
/// latency); `esi >= k` returns repair symbols, of which there are
/// effectively unlimited (`u32` space).
///
/// In the default [`CodeMode::Systematic`] mode construction is solve-free
/// (the intermediates are source plus directly-computed parity);
/// [`Encoder::legacy`] keeps the original solve-based construction for A/B
/// comparison. Either way the intermediate precompute happens once here
/// and is reused across every repair symbol.
///
/// ```
/// use rq::Encoder;
/// let data = vec![7u8; 4000];
/// let enc = Encoder::new(&data, 1440).unwrap();
/// assert_eq!(enc.params().k, 3);
/// let src0 = enc.symbol(0); // first source symbol
/// assert_eq!(&src0[..], &data[..1440]);
/// let repair = enc.symbol(12345); // any repair symbol, on demand
/// assert_eq!(repair.len(), 1440);
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    params: BlockParams,
    code: CodeParams,
    source: Vec<Vec<u8>>,
    intermediates: Vec<Vec<u8>>,
}

impl Encoder {
    /// Build an encoder over `data` with the given symbol size, in the
    /// default [`CodeMode::Systematic`] mode (direct parity construction,
    /// no solve).
    pub fn new(data: &[u8], symbol_size: usize) -> Result<Self, EncodeError> {
        Self::with_mode(data, symbol_size, CodeMode::Systematic)
    }

    /// Build an encoder in the solve-based [`CodeMode::Legacy`] mode —
    /// kept for A/B comparison against the systematic fast path.
    pub fn legacy(data: &[u8], symbol_size: usize) -> Result<Self, EncodeError> {
        Self::with_mode(data, symbol_size, CodeMode::Legacy)
    }

    /// Build an encoder over `data` in an explicit mode.
    pub fn with_mode(data: &[u8], symbol_size: usize, mode: CodeMode) -> Result<Self, EncodeError> {
        assert!(symbol_size > 0, "symbol size must be positive");
        if data.is_empty() {
            return Err(EncodeError::EmptyData);
        }
        let k = data.len().div_ceil(symbol_size);
        if k > crate::params::MAX_K {
            return Err(EncodeError::BlockTooLarge { k });
        }
        // Slice the data into symbols, zero-padding the tail.
        let mut source: Vec<Vec<u8>> = Vec::with_capacity(k);
        for i in 0..k {
            let start = i * symbol_size;
            let end = (start + symbol_size).min(data.len());
            let mut sym = data[start..end].to_vec();
            sym.resize(symbol_size, 0);
            source.push(sym);
        }
        let params = BlockParams::new(k);

        match mode {
            CodeMode::Systematic => {
                // Direct construction: no solve, no tweak, cannot fail.
                let intermediates = Self::systematic_intermediates(&params, &source, symbol_size);
                Ok(Self {
                    params,
                    code: CodeParams {
                        k,
                        symbol_size,
                        data_len: data.len(),
                        tweak: 0,
                        mode,
                    },
                    source,
                    intermediates,
                })
            }
            CodeMode::Legacy => {
                // Find a construction tweak that makes the systematic
                // matrix invertible. Attempt 0 works essentially always.
                for tweak in 0u8..=255 {
                    match Self::derive_intermediates(&params, tweak, &source, symbol_size) {
                        Ok(intermediates) => {
                            let code = CodeParams {
                                k,
                                symbol_size,
                                data_len: data.len(),
                                tweak,
                                mode,
                            };
                            return Ok(Self {
                                params,
                                code,
                                source,
                                intermediates,
                            });
                        }
                        Err(SolveError::Singular) => continue,
                    }
                }
                Err(EncodeError::ConstructionFailed)
            }
        }
    }

    /// Direct systematic construction: the intermediate block is
    /// `[source | LDPC parity | HDPC parity]`, each parity symbol computed
    /// straight from its constraint row — a couple of streaming passes over
    /// the block instead of an `L×L` inactivation solve.
    ///
    /// This works because the precode rows are triangular over the parity
    /// columns: LDPC row `j` touches only source columns plus its identity
    /// column `K+j`, and HDPC row `h` touches columns `[0, K+S)` plus its
    /// identity column `K+S+h` — so each parity symbol is determined by
    /// columns constructed before it.
    fn systematic_intermediates(
        params: &BlockParams,
        source: &[Vec<u8>],
        symbol_size: usize,
    ) -> Vec<Vec<u8>> {
        let k = params.k;
        let ks = k + params.s;
        let mut c: Vec<Vec<u8>> = Vec::with_capacity(params.l);
        c.extend(source.iter().cloned());
        // LDPC parity: row j is `C[k+j] + XOR(source cols) = 0`.
        for row in ldpc_rows(params, symbol_size) {
            let RowKind::Binary { cols } = row.kind else {
                unreachable!("LDPC rows are binary")
            };
            debug_assert_eq!(
                cols.iter().filter(|&&col| col as usize >= k).count(),
                1,
                "LDPC row must touch exactly one parity column (its identity)"
            );
            let mut sym = vec![0u8; symbol_size];
            for col in cols {
                if (col as usize) < k {
                    gf256::xor_assign(&mut sym, &c[col as usize]);
                }
            }
            c.push(sym);
        }
        // HDPC parity: row h is `C[ks+h] + Σ coef_j · C[j] = 0` over
        // `j < K+S`, all of which are already constructed.
        for row in hdpc_rows(params, 0, symbol_size) {
            let RowKind::Dense { coefs } = row.kind else {
                unreachable!("HDPC rows are dense")
            };
            let mut sym = vec![0u8; symbol_size];
            for (j, &coef) in coefs.iter().enumerate().take(ks) {
                gf256::addmul(&mut sym, &c[j], coef);
            }
            c.push(sym);
        }
        debug_assert_eq!(c.len(), params.l);
        c
    }

    /// Solve the L×L systematic system: precode constraints plus the LT
    /// rows of ESIs `0..k` pinned to the source symbols.
    fn derive_intermediates(
        params: &BlockParams,
        tweak: u8,
        source: &[Vec<u8>],
        symbol_size: usize,
    ) -> Result<Vec<Vec<u8>>, SolveError> {
        let mut rows: Vec<ConstraintRow> = Vec::with_capacity(params.s + params.h + params.k);
        rows.extend(ldpc_rows(params, symbol_size));
        rows.extend(hdpc_rows(params, tweak, symbol_size));
        for (i, sym) in source.iter().enumerate() {
            rows.push(lt_row(params, tweak, i as u32, sym.clone()));
        }
        solve(params.l, rows, symbol_size)
    }

    /// The decoder-facing parameters of this block.
    pub fn params(&self) -> CodeParams {
        self.code
    }

    /// The internal block parameters (L, S, H, ...); exposed for tests and
    /// instrumentation.
    pub fn block_params(&self) -> BlockParams {
        self.params
    }

    /// Produce encoding symbol `esi`.
    ///
    /// Source symbols (`esi < k`) are returned from storage; repair
    /// symbols are LT-encoded from the intermediate block on demand
    /// (cost: mean-degree ≈ 4.6 symbol XORs, independent of `k`).
    pub fn symbol(&self, esi: u32) -> Vec<u8> {
        if (esi as usize) < self.code.k {
            self.source[esi as usize].clone()
        } else {
            self.lt_encode(esi)
        }
    }

    /// LT-encode any ESI from the intermediates.
    ///
    /// In [`CodeMode::Legacy`] this satisfies the solve-enforced property
    /// `lt_encode(i) == source[i]` for `i < k` (confirmed by tests). In
    /// [`CodeMode::Systematic`] it is only meaningful for repair ESIs —
    /// source symbols are emitted verbatim, not via the LT relation.
    pub fn lt_encode(&self, esi: u32) -> Vec<u8> {
        let min_d = match self.code.mode {
            CodeMode::Systematic => crate::params::sys_repair_min_degree(self.params.l),
            CodeMode::Legacy => 0,
        };
        let cols = lt_columns_with_floor(&self.params, self.code.tweak, esi, min_d);
        let mut out = vec![0u8; self.code.symbol_size];
        for c in cols {
            gf256::xor_assign(&mut out, &self.intermediates[c as usize]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 + 17) as u8).collect()
    }

    #[test]
    fn construction_succeeds_for_many_k() {
        // Legacy mode: the systematic solve uses exactly L rows, so a
        // duplicate LT tuple (birthday-bounded, ~10% per attempt) makes it
        // singular; the construction tweak retries deterministically — RFC
        // 6330 solves the same problem with its K' padding table. Assert
        // the retry count stays small rather than demanding zero.
        for k in [1usize, 2, 3, 5, 8, 13, 50, 101, 256, 500] {
            let d = data(k * 16);
            let enc = Encoder::legacy(&d, 16).unwrap();
            assert_eq!(enc.params().k, k, "k mismatch");
            assert!(
                enc.params().tweak <= 8,
                "k={k} needed {} construction retries — structural problem",
                enc.params().tweak
            );
            // Systematic mode never retries: the direct construction
            // cannot be singular.
            let sys = Encoder::new(&d, 16).unwrap();
            assert_eq!(sys.params().tweak, 0);
            assert_eq!(sys.params().mode, CodeMode::Systematic);
        }
    }

    #[test]
    fn systematic_intermediates_satisfy_precode() {
        // The direct construction must produce intermediates that satisfy
        // every LDPC and HDPC constraint row (zero RHS), i.e. exactly what
        // a decoder's reduced solve assumes.
        for k in [1usize, 2, 7, 40, 313] {
            let d = data(k * 24);
            let enc = Encoder::new(&d, 24).unwrap();
            let params = enc.block_params();
            let mut rows = ldpc_rows(&params, 24);
            rows.extend(hdpc_rows(&params, 0, 24));
            for (ri, row) in rows.iter().enumerate() {
                let mut acc = vec![0u8; 24];
                match &row.kind {
                    RowKind::Binary { cols } => {
                        for &c in cols {
                            gf256::xor_assign(&mut acc, &enc.intermediates[c as usize]);
                        }
                    }
                    RowKind::Dense { coefs } => {
                        for (j, &coef) in coefs.iter().enumerate() {
                            gf256::addmul(&mut acc, &enc.intermediates[j], coef);
                        }
                    }
                }
                assert!(
                    acc.iter().all(|&b| b == 0),
                    "k={k}: precode row {ri} not satisfied"
                );
            }
        }
    }

    #[test]
    fn systematic_source_symbols_verbatim() {
        let d = data(1000);
        let enc = Encoder::new(&d, 100).unwrap();
        for i in 0..enc.params().k {
            let sym = enc.symbol(i as u32);
            let start = i * 100;
            let end = (start + 100).min(d.len());
            assert_eq!(&sym[..end - start], &d[start..end]);
        }
    }

    #[test]
    fn nonzero_tweak_roundtrips() {
        // Force the legacy retry path by scanning for a K that needs
        // tweak > 0 (rare since the PI column landed, but the mechanism
        // must keep working): encoder and decoder must agree on the
        // retried construction end to end.
        let mut exercised = false;
        for k in 90..=600usize {
            let d = data(k * 16);
            let enc = Encoder::legacy(&d, 16).unwrap();
            if enc.params().tweak == 0 {
                continue;
            }
            exercised = true;
            let mut dec = crate::decoder::Decoder::new(enc.params());
            for esi in 3..k as u32 {
                dec.push(esi, enc.symbol(esi));
            }
            for esi in 2 * k as u32..2 * k as u32 + 5 {
                dec.push(esi, enc.symbol(esi));
            }
            assert_eq!(
                dec.try_decode().unwrap(),
                d,
                "tweak>0 roundtrip failed at k={k}"
            );
            break;
        }
        if !exercised {
            // No retry case in range: the mechanism is still covered by
            // construction_succeeds_for_many_k; nothing to assert.
            eprintln!("note: no k in 90..=600 required a construction retry");
        }
    }

    #[test]
    fn systematic_property() {
        // Legacy mode's defining property: the solve pins LT(esi<k) to
        // the source symbols bit-exactly.
        for k in [1usize, 4, 37, 200] {
            let d = data(k * 24);
            let enc = Encoder::legacy(&d, 24).unwrap();
            for i in 0..k as u32 {
                assert_eq!(
                    enc.lt_encode(i),
                    enc.symbol(i),
                    "systematic violation at esi={i}, k={k}"
                );
            }
        }
    }

    #[test]
    fn padding_on_partial_tail() {
        let d = data(100); // 100 bytes, symbol 64 → k=2, 28 bytes padding
        let enc = Encoder::new(&d, 64).unwrap();
        assert_eq!(enc.params().k, 2);
        assert_eq!(enc.params().data_len, 100);
        let s1 = enc.symbol(1);
        assert_eq!(&s1[..36], &d[64..]);
        assert!(s1[36..].iter().all(|&b| b == 0));
    }

    #[test]
    fn repair_symbols_deterministic() {
        let d = data(1000);
        let a = Encoder::new(&d, 100).unwrap();
        let b = Encoder::new(&d, 100).unwrap();
        for esi in [10u32, 11, 999, 123_456] {
            assert_eq!(a.symbol(esi), b.symbol(esi));
        }
    }

    #[test]
    fn empty_data_rejected() {
        assert_eq!(Encoder::new(&[], 16).unwrap_err(), EncodeError::EmptyData);
    }

    #[test]
    fn oversized_block_rejected() {
        let d = vec![0u8; (crate::params::MAX_K + 1) * 4];
        match Encoder::new(&d, 4) {
            Err(EncodeError::BlockTooLarge { k }) => assert!(k > crate::params::MAX_K),
            other => panic!("expected BlockTooLarge, got {other:?}"),
        }
    }
}
