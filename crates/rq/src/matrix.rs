//! Constraint-row construction for the systematic code.
//!
//! The intermediate block `C[0..L]` is pinned down by three row families
//! (RFC 6330 architecture):
//!
//! * **LDPC rows** (`S`, sparse binary): each source position `i` is folded
//!   into three LDPC accumulators by a circulant walk; row `j` also carries
//!   an identity 1 at column `K + j`. These give the peeling decoder cheap
//!   structure to chew on.
//! * **HDPC rows** (`H`, dense GF(256)): pseudo-random dense rows over the
//!   first `K + S` columns plus identity at `K + S + h`. Dense random rows
//!   over GF(256) are what make residual rank loss collapse by ~2⁻⁸ per
//!   extra received symbol — the steep failure curve the paper quotes
//!   ("n + 2 symbols ⇒ failure ≈ 10⁻⁶").
//! * **LT rows** (one per known encoding symbol, sparse binary): the
//!   systematic relation `LT(esi) = symbol value`.

use crate::params::BlockParams;
use crate::rand::{hash2, rand};
use crate::tuple::lt_columns;

/// The coefficient structure of one constraint row.
#[derive(Debug, Clone)]
pub enum RowKind {
    /// Sparse row with all-ones coefficients at `cols` (indices into the
    /// intermediate block, each appearing once).
    Binary {
        /// Columns with coefficient 1.
        cols: Vec<u32>,
    },
    /// Dense GF(256) row; `coefs.len() == L`.
    Dense {
        /// Coefficient per intermediate column.
        coefs: Vec<u8>,
    },
}

/// A constraint row: coefficients plus right-hand-side symbol value.
#[derive(Debug, Clone)]
pub struct ConstraintRow {
    /// Coefficient structure.
    pub kind: RowKind,
    /// RHS symbol (`symbol_size` bytes). All-zero for precode constraints.
    pub value: Vec<u8>,
}

impl ConstraintRow {
    /// Sparse binary row with a zero RHS of `symbol_size` bytes.
    pub fn binary_zero(cols: Vec<u32>, symbol_size: usize) -> Self {
        Self {
            kind: RowKind::Binary { cols },
            value: vec![0; symbol_size],
        }
    }
}

/// Build the `S` LDPC constraint rows (zero RHS).
pub fn ldpc_rows(params: &BlockParams, symbol_size: usize) -> Vec<ConstraintRow> {
    let k = params.k;
    let s = params.s;
    let mut cols_per_row: Vec<Vec<u32>> = (0..s)
        .map(|j| vec![(k + j) as u32]) // identity part
        .collect();
    for i in 0..k {
        // Circulant triple-hit walk (RFC 5053 §5.4.2.3). S >= 2 always,
        // and for S == 2 the stride degenerates to 1, which is still fine.
        let a = 1 + (i / s) % (s.saturating_sub(1).max(1));
        let mut b = i % s;
        for _ in 0..3 {
            let row = &mut cols_per_row[b];
            // The same source column can be hit twice only if S < 3; over
            // GF(2) a double hit cancels, so toggle membership.
            if let Some(pos) = row.iter().position(|&c| c == i as u32) {
                row.swap_remove(pos);
            } else {
                row.push(i as u32);
            }
            b = (b + a) % s;
        }
    }
    cols_per_row
        .into_iter()
        .map(|cols| ConstraintRow::binary_zero(cols, symbol_size))
        .collect()
}

/// Build the `H` dense HDPC constraint rows (zero RHS).
///
/// Coefficients over columns `[0, K+S)` come from the deterministic hash
/// (`tweak` participates so a construction retry reshuffles them too);
/// column `K+S+h` carries the identity 1.
pub fn hdpc_rows(params: &BlockParams, tweak: u8, symbol_size: usize) -> Vec<ConstraintRow> {
    let ks = params.k + params.s;
    (0..params.h)
        .map(|h| {
            let seed = hash2(u64::from(tweak) << 8 | 0x4844, h as u64); // 0x4844 = "HD"
            let mut coefs = vec![0u8; params.l];
            for (j, c) in coefs.iter_mut().enumerate().take(ks) {
                *c = rand(seed, j as u64, 256) as u8;
            }
            coefs[ks + h] = 1;
            ConstraintRow {
                kind: RowKind::Dense { coefs },
                value: vec![0; symbol_size],
            }
        })
        .collect()
}

/// Build the LT row for encoding symbol `esi` with RHS `value`.
pub fn lt_row(params: &BlockParams, tweak: u8, esi: u32, value: Vec<u8>) -> ConstraintRow {
    ConstraintRow {
        kind: RowKind::Binary {
            cols: lt_columns(params, tweak, esi),
        },
        value,
    }
}
