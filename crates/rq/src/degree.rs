//! LT degree distribution.
//!
//! The encoding-symbol degree (how many intermediate symbols are XORed into
//! one LT symbol) is sampled from the Raptor degree distribution of
//! RFC 5053 §5.4.4.2 — the same distribution family RFC 6330 uses. The
//! distribution is given as a cumulative table over `v ∈ [0, 2^20)`.

/// Cumulative degree distribution table `(f[j], d[j])`: a uniform
/// `v < 2^20` maps to the first entry with `v < f[j]`.
const TABLE: &[(u32, u32)] = &[
    (10_241, 1),
    (491_582, 2),
    (712_794, 3),
    (831_695, 4),
    (948_446, 10),
    (1_032_189, 11),
    (1 << 20, 40),
];

/// Upper bound of the sampling domain (`v` is drawn uniformly below this).
pub const DEGREE_DOMAIN: u32 = 1 << 20;

/// Maximum degree the distribution can produce.
pub const MAX_DEGREE: u32 = 40;

/// Map a uniform value `v ∈ [0, 2^20)` to an LT degree.
#[inline]
pub fn degree(v: u32) -> u32 {
    debug_assert!(v < DEGREE_DOMAIN, "degree: v out of domain");
    for &(f, d) in TABLE {
        if v < f {
            return d;
        }
    }
    // Unreachable for in-domain v; the last table entry covers 2^20.
    MAX_DEGREE
}

/// Average degree of the distribution (used in documentation and tests).
pub fn mean_degree() -> f64 {
    let mut prev = 0u32;
    let mut acc = 0f64;
    for &(f, d) in TABLE {
        acc += f64::from(f - prev) * f64::from(d);
        prev = f;
    }
    acc / f64::from(DEGREE_DOMAIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::rand;

    #[test]
    fn degree_boundaries() {
        assert_eq!(degree(0), 1);
        assert_eq!(degree(10_240), 1);
        assert_eq!(degree(10_241), 2);
        assert_eq!(degree(491_581), 2);
        assert_eq!(degree(491_582), 3);
        assert_eq!(degree((1 << 20) - 1), 40);
    }

    #[test]
    fn mean_degree_is_small() {
        // The Raptor distribution is designed to have a small constant mean
        // (≈ 4.6), independent of K. This is what makes encoding O(1) per
        // symbol.
        let m = mean_degree();
        assert!((4.0..5.5).contains(&m), "mean degree {m} out of range");
    }

    #[test]
    fn sampled_mean_matches_analytic() {
        let n = 200_000u64;
        let mut acc = 0u64;
        for i in 0..n {
            acc += u64::from(degree(rand(7, i, DEGREE_DOMAIN)));
        }
        let sampled = acc as f64 / n as f64;
        let analytic = mean_degree();
        assert!(
            (sampled - analytic).abs() < 0.05,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn degree_one_fraction() {
        // P(d = 1) = 10241 / 2^20 ≈ 0.98%. Degree-1 symbols seed the
        // peeling decoder, so the fraction must be positive but small.
        let p1 = 10_241f64 / f64::from(DEGREE_DOMAIN);
        assert!(p1 > 0.005 && p1 < 0.02);
    }
}
