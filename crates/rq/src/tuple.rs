//! LT tuple generation: which intermediate symbols make up an encoding
//! symbol.
//!
//! Every encoding symbol is identified by its *encoding symbol id* (ESI).
//! The tuple generator maps `(construction tweak, ESI)` to a triple
//! `(d, a, b)`; the symbol is then the XOR of `d` intermediate symbols
//! visited by the walk `b, b+a, b+2a, … (mod L')`, skipping positions
//! `>= L` — the RFC 5053/6330 construction. Because `L'` is prime the walk
//! visits every residue, so the columns of one symbol are distinct.

use crate::degree::{degree, DEGREE_DOMAIN};
use crate::params::BlockParams;
use crate::rand::{hash2, rand};

/// An LT tuple: degree and walk parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// Number of intermediate symbols XORed together.
    pub d: u32,
    /// Walk stride, `1 <= a < L'`.
    pub a: u32,
    /// Walk start, `0 <= b < L'`.
    pub b: u32,
}

/// Generate the tuple for encoding symbol `esi` under construction
/// `tweak`.
///
/// The tweak is bumped by the encoder if the systematic constraint matrix
/// happens to be singular for a given `K` (rare); it is carried in the
/// object parameters so decoders build identical tuples.
pub fn tuple(params: &BlockParams, tweak: u8, esi: u32) -> Tuple {
    let y = hash2(u64::from(tweak) << 32 | 0xC0DE, u64::from(esi));
    let v = rand(y, 0, DEGREE_DOMAIN);
    let d = degree(v);
    let a = 1 + rand(y, 1, (params.l_prime - 1) as u32);
    let b = rand(y, 2, params.l_prime as u32);
    Tuple { d, a, b }
}

/// The intermediate-symbol columns of encoding symbol `esi`.
///
/// Returns indices in `[0, L)`, all distinct: the LT walk plus one
/// *permanently-inactive* (PI) column from the last
/// [`BlockParams::pi`] columns — RFC 6330's PI structure. Without the
/// PI column, sparse dependencies (two degree-1 rows on the same
/// column; cycles in the degree-2 graph) accumulate linearly in `K`
/// and make the square systematic solve fail for essentially every
/// construction at `K ≳ 10⁴`; the PI column breaks binary
/// cancellation patterns at the cost of one extra XOR per symbol.
pub fn lt_columns(params: &BlockParams, tweak: u8, esi: u32) -> Vec<u32> {
    lt_columns_with_floor(params, tweak, esi, 0)
}

/// [`lt_columns`] with a minimum walk degree.
///
/// The systematic (direct-construction) mode uses a floored degree for its
/// repair symbols: with received source symbols folded out of the decode
/// system, a repair row only contributes the columns that remain unknown,
/// and the plain LT degree distribution (mean ≈ 4.6) leaves too few — the
/// projected rows degenerate to degree ≈ 2 at moderate loss and the
/// reduced system goes rank-deficient at rates far above the code's
/// overhead-failure envelope. Flooring the walk degree restores the
/// envelope at the cost of a few extra XORs per *repair* symbol (source
/// symbols are emitted verbatim and pay nothing).
pub fn lt_columns_with_floor(params: &BlockParams, tweak: u8, esi: u32, min_d: u32) -> Vec<u32> {
    let Tuple { d, a, b } = tuple(params, tweak, esi);
    let l = params.l as u32;
    let lp = params.l_prime as u32;
    let d = d.max(min_d).min(l); // degree can't exceed the number of intermediates
    let mut cols = Vec::with_capacity(d as usize + 1);
    let mut b = b;
    while b >= l {
        b = (b + a) % lp;
    }
    cols.push(b);
    for _ in 1..d {
        b = (b + a) % lp;
        while b >= l {
            b = (b + a) % lp;
        }
        cols.push(b);
    }
    // PI column: one draw from the dense-handled tail range [L−P, L).
    let y = crate::rand::hash2(u64::from(tweak) << 32 | 0xC0DE, u64::from(esi));
    let pi_col = l - params.pi as u32 + crate::rand::rand(y, 3, params.pi as u32);
    if !cols.contains(&pi_col) {
        cols.push(pi_col);
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize) -> BlockParams {
        BlockParams::new(k)
    }

    #[test]
    fn tuples_deterministic() {
        let p = params(100);
        for esi in 0..50 {
            assert_eq!(tuple(&p, 0, esi), tuple(&p, 0, esi));
        }
    }

    #[test]
    fn tweak_changes_tuples() {
        let p = params(100);
        let t0: Vec<_> = (0..20).map(|e| tuple(&p, 0, e)).collect();
        let t1: Vec<_> = (0..20).map(|e| tuple(&p, 1, e)).collect();
        assert_ne!(t0, t1);
    }

    #[test]
    fn columns_distinct_and_in_range() {
        for k in [1usize, 2, 10, 100, 1000] {
            let p = params(k);
            for esi in 0..200u32 {
                let cols = lt_columns(&p, 0, esi);
                assert!(!cols.is_empty());
                let mut sorted = cols.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    cols.len(),
                    "duplicate column for esi={esi} k={k}"
                );
                assert!(cols.iter().all(|&c| (c as usize) < p.l));
            }
        }
    }

    #[test]
    fn column_degree_matches_tuple() {
        // Walk degree plus the PI column (which dedups against the walk,
        // so the total is d or d+1).
        let p = params(500);
        for esi in 0..500u32 {
            let t = tuple(&p, 0, esi);
            let cols = lt_columns(&p, 0, esi);
            let d = t.d.min(p.l as u32);
            assert!(
                cols.len() as u32 == d || cols.len() as u32 == d + 1,
                "esi={esi}: {} cols vs walk degree {d}",
                cols.len()
            );
            // The PI column lands in the tail range.
            let pi_lo = (p.l - p.pi) as u32;
            assert!(
                cols.iter().any(|&c| c >= pi_lo),
                "esi={esi}: no PI-range column"
            );
        }
    }

    #[test]
    fn distinct_esis_mostly_distinct_tuples() {
        // Statistical uniqueness: the property multi-source senders rely
        // on. Among 10k ESIs the full column sets collide only with
        // birthday-bound probability.
        let p = params(1000);
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for esi in 0..10_000u32 {
            let mut cols = lt_columns(&p, 0, esi);
            cols.sort_unstable();
            if !seen.insert(cols) {
                collisions += 1;
            }
        }
        // Degree-1/2 symbols collide occasionally; that is fine — the
        // decoder dedups by ESI, and collisions only waste a symbol.
        assert!(collisions < 300, "too many tuple collisions: {collisions}");
    }
}
