//! Code parameters derived from the source-block size `K`.
//!
//! For a block of `K` source symbols the code uses
//! `L = K + S + H` *intermediate* symbols:
//!
//! * `S` sparse binary LDPC constraint symbols (RFC 5053 §5.4.2.3 recipe),
//! * `H` dense GF(256) HDPC constraint symbols (the RaptorQ-family
//!   improvement that buys the steep overhead-failure curve),
//! * the `K` source symbols themselves, tied to the intermediates by the
//!   systematic LT relation.
//!
//! **Substitution S1 (see DESIGN.md):** RFC 6330 ships a 477-entry table of
//! supported `K'` values with per-row constants. We instead *derive*
//! `(S, H)` from any `K` with the same structural recipe and validate the
//! overhead/failure contract empirically in tests and benches.

/// Hard upper bound on the number of source symbols in one block.
///
/// Keeps solver memory and time bounded; larger objects are split into
/// blocks by [`crate::block`].
pub const MAX_K: usize = 16_384;

/// Number of dense GF(256) HDPC constraint rows.
///
/// With random dense rows over GF(256) the probability that the dense
/// solve loses rank falls by ~2^-8 per extra row, so 12 rows put the
/// code-construction failure floor far below the per-decode failure rates
/// the paper cares about (10^-6 at two extra symbols).
pub const H_HDPC: usize = 12;

/// How the intermediate block relates to the source symbols.
///
/// Both modes emit the same wire format — source symbols at ESIs `0..K`,
/// LT repair symbols above — but differ in how the `L` intermediates are
/// constructed, which is where all the CPU goes:
///
/// * [`CodeMode::Systematic`] (the default, SCDP-style): the intermediates
///   *are* `[source | LDPC parity | HDPC parity]`, computed directly with
///   no linear solve at encode time, and the decoder pins received source
///   symbols straight into the output — only missing sources plus the
///   parity tail go through the inactivation solver, so decode cost
///   shrinks with the loss count and a lossless block is a pure copy.
/// * [`CodeMode::Legacy`]: the original solve-based construction — the
///   encoder inverts the full `L×L` systematic constraint matrix (LT rows
///   of ESIs `0..K` pinned to the source) and the decoder re-solves it on
///   any loss. Kept for A/B comparison; it is the baseline the systematic
///   fast path is gated against in `bench_smoke`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodeMode {
    /// Direct parity construction; no solve at encode, shrinking solve at
    /// decode. The default.
    #[default]
    Systematic,
    /// Solve-based construction on both sides (pre-SCDP behaviour).
    Legacy,
}

/// Minimum LT walk degree for repair symbols in [`CodeMode::Systematic`],
/// as a function of the intermediate-block size `L`.
///
/// The direct construction folds received source symbols out of the
/// decode system, so a repair row only contributes its columns that are
/// still unknown; with the plain degree distribution (mean ≈ 4.6) the
/// projected rows thin out to degree ≈ 2 at moderate loss and the reduced
/// system goes rank-deficient far more often than the code's
/// overhead-failure envelope allows. Flooring the walk degree — scaled
/// with `L` so the projection keeps enough weight as blocks grow — keeps
/// the reduced system's rank deficiency on the envelope (validated
/// empirically in the loss-sweep tests and `rq_overhead`), at the cost of
/// extra symbol XORs per *repair* symbol — source symbols pay nothing.
pub fn sys_repair_min_degree(l: usize) -> u32 {
    (10 + l / 16) as u32
}

/// Parameters of a single source block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParams {
    /// Number of source symbols.
    pub k: usize,
    /// Number of LDPC constraint symbols.
    pub s: usize,
    /// Number of HDPC constraint symbols.
    pub h: usize,
    /// Number of intermediate symbols (`k + s + h`).
    pub l: usize,
    /// Smallest prime `>= l`; the LT tuple walk works modulo this.
    pub l_prime: usize,
    /// Number of permanently-inactive columns at the tail of the
    /// intermediate block: every LT row carries one extra column drawn
    /// from the last `pi` columns (RFC 6330's PI structure), which
    /// suppresses sparse binary dependencies that otherwise make the
    /// systematic construction fail at large `K`.
    pub pi: usize,
}

impl BlockParams {
    /// Derive parameters for a block of `k` source symbols.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > MAX_K`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "block must have at least one source symbol");
        assert!(k <= MAX_K, "K={k} exceeds MAX_K={MAX_K}");
        // X = smallest integer with X(X-1) >= 2K  (RFC 5053).
        let mut x = 1usize;
        while x * (x.saturating_sub(1)) < 2 * k {
            x += 1;
        }
        // S = smallest prime >= ceil(0.01 K) + X.
        let s = next_prime(k.div_ceil(100) + x);
        let h = H_HDPC;
        let l = k + s + h;
        let l_prime = next_prime(l);
        // PI range: grows slowly with K so the per-construction
        // dependency rate stays flat (birthday terms scale ~K/pi).
        let pi = (h + k / 512).min(l / 2).max(4);
        Self {
            k,
            s,
            h,
            l,
            l_prime,
            pi,
        }
    }
}

/// Smallest prime `>= n`.
pub fn next_prime(n: usize) -> usize {
    let mut candidate = n.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

/// Deterministic trial-division primality test (inputs here are small).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// RFC 6330 §4.4.1.2 partition function: split `i` items into `j` nearly
/// equal parts. Returns `(il, is, jl, js)`: `jl` parts of size `il` and
/// `js` parts of size `is`.
pub fn partition(i: usize, j: usize) -> (usize, usize, usize, usize) {
    assert!(j > 0, "partition into zero parts");
    let il = i.div_ceil(j);
    let is = i / j;
    let jl = i - is * j;
    let js = j - jl;
    (il, is, jl, js)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_basic() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(9));
        assert!(is_prime(7919));
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
    }

    #[test]
    fn params_small_k() {
        for k in 1..=64 {
            let p = BlockParams::new(k);
            assert!(p.s >= 2, "S too small for K={k}");
            assert!(is_prime(p.s));
            assert_eq!(p.l, p.k + p.s + p.h);
            assert!(p.l_prime >= p.l);
            assert!(is_prime(p.l_prime));
        }
    }

    #[test]
    fn params_monotone_overheadish() {
        // S grows sub-linearly: the proportional overhead of the precode
        // shrinks as K grows (S ~ 0.01K + sqrt(2K)).
        let p100 = BlockParams::new(100);
        let p10000 = BlockParams::new(10_000);
        let r100 = p100.s as f64 / 100.0;
        let r10000 = p10000.s as f64 / 10_000.0;
        assert!(r10000 < r100);
    }

    #[test]
    fn params_k_2913() {
        // The paper's 4 MB blocks at 1440-byte symbols → K = 2913.
        let p = BlockParams::new(2913);
        assert_eq!(p.k, 2913);
        // X: X(X-1) >= 5826 → X = 77 (77*76 = 5852).
        // S = next_prime(ceil(29.13) + 77) = next_prime(107) = 107.
        assert_eq!(p.s, 107);
        assert_eq!(p.h, H_HDPC);
        assert_eq!(p.l, 2913 + 107 + 12);
    }

    #[test]
    #[should_panic(expected = "at least one source symbol")]
    fn zero_k_panics() {
        BlockParams::new(0);
    }

    #[test]
    fn partition_covers_everything() {
        for i in [1usize, 5, 100, 2913, 100_000] {
            for j in [1usize, 2, 3, 7, 64] {
                let (il, is, jl, js) = partition(i, j);
                assert_eq!(jl + js, j, "part count");
                assert_eq!(il * jl + is * js, i, "items covered exactly");
                if jl > 0 && js > 0 {
                    assert_eq!(il, is + 1, "part sizes differ by at most 1");
                }
            }
        }
    }
}
