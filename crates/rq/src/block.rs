//! Object layer: transparent partitioning of large objects into source
//! blocks (RFC 6330 §4.4.1).
//!
//! A block is bounded by [`crate::params::MAX_K`] source symbols to keep
//! solver cost bounded; bigger objects are split into `Z` nearly equal
//! blocks using the RFC partition function. Symbols are addressed by
//! `(source block number, ESI)`, like RFC 6330's FEC payload id.

use crate::decoder::{DecodeError, Decoder};
use crate::encoder::{CodeParams, EncodeError, Encoder};
use crate::params::{partition, CodeMode, MAX_K};

/// Identifies one encoding symbol of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PayloadId {
    /// Source block number.
    pub sbn: u8,
    /// Encoding symbol id within the block.
    pub esi: u32,
}

/// Object transmission information: everything the receiving side needs
/// to set up decoders. Sent out-of-band at session establishment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectParams {
    /// Total object length in bytes.
    pub object_len: usize,
    /// Symbol size in bytes (uniform across blocks).
    pub symbol_size: usize,
    /// Per-block code parameters, indexed by SBN.
    pub blocks: Vec<CodeParams>,
}

impl ObjectParams {
    /// Total number of source symbols across all blocks.
    pub fn total_source_symbols(&self) -> usize {
        self.blocks.iter().map(|b| b.k).sum()
    }
}

/// Encoder for an object of arbitrary size.
pub struct ObjectEncoder {
    params: ObjectParams,
    encoders: Vec<Encoder>,
}

impl ObjectEncoder {
    /// Split `data` into blocks and construct per-block encoders in the
    /// default [`CodeMode::Systematic`] mode.
    pub fn new(data: &[u8], symbol_size: usize) -> Result<Self, EncodeError> {
        Self::with_mode(data, symbol_size, CodeMode::Systematic)
    }

    /// Split `data` into blocks with an explicit construction mode (the
    /// mode travels in each block's [`CodeParams`], so decoders follow
    /// automatically).
    pub fn with_mode(data: &[u8], symbol_size: usize, mode: CodeMode) -> Result<Self, EncodeError> {
        if data.is_empty() {
            return Err(EncodeError::EmptyData);
        }
        let total_symbols = data.len().div_ceil(symbol_size);
        let z = total_symbols.div_ceil(MAX_K);
        let (kl, ks, zl, _zs) = partition(total_symbols, z);

        let mut encoders = Vec::with_capacity(z);
        let mut blocks = Vec::with_capacity(z);
        let mut offset = 0usize;
        for b in 0..z {
            let k = if b < zl { kl } else { ks };
            let end = (offset + k * symbol_size).min(data.len());
            let enc = Encoder::with_mode(&data[offset..end], symbol_size, mode)?;
            blocks.push(enc.params());
            encoders.push(enc);
            offset = end;
        }
        debug_assert_eq!(offset, data.len());
        Ok(Self {
            params: ObjectParams {
                object_len: data.len(),
                symbol_size,
                blocks,
            },
            encoders,
        })
    }

    /// The object parameters to hand to receivers.
    pub fn params(&self) -> &ObjectParams {
        &self.params
    }

    /// Number of source blocks.
    pub fn block_count(&self) -> usize {
        self.encoders.len()
    }

    /// Produce the encoding symbol identified by `id`.
    ///
    /// # Panics
    /// Panics if `id.sbn` is out of range (caller owns block addressing).
    pub fn symbol(&self, id: PayloadId) -> Vec<u8> {
        self.encoders[id.sbn as usize].symbol(id.esi)
    }
}

/// Decoder for an object of arbitrary size.
pub struct ObjectDecoder {
    params: ObjectParams,
    decoders: Vec<Decoder>,
}

impl ObjectDecoder {
    /// Set up per-block decoders from the object parameters.
    pub fn new(params: ObjectParams) -> Self {
        let decoders = params.blocks.iter().map(|&b| Decoder::new(b)).collect();
        Self { params, decoders }
    }

    /// Add a received symbol; returns `true` if it was new.
    pub fn push(&mut self, id: PayloadId, symbol: Vec<u8>) -> bool {
        self.decoders[id.sbn as usize].push(id.esi, symbol)
    }

    /// Distinct symbols received across all blocks.
    pub fn symbols_received(&self) -> usize {
        self.decoders.iter().map(|d| d.symbols_received()).sum()
    }

    /// Try to decode the whole object; succeeds only when every block
    /// decodes.
    pub fn try_decode(&self) -> Result<Vec<u8>, DecodeError> {
        let mut out = Vec::with_capacity(self.params.object_len);
        for dec in &self.decoders {
            out.extend_from_slice(&dec.try_decode()?);
        }
        debug_assert_eq!(out.len(), self.params.object_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn single_block_object() {
        let d = data(10_000);
        let enc = ObjectEncoder::new(&d, 1440).unwrap();
        assert_eq!(enc.block_count(), 1);
        let mut dec = ObjectDecoder::new(enc.params().clone());
        for esi in 0..enc.params().blocks[0].k as u32 {
            dec.push(
                PayloadId { sbn: 0, esi },
                enc.symbol(PayloadId { sbn: 0, esi }),
            );
        }
        assert_eq!(dec.try_decode().unwrap(), d);
    }

    #[test]
    fn multi_block_object() {
        // Force multiple blocks with a tiny symbol size.
        let d = data(MAX_K * 2 + 100);
        let enc = ObjectEncoder::new(&d, 1).unwrap();
        assert!(enc.block_count() >= 2, "expected multiple blocks");
        let mut dec = ObjectDecoder::new(enc.params().clone());
        for (sbn, block) in enc.params().blocks.clone().iter().enumerate() {
            // Lose one source symbol per block, add two repairs.
            let k = block.k as u32;
            for esi in 1..k {
                let id = PayloadId {
                    sbn: sbn as u8,
                    esi,
                };
                dec.push(id, enc.symbol(id));
            }
            for esi in k..k + 3 {
                let id = PayloadId {
                    sbn: sbn as u8,
                    esi,
                };
                dec.push(id, enc.symbol(id));
            }
        }
        assert_eq!(dec.try_decode().unwrap(), d);
    }

    #[test]
    fn paper_scale_object_params() {
        // The paper's 4 MB block with 1440-byte symbols fits one block.
        let enc = ObjectEncoder::new(&vec![0xAB; 4 << 20], 1440).unwrap();
        assert_eq!(enc.block_count(), 1);
        assert_eq!(enc.params().blocks[0].k, (4usize << 20).div_ceil(1440));
    }

    #[test]
    fn partial_block_decode_reports_need_more() {
        let d = data(5000);
        let enc = ObjectEncoder::new(&d, 100).unwrap();
        let dec = ObjectDecoder::new(enc.params().clone());
        assert!(matches!(
            dec.try_decode(),
            Err(DecodeError::NeedMoreSymbols { .. })
        ));
    }
}
