//! Inactivation decoding: the linear solver behind both the systematic
//! encoder (deriving intermediate symbols) and the decoder.
//!
//! The solver runs the classic three-phase pipeline:
//!
//! 1. **Structural peeling with inactivation.** Working only on the sparse
//!    binary rows' column sets (no symbol arithmetic), repeatedly select a
//!    minimum-active-degree row; if its degree is 1 it pivots directly
//!    (belief-propagation peeling), otherwise all but one of its active
//!    columns are *inactivated* and it pivots on the survivor. Because a
//!    pivot row has exactly one active column at selection time, the pivot
//!    order triangularizes the active sub-matrix — no fill-in occurs and
//!    active-column membership never changes, which is what makes the
//!    structural phase purely combinatorial.
//! 2. **Forward elimination + dense solve.** Replay the pivots in order,
//!    now carrying symbol values and each row's dense projection onto the
//!    inactivated columns; the never-selected rows (including the dense
//!    GF(256) HDPC rows) end up as a small dense system over the
//!    inactivated unknowns, solved by Gaussian elimination.
//! 3. **Back-substitution.** Each pivot row is, by construction, `pivot
//!    column + (inactive projection)`, so pivot unknowns fall out with one
//!    fused multiply-accumulate pass per row.
//!
//! Failure surfaces as [`SolveError::Singular`]: the encoder responds by
//! bumping the construction tweak; the decoder by waiting for more
//! symbols.

use crate::gf256;
use crate::matrix::{ConstraintRow, RowKind};

/// Why a solve failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The system does not have full column rank — more (or different)
    /// rows are needed.
    Singular,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "constraint matrix is rank deficient"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Column state during the structural phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColState {
    Active,
    Inactive(u32), // index into the inactive ordering
    Pivoted,
}

/// Solve `rows · C = values` for the `l` intermediate symbols.
///
/// Every returned symbol has `symbol_size` bytes. The rows may be any mix
/// of sparse binary and dense GF(256) rows; at least `l` independent rows
/// are required.
pub fn solve(
    l: usize,
    rows: Vec<ConstraintRow>,
    symbol_size: usize,
) -> Result<Vec<Vec<u8>>, SolveError> {
    if rows.len() < l {
        return Err(SolveError::Singular);
    }

    // Split rows: sparse binary rows participate in peeling; dense rows go
    // straight to the dense phase.
    let mut bin_cols: Vec<Vec<u32>> = Vec::new(); // column sets of binary rows
    let mut bin_values: Vec<Vec<u8>> = Vec::new();
    let mut dense_coefs: Vec<Vec<u8>> = Vec::new();
    let mut dense_values: Vec<Vec<u8>> = Vec::new();
    for row in rows {
        debug_assert_eq!(row.value.len(), symbol_size, "RHS size mismatch");
        match row.kind {
            RowKind::Binary { cols } => {
                debug_assert!(cols.iter().all(|&c| (c as usize) < l));
                bin_cols.push(cols);
                bin_values.push(row.value);
            }
            RowKind::Dense { coefs } => {
                debug_assert_eq!(coefs.len(), l);
                dense_coefs.push(coefs);
                dense_values.push(row.value);
            }
        }
    }
    let n_bin = bin_cols.len();

    // ---- Phase 1: structural peeling with inactivation -----------------
    let mut col_state = vec![ColState::Active; l];
    let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); l]; // binary rows touching each column
    for (r, cols) in bin_cols.iter().enumerate() {
        for &c in cols {
            col_rows[c as usize].push(r as u32);
        }
    }
    let mut degree: Vec<u32> = bin_cols.iter().map(|c| c.len() as u32).collect();
    let mut selected = vec![false; n_bin];

    // Degree buckets with lazy deletion: buckets[d] holds candidate rows
    // whose degree was d when pushed; stale entries are skipped on pop.
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 2];
    for (r, &d) in degree.iter().enumerate() {
        buckets[d as usize].push(r as u32);
    }

    let mut pivots: Vec<(u32, u32)> = Vec::new(); // (binary row, column)
    let mut elim_targets: Vec<Vec<u32>> = Vec::new(); // rows to eliminate per pivot
    let mut inactive_cols: Vec<u32> = Vec::new(); // inactive index -> column
    let mut n_inactive: u32 = 0;
    let mut active_remaining = l;

    // Re-bucket helper is inlined below (push row at its current degree).
    loop {
        // Pop the lowest-degree live row (degree >= 1).
        let mut chosen: Option<u32> = None;
        'outer: for (d, bucket) in buckets.iter_mut().enumerate().skip(1) {
            while let Some(&r) = bucket.last() {
                if selected[r as usize] || degree[r as usize] as usize != d {
                    bucket.pop();
                    continue;
                }
                chosen = Some(r);
                break 'outer;
            }
        }
        let Some(r) = chosen else {
            // No selectable row left: everything still active is solved
            // densely.
            for (c, state) in col_state.iter_mut().enumerate() {
                if *state == ColState::Active {
                    *state = ColState::Inactive(n_inactive);
                    inactive_cols.push(c as u32);
                    n_inactive += 1;
                }
            }
            active_remaining = 0;
            let _ = active_remaining;
            break;
        };
        buckets[degree[r as usize] as usize].pop();
        selected[r as usize] = true;

        // The row's active columns.
        let active_cols: Vec<u32> = bin_cols[r as usize]
            .iter()
            .copied()
            .filter(|&c| col_state[c as usize] == ColState::Active)
            .collect();
        debug_assert_eq!(active_cols.len() as u32, degree[r as usize]);

        // Keep the heaviest column as the pivot (it will peel the most
        // other rows); inactivate the rest.
        let pivot_col = *active_cols
            .iter()
            .max_by_key(|&&c| col_rows[c as usize].len())
            .expect("row with degree >= 1 has an active column");
        for &c in &active_cols {
            if c == pivot_col {
                continue;
            }
            col_state[c as usize] = ColState::Inactive(n_inactive);
            inactive_cols.push(c);
            n_inactive += 1;
            active_remaining -= 1;
            for &other in &col_rows[c as usize] {
                if !selected[other as usize] {
                    degree[other as usize] -= 1;
                    let d = degree[other as usize] as usize;
                    if d > 0 {
                        buckets[d].push(other);
                    }
                }
            }
        }

        // Pivot: remove the column from play, collect elimination targets.
        col_state[pivot_col as usize] = ColState::Pivoted;
        active_remaining -= 1;
        let mut targets = Vec::new();
        for &other in &col_rows[pivot_col as usize] {
            if other != r && !selected[other as usize] {
                targets.push(other);
                degree[other as usize] -= 1;
                let d = degree[other as usize] as usize;
                if d > 0 {
                    buckets[d].push(other);
                }
            }
        }
        pivots.push((r, pivot_col));
        elim_targets.push(targets);

        if active_remaining == 0 {
            break;
        }
    }

    let n_inactive = n_inactive as usize;

    // ---- Phase 2: numeric forward elimination ---------------------------
    // Dense projection of every binary row onto the inactive columns.
    let inactive_index = |c: u32| -> Option<usize> {
        match col_state[c as usize] {
            ColState::Inactive(i) => Some(i as usize),
            _ => None,
        }
    };
    let mut bin_inact: Vec<Vec<u8>> = bin_cols
        .iter()
        .map(|cols| {
            let mut v = vec![0u8; n_inactive];
            for &c in cols {
                if let Some(i) = inactive_index(c) {
                    v[i] ^= 1;
                }
            }
            v
        })
        .collect();
    let mut dense_inact: Vec<Vec<u8>> = dense_coefs
        .iter()
        .map(|coefs| {
            let mut v = vec![0u8; n_inactive];
            for (c, &coef) in coefs.iter().enumerate() {
                if coef != 0 {
                    if let Some(i) = inactive_index(c as u32) {
                        v[i] = coef;
                    }
                }
            }
            v
        })
        .collect();

    for (&(prow, pcol), targets) in pivots.iter().zip(&elim_targets) {
        // The pivot row is read-only below while targets are mutated, but
        // they live in the same vectors; a clone of the (short) inactive
        // projection and the symbol keeps the borrow checker honest.
        let (p_inact, p_value) = (
            bin_inact[prow as usize].clone(),
            bin_values[prow as usize].clone(),
        );
        for &t in targets {
            gf256::xor_assign(&mut bin_values[t as usize], &p_value);
            gf256::xor_assign(&mut bin_inact[t as usize], &p_inact);
        }
        for (d_coefs, (d_inact, d_value)) in dense_coefs
            .iter()
            .zip(dense_inact.iter_mut().zip(dense_values.iter_mut()))
        {
            let beta = d_coefs[pcol as usize];
            if beta != 0 {
                gf256::addmul(d_value, &p_value, beta);
                for (di, pi) in d_inact.iter_mut().zip(&p_inact) {
                    *di ^= gf256::mul(beta, *pi);
                }
            }
        }
    }

    // ---- Phase 3: dense solve over the inactive unknowns ----------------
    // Equations: never-selected binary rows (spares) + all dense rows.
    let mut eq_coefs: Vec<Vec<u8>> = Vec::new();
    let mut eq_values: Vec<Vec<u8>> = Vec::new();
    for r in 0..n_bin {
        if !selected[r] {
            eq_coefs.push(std::mem::take(&mut bin_inact[r]));
            eq_values.push(std::mem::take(&mut bin_values[r]));
        }
    }
    for (c, v) in dense_inact.into_iter().zip(dense_values) {
        eq_coefs.push(c);
        eq_values.push(v);
    }
    let inactive_solution = gaussian_solve(n_inactive, &mut eq_coefs, &mut eq_values)?;

    // ---- Back-substitution ----------------------------------------------
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); l];
    for (i, sol) in inactive_solution.into_iter().enumerate() {
        out[inactive_cols[i] as usize] = sol;
    }
    // Every pivot row is `pivot column + inactive projection = value`, so
    // each pivot unknown falls out directly (no ordering constraint).
    for &(prow, pcol) in &pivots {
        let mut val = std::mem::take(&mut bin_values[prow as usize]);
        let inact = &bin_inact[prow as usize];
        for (i, &coef) in inact.iter().enumerate() {
            if coef != 0 {
                gf256::addmul(&mut val, &out[inactive_cols[i] as usize], coef);
            }
        }
        out[pcol as usize] = val;
    }

    debug_assert!(out.iter().all(|s| s.len() == symbol_size));
    Ok(out)
}

/// Dense Gaussian elimination over GF(256).
///
/// Solves for `n` unknowns given equation rows (`coefs[i].len() == n`)
/// with symbol-valued RHS. Returns the unknowns in index order.
fn gaussian_solve(
    n: usize,
    coefs: &mut [Vec<u8>],
    values: &mut [Vec<u8>],
) -> Result<Vec<Vec<u8>>, SolveError> {
    let m = coefs.len();
    if m < n {
        return Err(SolveError::Singular);
    }
    let mut pivot_row_of: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; m];
    for col in 0..n {
        // Find a row with a nonzero coefficient in this column.
        let Some(r) = (0..m).find(|&r| !used[r] && coefs[r][col] != 0) else {
            return Err(SolveError::Singular);
        };
        used[r] = true;
        pivot_row_of.push(r);
        // Normalize the pivot row.
        let p = coefs[r][col];
        if p != 1 {
            let pinv = gf256::inv(p);
            gf256::mul_slice(&mut coefs[r], pinv);
            gf256::mul_slice(&mut values[r], pinv);
        }
        // Eliminate the column from every other row.
        let (prow_coefs, prow_value) = (coefs[r].clone(), values[r].clone());
        for other in 0..m {
            if other == r {
                continue;
            }
            let beta = coefs[other][col];
            if beta != 0 {
                gf256::addmul(&mut coefs[other], &prow_coefs, beta);
                gf256::addmul(&mut values[other], &prow_value, beta);
            }
        }
    }
    Ok(pivot_row_of
        .into_iter()
        .map(|r| std::mem::take(&mut values[r]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RowKind;

    fn bin(cols: &[u32], value: Vec<u8>) -> ConstraintRow {
        ConstraintRow {
            kind: RowKind::Binary {
                cols: cols.to_vec(),
            },
            value,
        }
    }

    fn dense(coefs: Vec<u8>, value: Vec<u8>) -> ConstraintRow {
        ConstraintRow {
            kind: RowKind::Dense { coefs },
            value,
        }
    }

    #[test]
    fn identity_system() {
        // C[i] = i+1 via unit rows.
        let rows: Vec<_> = (0..4u32).map(|i| bin(&[i], vec![i as u8 + 1])).collect();
        let c = solve(4, rows, 1).unwrap();
        assert_eq!(c, vec![vec![1], vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn xor_chain_system() {
        // c0 = 5, c0^c1 = 6, c1^c2 = 10 → c1 = 3, c2 = 9.
        let rows = vec![
            bin(&[0], vec![5]),
            bin(&[0, 1], vec![6]),
            bin(&[1, 2], vec![10]),
        ];
        let c = solve(3, rows, 1).unwrap();
        assert_eq!(c, vec![vec![5], vec![3], vec![9]]);
    }

    #[test]
    fn dense_row_system() {
        // 2·c0 + 3·c1 = rhs, c0 = 7 → recover c1.
        let two_c0 = gf256::mul(2, 7);
        let c1 = 0x5A;
        let rhs = two_c0 ^ gf256::mul(3, c1);
        let rows = vec![bin(&[0], vec![7]), dense(vec![2, 3], vec![rhs])];
        let c = solve(2, rows, 1).unwrap();
        assert_eq!(c[0], vec![7]);
        assert_eq!(c[1], vec![c1]);
    }

    #[test]
    fn singular_reported() {
        // Two identical rows cannot pin down two unknowns.
        let rows = vec![bin(&[0, 1], vec![1]), bin(&[0, 1], vec![1])];
        assert_eq!(solve(2, rows, 1), Err(SolveError::Singular));
    }

    #[test]
    fn underdetermined_reported() {
        let rows = vec![bin(&[0], vec![1])];
        assert_eq!(solve(2, rows, 1), Err(SolveError::Singular));
    }

    #[test]
    fn random_dense_roundtrip() {
        // Random dense GF(256) systems of moderate size: solve and verify
        // by substitution.
        use crate::rand::Xorshift64;
        let n = 24;
        let t = 8;
        let mut rng = Xorshift64::new(0xBEEF);
        let secret: Vec<Vec<u8>> = (0..n)
            .map(|_| (0..t).map(|_| rng.next_u64() as u8).collect())
            .collect();
        let mut rows = Vec::new();
        for _ in 0..n + 3 {
            let coefs: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let mut value = vec![0u8; t];
            for (j, &cf) in coefs.iter().enumerate() {
                gf256::addmul(&mut value, &secret[j], cf);
            }
            rows.push(dense(coefs, value));
        }
        let solved = solve(n, rows, t).unwrap();
        assert_eq!(solved, secret);
    }

    #[test]
    fn mixed_sparse_dense_roundtrip() {
        use crate::rand::Xorshift64;
        let n = 40;
        let t = 16;
        let mut rng = Xorshift64::new(42);
        let secret: Vec<Vec<u8>> = (0..n)
            .map(|_| (0..t).map(|_| rng.next_u64() as u8).collect())
            .collect();
        let mut rows = Vec::new();
        // Sparse rows covering random subsets.
        for _ in 0..n {
            let deg = 1 + (rng.next_below(4) as usize);
            let mut cols: Vec<u32> = Vec::new();
            while cols.len() < deg {
                let c = rng.next_below(n as u64) as u32;
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let mut value = vec![0u8; t];
            for &c in &cols {
                gf256::xor_assign(&mut value, &secret[c as usize]);
            }
            rows.push(bin(&cols, value));
        }
        // A few dense rows to heal any rank gaps.
        for _ in 0..8 {
            let coefs: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let mut value = vec![0u8; t];
            for (j, &cf) in coefs.iter().enumerate() {
                gf256::addmul(&mut value, &secret[j], cf);
            }
            rows.push(dense(coefs, value));
        }
        let solved = solve(n, rows, t).unwrap();
        assert_eq!(solved, secret);
    }
}
