//! Test battery for the systematic-code fast path.
//!
//! Three pillars, matching the contracts the systematic mode must hold:
//!
//! 1. **Round-trip equivalence** — for any data, symbol size, and loss
//!    pattern (zero loss, source-only loss, repair-only receipt,
//!    interleaved), the systematic decode is byte-identical to the source
//!    *and* to a legacy non-systematic decode of the same block.
//! 2. **Fast-path/solver equivalence** — any sufficient symbol subset
//!    decodes identically whether it takes the zero-copy fast path or is
//!    forced through the inactivation solver; and when all `K` source
//!    symbols arrive the solver is provably not invoked (decode-path
//!    counters).
//! 3. **Loss-sweep envelope** — decode overhead under 0–20% seeded loss
//!    stays on the code's overhead-failure envelope in systematic mode:
//!    zero failures at two extra symbols, near-zero at one.

use proptest::prelude::*;
use rq::rand::Xorshift64;
use rq::{CodeMode, DecodeError, Decoder, Encoder};

/// Feed the same ESI set into a decoder pair (systematic + legacy built
/// from the same data) and return both decodes, topping *both* up with
/// fresh repair ESIs on rank deficiency so the property tests statistical
/// equivalence, not per-construction luck.
fn decode_both(
    sys: &Encoder,
    leg: &Encoder,
    esis: &[u32],
    mut next_repair: u32,
) -> (Vec<u8>, Vec<u8>) {
    let mut dec_s = Decoder::new(sys.params());
    let mut dec_l = Decoder::new(leg.params());
    for &esi in esis {
        dec_s.push(esi, sys.symbol(esi));
        dec_l.push(esi, leg.symbol(esi));
    }
    // Rank deficiency is healed by any fresh symbol with P ≈ 1 − 2⁻⁸;
    // sixteen retries put a joint failure beyond reach of a test run.
    for _ in 0..16 {
        match (dec_s.try_decode(), dec_l.try_decode()) {
            (Ok(a), Ok(b)) => return (a, b),
            (ra, rb) => {
                assert!(
                    !matches!(ra, Err(DecodeError::NeedMoreSymbols { .. })),
                    "systematic decoder under-fed: {ra:?}"
                );
                assert!(
                    !matches!(rb, Err(DecodeError::NeedMoreSymbols { .. })),
                    "legacy decoder under-fed: {rb:?}"
                );
                dec_s.push(next_repair, sys.symbol(next_repair));
                dec_l.push(next_repair, leg.symbol(next_repair));
                next_repair += 1;
            }
        }
    }
    panic!("rank deficiency persisted through 16 top-up symbols");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 1: systematic round-trip is byte-identical to the source
    /// and to the legacy decode of the same block, across random data,
    /// symbol sizes, and loss-pattern families.
    #[test]
    fn systematic_matches_source_and_legacy(
        data in proptest::collection::vec(any::<u8>(), 32..3000),
        symbol_size in 4usize..160,
        pattern in 0u32..4,
        loss_seed in any::<u64>(),
        loss_pct in 1u32..50,
    ) {
        let sys = Encoder::new(&data, symbol_size).unwrap();
        let leg = Encoder::legacy(&data, symbol_size).unwrap();
        prop_assert_eq!(sys.params().mode, CodeMode::Systematic);
        prop_assert_eq!(leg.params().mode, CodeMode::Legacy);
        let k = sys.params().k as u32;

        let mut rng = Xorshift64::new(loss_seed);
        let mut esis: Vec<u32> = Vec::new();
        match pattern {
            // Zero loss: every source symbol arrives.
            0 => esis.extend(0..k),
            // Source-only loss: drop random sources, top up with repairs.
            1 => {
                for esi in 0..k {
                    if rng.next_below(100) >= u64::from(loss_pct) {
                        esis.push(esi);
                    }
                }
                let deficit = (k as usize + 2).saturating_sub(esis.len()) as u32;
                esis.extend(k..k + deficit);
            }
            // Repair-only: no source symbol survives.
            2 => esis.extend(k..2 * k + 2),
            // Interleaved: random mix of source and repair ESIs.
            _ => {
                let mut have = 0usize;
                let mut esi = 0u32;
                while have < k as usize + 2 {
                    if rng.next_below(2) == 0 {
                        esis.push(esi);
                        have += 1;
                    }
                    esi += 1;
                }
            }
        }
        let next_repair = esis.iter().max().unwrap() + 1;
        let (out_sys, out_leg) = decode_both(&sys, &leg, &esis, next_repair);
        prop_assert_eq!(&out_sys, &data, "systematic decode diverged from source");
        prop_assert_eq!(&out_leg, &data, "legacy decode diverged from source");
        prop_assert_eq!(out_sys, out_leg, "modes diverged from each other");
    }

    /// Satellite 2a: for any sufficient subset, the fast path (when
    /// eligible) and the forced solver produce identical bytes.
    #[test]
    fn fast_path_and_solver_agree(
        data in proptest::collection::vec(any::<u8>(), 64..2000),
        symbol_size in 8usize..100,
        loss_seed in any::<u64>(),
        loss_pct in 0u32..40,
    ) {
        let enc = Encoder::new(&data, symbol_size).unwrap();
        let k = enc.params().k;
        let mut rng = Xorshift64::new(loss_seed);
        let mut dec = Decoder::new(enc.params());
        let mut have = 0usize;
        for esi in 0..k as u32 {
            if rng.next_below(100) >= u64::from(loss_pct) {
                dec.push(esi, enc.symbol(esi));
                have += 1;
            }
        }
        let mut esi = k as u32;
        while have < k + 3 {
            dec.push(esi, enc.symbol(esi));
            esi += 1;
            have += 1;
        }
        let via_default = dec.try_decode();
        let via_solver = dec.try_decode_solver();
        match (via_default, via_solver) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b, "fast path and solver disagree");
                prop_assert_eq!(a, data);
            }
            // Statistical rank deficiency (≲10⁻³ at +1, lower at +3) is a
            // property of the symbol subset, not of the decode path: both
            // entry points must report it identically.
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "paths disagree on success: {:?} vs {:?}", a, b),
        }
    }

    /// Satellite 2b: when all `K` source symbols arrive, `try_decode`
    /// never touches the solver — the decode-path counters prove it.
    #[test]
    fn solver_not_invoked_on_complete_source(
        data in proptest::collection::vec(any::<u8>(), 16..2000),
        symbol_size in 1usize..120,
        extra_repairs in 0u32..8,
    ) {
        let enc = Encoder::new(&data, symbol_size).unwrap();
        let k = enc.params().k as u32;
        let mut dec = Decoder::new(enc.params());
        for esi in 0..k {
            dec.push(esi, enc.symbol(esi));
        }
        // Surplus repair symbols must not knock the decoder off the fast
        // path.
        for esi in k..k + extra_repairs {
            dec.push(esi, enc.symbol(esi));
        }
        prop_assert!(dec.systematic_complete());
        prop_assert_eq!(dec.try_decode().unwrap(), data);
        let stats = dec.decode_stats();
        prop_assert_eq!(stats.solver_decodes, 0, "solver ran on a lossless block");
        prop_assert_eq!(stats.fast_path_decodes, 1);

        // Forcing the solver afterwards works too, and is visible in the
        // counters.
        prop_assert_eq!(dec.try_decode_solver().unwrap(), data);
        let stats = dec.decode_stats();
        prop_assert_eq!(stats.solver_decodes, 1);
        prop_assert!(stats.last_solve_unknowns > 0);
    }
}

/// Satellite 3: seeded loss sweep 0–20% — systematic-mode decode failure
/// rates stay on the overhead envelope the legacy `rq_overhead` bench
/// established: **zero** failures at two extra symbols, at most a stray
/// one at one extra, and a loose bound at exactly `k` symbols (the
/// degree-floored repair distribution trades a little +0 performance for
/// the shrinking solve; the paper's claims live at +1/+2).
#[test]
fn loss_sweep_overhead_envelope() {
    let data: Vec<u8> = (0..256 * 16).map(|i| (i * 131 + 7) as u8).collect();
    let sys = Encoder::new(&data, 16).unwrap(); // k = 256
    let k = sys.params().k;

    const TRIALS: usize = 150;
    for loss_pct in [0u64, 5, 10, 15, 20] {
        // fails[o] = decode failures with exactly k + o received symbols.
        let mut fails = [0usize; 3];
        for trial in 0..TRIALS {
            let mut rng = Xorshift64::new(0x5EED_0000 + loss_pct * 1000 + trial as u64);
            let kept: Vec<u32> = (0..k as u32)
                .filter(|_| rng.next_below(100) >= loss_pct)
                .collect();
            for (o, f) in fails.iter_mut().enumerate() {
                let mut dec = Decoder::new(sys.params());
                for &esi in &kept {
                    dec.push(esi, sys.symbol(esi));
                }
                let mut esi = k as u32 + trial as u32 * 64; // fresh repair window per trial
                while dec.symbols_received() < k + o {
                    dec.push(esi, sys.symbol(esi));
                    esi += 1;
                }
                match dec.try_decode() {
                    Ok(out) => assert_eq!(out, data, "loss={loss_pct}% trial={trial} +{o}"),
                    Err(DecodeError::RankDeficient { .. }) => *f += 1,
                    Err(e) => panic!("unexpected decode error: {e}"),
                }
            }
        }
        // Envelope: +2 never fails in 150 trials (rate ≲ 10⁻⁴ ⇒ expected
        // 0.015 failures); +1 allows one stray (measured ≲ 10⁻³); +0 is
        // loose by design (measured ≈ 1–3% at these points).
        assert_eq!(
            fails[2], 0,
            "loss={loss_pct}%: +2 overhead failures {fails:?}"
        );
        assert!(
            fails[1] <= 1,
            "loss={loss_pct}%: +1 overhead failures {fails:?}"
        );
        assert!(
            fails[0] <= TRIALS / 10,
            "loss={loss_pct}%: +0 failure rate off the envelope {fails:?}"
        );
    }
}

/// The degree floor is what holds the envelope: systematic repair symbols
/// must carry at least `sys_repair_min_degree(L)` intermediate columns
/// on both the encoder and (implicitly, via decode success above) the
/// decoder side.
#[test]
fn systematic_repair_degree_floor_applied() {
    let p = rq::BlockParams::new(256);
    let floor = rq::params::sys_repair_min_degree(p.l);
    for esi in p.k as u32..p.k as u32 + 200 {
        let cols = rq::tuple::lt_columns_with_floor(&p, 0, esi, floor);
        assert!(
            cols.len() as u32 >= floor,
            "esi={esi}: {} cols below floor {floor}",
            cols.len()
        );
    }
}
