//! Property-based tests for the fountain code: round-trip correctness
//! under arbitrary data, sizes, and loss patterns.

use proptest::prelude::*;
use rq::{Decoder, Encoder, ObjectDecoder, ObjectEncoder, PayloadId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lossless systematic transfer reproduces the data for any payload
    /// and symbol size.
    #[test]
    fn lossless_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 1..4000),
        symbol_size in 1usize..200,
    ) {
        let enc = Encoder::new(&data, symbol_size).unwrap();
        let mut dec = Decoder::new(enc.params());
        for esi in 0..enc.params().k as u32 {
            dec.push(esi, enc.symbol(esi));
        }
        prop_assert_eq!(dec.try_decode().unwrap(), data);
    }

    /// Any loss pattern with enough surviving symbols (k+3 incl. repair
    /// top-up) decodes to the original data.
    #[test]
    fn lossy_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 64..2048),
        symbol_size in 16usize..128,
        loss_seed in any::<u64>(),
        loss_pct in 0u32..60,
    ) {
        let enc = Encoder::new(&data, symbol_size).unwrap();
        let k = enc.params().k;
        let mut rng = rq::rand::Xorshift64::new(loss_seed);
        let mut dec = Decoder::new(enc.params());
        let mut have = 0usize;
        for esi in 0..k as u32 {
            if rng.next_below(100) >= u64::from(loss_pct) {
                dec.push(esi, enc.symbol(esi));
                have += 1;
            }
        }
        let mut esi = k as u32;
        while have < k + 3 {
            dec.push(esi, enc.symbol(esi));
            esi += 1;
            have += 1;
        }
        prop_assert_eq!(dec.try_decode().unwrap(), data);
    }

    /// Multi-source emulation: symbols arriving from independent strided
    /// ESI spaces (as Polyraptor replicas send them) never collide and
    /// decode together.
    #[test]
    fn strided_multi_sender_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 200..1500),
        senders in 1usize..5,
    ) {
        let symbol_size = 64usize;
        let enc = Encoder::new(&data, symbol_size).unwrap();
        let k = enc.params().k;
        let mut dec = Decoder::new(enc.params());
        // Each "sender" contributes repairs from its stride only.
        let mut have = 0usize;
        let mut j = 0u64;
        'outer: loop {
            for s in 0..senders as u64 {
                let esi = (k as u64 + s + j * senders as u64) as u32;
                prop_assert!(dec.push(esi, enc.symbol(esi)), "stride collision at {}", esi);
                have += 1;
                if have >= k + 2 {
                    break 'outer;
                }
            }
            j += 1;
        }
        prop_assert_eq!(dec.try_decode().unwrap(), data);
    }

    /// The object layer (block partitioning) round-trips arbitrary
    /// objects, including multi-block ones.
    #[test]
    fn object_layer_roundtrip(
        len in 1usize..60_000,
        symbol_size in 1usize..16,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
        let enc = ObjectEncoder::new(&data, symbol_size).unwrap();
        let mut dec = ObjectDecoder::new(enc.params().clone());
        for (sbn, block) in enc.params().blocks.clone().iter().enumerate() {
            for esi in 0..block.k as u32 {
                let id = PayloadId { sbn: sbn as u8, esi };
                dec.push(id, enc.symbol(id));
            }
        }
        prop_assert_eq!(dec.try_decode().unwrap(), data);
    }

    /// Decoding is invariant to symbol arrival order.
    #[test]
    fn order_invariance(shuffle_seed in any::<u64>()) {
        let data: Vec<u8> = (0..1000).map(|i| (i * 3) as u8).collect();
        let enc = Encoder::new(&data, 50).unwrap();
        let k = enc.params().k as u32;
        let mut esis: Vec<u32> = (2..k + 4).collect(); // drop 0 and 1, add repairs
        let mut rng = rq::rand::Xorshift64::new(shuffle_seed);
        for i in (1..esis.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            esis.swap(i, j);
        }
        let mut dec = Decoder::new(enc.params());
        for esi in esis {
            dec.push(esi, enc.symbol(esi));
        }
        prop_assert_eq!(dec.try_decode().unwrap(), data);
    }
}
