//! Logical workload generation, shared between protocols.
//!
//! The same seeded generator produces the identical arrival process and
//! placement for Polyraptor and TCP runs, so the figures compare the two
//! transports on exactly the same offered load (the paper runs both on
//! the same OMNeT++ scenario files).
//!
//! Paper parameters (Figure 1): 250-host fat-tree, 4 MB objects, Poisson
//! arrivals with λ = 2560 sessions/s, 20 % background sessions,
//! permutation traffic matrix, replicas placed outside the client's rack.

use netsim::{NodeId, Pcg32, SimTime, Topology};

/// One-to-many or many-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Replication write: client pushes the object to every replica
    /// (Polyraptor: multicast; TCP: multi-unicast). Figure 1a.
    Write,
    /// Fetch: client reads the object that exists on every replica
    /// (Polyraptor: multi-source; TCP: partitioned fetch). Figure 1b.
    Read,
}

/// A protocol-agnostic storage session.
#[derive(Debug, Clone)]
pub struct LogicalSession {
    /// Dense session index (also used as id).
    pub index: u32,
    /// The client host.
    pub client: NodeId,
    /// Replica servers (1 or 3 in the paper), outside the client's rack.
    pub replicas: Vec<NodeId>,
    /// Object size in bytes.
    pub bytes: usize,
    /// Poisson arrival time.
    pub start: SimTime,
    /// Background sessions are excluded from the reported curves.
    pub background: bool,
}

/// Parameters of the Figure 1a/1b storage workload.
#[derive(Debug, Clone, Copy)]
pub struct StorageScenario {
    /// Total sessions to simulate (foreground + background).
    pub sessions: usize,
    /// Object size in bytes (paper: 4 MB).
    pub object_bytes: usize,
    /// Replicas per session (paper: 1 or 3).
    pub replicas: usize,
    /// Poisson arrival rate **per host**, sessions per second. The paper
    /// quotes λ = 2560/s over 250 hosts ⇒ 10.24 per host; expressing it
    /// per host keeps the offered load (≈34 % of access capacity)
    /// identical when experiments run on scaled-down fabrics.
    pub lambda_per_host: f64,
    /// Fraction of sessions that are background (paper: 0.2).
    pub background_frac: f64,
    /// Write (1a) or Read (1b).
    pub pattern: Pattern,
    /// Master seed: placement, arrivals and in-fabric randomness.
    pub seed: u64,
    /// Divide the arrival rate by the replica count so the offered
    /// byte-load on the fabric is identical across 1- and 3-replica
    /// configurations. The paper's "λ = 2560" is stated per *flow*
    /// ("session (flow) scheduling…"), and only this reading keeps the
    /// 3-replica fabric below saturation — consistent with the near-equal
    /// RQ 1-/3-replica curves it reports. See EXPERIMENTS.md; an
    /// ablation covers the alternative reading.
    pub normalize_load: bool,
    /// Shared-risk-aware replica placement: in addition to the paper's
    /// outside-the-client's-rack rule, replicas of one session avoid
    /// each other's shared-risk groups (same rack or same aggregation
    /// reach — see `Topology::shared_risk`), so a single agg/core event
    /// cannot strand more than one replica. Falls back to the plain rule
    /// when the fabric can't satisfy it (e.g. leaf–spine, where every
    /// leaf pair shares every spine). Churn runs compare both settings.
    pub shared_risk_placement: bool,
}

/// The paper's arrival rate expressed per host (λ = 2560/s ÷ 250 hosts).
pub const PAPER_LAMBDA_PER_HOST: f64 = 2560.0 / 250.0;

impl StorageScenario {
    /// The paper's Figure 1a configuration at a given scale.
    pub fn fig1a(sessions: usize, replicas: usize, seed: u64) -> Self {
        Self {
            sessions,
            object_bytes: 4 << 20,
            replicas,
            lambda_per_host: PAPER_LAMBDA_PER_HOST,
            background_frac: 0.2,
            pattern: Pattern::Write,
            seed,
            normalize_load: true,
            shared_risk_placement: false,
        }
    }

    /// The paper's Figure 1b configuration at a given scale.
    pub fn fig1b(sessions: usize, replicas: usize, seed: u64) -> Self {
        Self {
            pattern: Pattern::Read,
            ..Self::fig1a(sessions, replicas, seed)
        }
    }

    /// Generate the logical sessions over a topology.
    ///
    /// Clients cycle through a seeded permutation of the hosts (the
    /// "permutation traffic matrix" — every host is a client equally
    /// often and its primary peer is its permutation image); additional
    /// replicas are drawn uniformly outside the client's rack.
    pub fn generate(&self, topo: &Topology) -> Vec<LogicalSession> {
        assert!(self.replicas >= 1);
        assert!((0.0..1.0).contains(&self.background_frac));
        let hosts = topo.hosts().to_vec();
        assert!(
            hosts.len() > self.replicas,
            "not enough hosts for replica count"
        );
        let mut rng = Pcg32::new(self.seed ^ 0x5CE0_A210);

        // Permutation matrix: client order and primary peer mapping.
        let mut client_order: Vec<usize> = (0..hosts.len()).collect();
        rng.shuffle(&mut client_order);
        let peer_of = rng.derangement(hosts.len());

        // Writes deliver one object copy per replica, so the receiver-side
        // byte load scales with the replica count; reads move one copy
        // total regardless of how many replicas serve it.
        let norm = if self.normalize_load && self.pattern == Pattern::Write {
            self.replicas as f64
        } else {
            1.0
        };
        let mean_gap_ns = norm * 1e9 / (self.lambda_per_host * hosts.len() as f64);
        let mut t = 0f64;
        let mut out = Vec::with_capacity(self.sessions);
        for i in 0..self.sessions {
            t += rng.exp(mean_gap_ns);
            let client_idx = client_order[i % hosts.len()];
            let client = hosts[client_idx];

            // Primary replica: the permutation image, nudged out of the
            // client's rack if the derangement landed inside it.
            let mut replicas = Vec::with_capacity(self.replicas);
            let primary = hosts[peer_of[client_idx]];
            let primary = if topo.same_rack(client, primary) {
                draw_replica(&mut rng, topo, &hosts, client, &replicas, false)
            } else {
                primary
            };
            replicas.push(primary);
            while replicas.len() < self.replicas {
                let r = draw_replica(
                    &mut rng,
                    topo,
                    &hosts,
                    client,
                    &replicas,
                    self.shared_risk_placement,
                );
                replicas.push(r);
            }

            out.push(LogicalSession {
                index: i as u32,
                client,
                replicas,
                bytes: self.object_bytes,
                start: SimTime::from_nanos(t as u64),
                background: rng.f64() < self.background_frac,
            });
        }
        out
    }
}

/// Draw a replica outside the client's rack (the paper's rule), not
/// colliding with already-placed replicas. With `shared_risk_aware`, a
/// bounded number of draws additionally avoids every taken replica's
/// shared-risk group; if the fabric can't satisfy that (small pods,
/// leaf–spine), the draw falls back to the plain rule rather than spin.
fn draw_replica(
    rng: &mut Pcg32,
    topo: &Topology,
    hosts: &[NodeId],
    client: NodeId,
    taken: &[NodeId],
    shared_risk_aware: bool,
) -> NodeId {
    if shared_risk_aware {
        for _ in 0..64 {
            let r = hosts[rng.below(hosts.len() as u64) as usize];
            if r != client
                && !topo.same_rack(client, r)
                && !taken.contains(&r)
                && !taken.iter().any(|&t| topo.shared_risk(t, r))
            {
                return r;
            }
        }
    }
    loop {
        let r = hosts[rng.below(hosts.len() as u64) as usize];
        if r != client && !topo.same_rack(client, r) && !taken.contains(&r) {
            return r;
        }
    }
}

/// Parameters of the Figure 1c Incast workload: `senders` hosts each
/// hold one stripe of a `block_bytes` object and transmit to one client
/// simultaneously.
#[derive(Debug, Clone, Copy)]
pub struct IncastScenario {
    /// Number of synchronized senders.
    pub senders: usize,
    /// Total block size in bytes (paper: 256 KB and 70 KB).
    pub block_bytes: usize,
    /// Master seed.
    pub seed: u64,
}

impl IncastScenario {
    /// Pick the client and the sender set (distinct hosts, spread
    /// anywhere in the fabric as in a striped storage read).
    pub fn place(&self, topo: &Topology) -> (NodeId, Vec<NodeId>) {
        let hosts = topo.hosts().to_vec();
        assert!(hosts.len() > self.senders, "not enough hosts");
        let mut rng = Pcg32::new(self.seed ^ 0x17CA_5700);
        let client = hosts[rng.below(hosts.len() as u64) as usize];
        let mut senders = Vec::with_capacity(self.senders);
        while senders.len() < self.senders {
            let s = hosts[rng.below(hosts.len() as u64) as usize];
            if s != client && !senders.contains(&s) {
                senders.push(s);
            }
        }
        (client, senders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::fat_tree(4, 1_000_000_000, 10_000)
    }

    #[test]
    fn generate_respects_parameters() {
        let t = topo();
        let sc = StorageScenario::fig1a(200, 3, 1);
        let sessions = sc.generate(&t);
        assert_eq!(sessions.len(), 200);
        for s in &sessions {
            assert_eq!(s.replicas.len(), 3);
            assert_eq!(s.bytes, 4 << 20);
            // Replicas distinct, not the client, outside its rack.
            for (i, &r) in s.replicas.iter().enumerate() {
                assert_ne!(r, s.client);
                assert!(!t.same_rack(s.client, r), "replica in client rack");
                assert!(!s.replicas[..i].contains(&r), "duplicate replica");
            }
        }
        // Arrivals strictly increasing (Poisson process).
        assert!(sessions.windows(2).all(|w| w[1].start >= w[0].start));
    }

    #[test]
    fn background_fraction_close() {
        let t = topo();
        let sc = StorageScenario::fig1a(4000, 1, 9);
        let sessions = sc.generate(&t);
        let bg = sessions.iter().filter(|s| s.background).count() as f64 / 4000.0;
        assert!((bg - 0.2).abs() < 0.03, "background fraction {bg}");
    }

    #[test]
    fn arrival_rate_close_to_lambda() {
        let t = topo(); // 16 hosts
        let sc = StorageScenario::fig1a(4000, 1, 5);
        let sessions = sc.generate(&t);
        let span_s = sessions.last().unwrap().start.as_secs_f64();
        let rate = 4000.0 / span_s;
        let expected = PAPER_LAMBDA_PER_HOST * 16.0;
        assert!(
            (rate - expected).abs() / expected < 0.1,
            "arrival rate {rate}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_differs_across_seeds() {
        let t = topo();
        let a = StorageScenario::fig1a(50, 3, 42).generate(&t);
        let b = StorageScenario::fig1a(50, 3, 42).generate(&t);
        let c = StorageScenario::fig1a(50, 3, 43).generate(&t);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.replicas, y.replicas);
            assert_eq!(x.start, y.start);
        }
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.client != y.client || x.start != y.start));
    }

    #[test]
    fn clients_spread_evenly() {
        // Permutation matrix property: with sessions = 2×hosts, every
        // host is a client exactly twice.
        let t = topo();
        let n = t.hosts().len();
        let sc = StorageScenario::fig1a(2 * n, 1, 3);
        let sessions = sc.generate(&t);
        let mut counts = std::collections::HashMap::new();
        for s in &sessions {
            *counts.entry(s.client).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c == 2));
    }

    #[test]
    fn incast_placement_distinct() {
        let t = topo();
        let sc = IncastScenario {
            senders: 10,
            block_bytes: 256 << 10,
            seed: 4,
        };
        let (client, senders) = sc.place(&t);
        assert_eq!(senders.len(), 10);
        assert!(!senders.contains(&client));
        let set: std::collections::HashSet<_> = senders.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
