//! Fabric-dynamics scenario: a Figure-1-style replicated storage
//! workload hit by a core-switch failure mid-run.
//!
//! This is where the paper's robustness story meets an actively hostile
//! fabric: Polyraptor (rateless coding + per-packet spraying) should
//! ride through the failure — the fabric reroutes, lost coded symbols
//! are simply replaced by later ones, multicast trees are repaired —
//! while the TCP multi-unicast baseline, whose flows are ECMP-pinned to
//! one path each, eats retransmission timeouts and inflates its tail.
//!
//! The victim switch is chosen deterministically as the core-layer
//! switch that the most ECMP-pinned baseline flows cross *while the
//! failure is active* (predicted by replaying the fabric's ECMP hash),
//! so the comparison is guaranteed to be about failure handling rather
//! than about a fault that nobody's traffic noticed.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use netsim::{FaultPlan, NodeId, Pcg32, SimConfig, SimTime, Simulator, Topology};
use polyraptor::PolyraptorAgent;
use tcpsim::{conn_start_token, TcpAgent};

use crate::runner::{
    build_rq_specs, build_tcp_conns, collect_rq_results, collect_tcp_results, install_rq, Fabric,
    RqRunOptions, TcpRunOptions, TransferResult,
};
use crate::scenario::{LogicalSession, Pattern, StorageScenario, PAPER_LAMBDA_PER_HOST};
use crate::telemetry::{gather_rq_spans, take_run_telemetry, RunTelemetry};

/// Control-plane convergence after a detected failure: 25 ms covers
/// failure detection plus route recomputation on a data-centre fabric.
/// During the window the dead switch blackholes whatever is forwarded
/// into it — ECMP-pinned flows stall end-to-end (their whole window
/// crosses one path), while sprayed flows lose only the fraction of
/// packets hashed onto dead paths. Both transports run under the same
/// delay; the asymmetry in outcome is the point of the experiment.
pub const REROUTE_DELAY_NS: u64 = 25_000_000;

/// Parameters of the core-failure storage scenario.
#[derive(Debug, Clone, Copy)]
pub struct FaultScenario {
    /// Replicated write sessions (all foreground).
    pub sessions: usize,
    /// Object size per session in bytes.
    pub object_bytes: usize,
    /// Replicas per session (3 = the paper's replication factor).
    pub replicas: usize,
    /// When the victim core switch fails, as a fraction of the ideal
    /// line-rate transfer time *after the first session's arrival* —
    /// protocol overhead makes every real transfer slower than ideal, so
    /// any fraction in (0, 1) strikes the first session mid-transfer.
    /// `None` runs the identical workload on a healthy fabric (the
    /// tail-comparison baseline).
    pub fail_after_frac: Option<f64>,
    /// Optional repair, as a further fraction of the ideal transfer time
    /// after the failure instant.
    pub recover_after_frac: Option<f64>,
    /// Master seed (placement, arrivals, fabric randomness).
    pub seed: u64,
}

impl FaultScenario {
    /// The Figure-1-style configuration: 3-replica writes with the
    /// paper's arrival process, core failure at 50 % of the ideal
    /// line-rate transfer time into the first session.
    pub fn fig1_failure(sessions: usize, object_bytes: usize, seed: u64) -> Self {
        Self {
            sessions,
            object_bytes,
            replicas: 3,
            fail_after_frac: Some(0.5),
            recover_after_frac: None,
            seed,
        }
    }

    /// The same scenario with the failure removed (healthy baseline).
    pub fn healthy(&self) -> Self {
        Self {
            fail_after_frac: None,
            recover_after_frac: None,
            ..*self
        }
    }

    /// The ideal transfer time of one object in nanoseconds at the
    /// fabric's access-link rate — the fastest conceivable transfer,
    /// and the time base for the failure offsets.
    fn ideal_transfer_ns(&self, topo: &Topology) -> u64 {
        let host = topo.hosts()[0];
        let rate_bps = topo.port(host, 0).rate_bps;
        ((self.object_bytes as u128 * 8 * 1_000_000_000) / rate_bps as u128) as u64
    }

    /// The absolute failure instant on a given fabric: the first
    /// session's arrival plus `fail_after_frac` of the ideal transfer
    /// time. Deterministic — both transport runs and the victim choice
    /// use the same value.
    pub fn fault_time(&self, topo: &Topology) -> Option<SimTime> {
        self.fault_time_of(topo, &self.storage().generate(topo))
    }

    fn fault_time_of(&self, topo: &Topology, sessions: &[LogicalSession]) -> Option<SimTime> {
        let frac = self.fail_after_frac?;
        assert!(frac > 0.0, "failure must strike after traffic starts");
        let first = sessions
            .iter()
            .map(|s| s.start)
            .min()
            .expect("scenario has sessions");
        let offset = (self.ideal_transfer_ns(topo) as f64 * frac) as u64;
        Some(SimTime::from_nanos(first.as_nanos() + offset))
    }

    /// The underlying storage workload (shared verbatim by the
    /// Polyraptor and TCP runs, like every paired experiment here).
    fn storage(&self) -> StorageScenario {
        StorageScenario {
            sessions: self.sessions,
            object_bytes: self.object_bytes,
            replicas: self.replicas,
            lambda_per_host: PAPER_LAMBDA_PER_HOST,
            background_frac: 0.0,
            pattern: Pattern::Write,
            seed: self.seed,
            normalize_load: true,
            shared_risk_placement: false,
        }
    }

    /// Deterministically pick the victim: the core-layer switch (no
    /// attached hosts) crossed by the most ECMP-pinned baseline flows
    /// that are in flight when the failure strikes. Ties break to the
    /// lowest switch id; a healthy scenario weighs every flow.
    pub fn victim_core(&self, topo: &Topology) -> NodeId {
        let sessions = self.storage().generate(topo);
        let fault_time = self.fault_time_of(topo, &sessions);
        self.victim_core_of(topo, &sessions, fault_time)
    }

    fn victim_core_of(
        &self,
        topo: &Topology,
        sessions: &[LogicalSession],
        fault_time: Option<SimTime>,
    ) -> NodeId {
        let cores = topo.core_switches();
        assert!(
            !cores.is_empty(),
            "fault scenario needs a multi-tier fabric with transit switches"
        );
        let mut hits: BTreeMap<u32, usize> = cores.iter().map(|c| (c.0, 0)).collect();
        let conns = build_tcp_conns(sessions, Pattern::Write);
        for c in &conns {
            if let Some(at) = fault_time {
                // Flows starting after routes converge are spared by the
                // reroute; anything starting before the failure *or*
                // inside the convergence window is pinned via the stale
                // routes and counts towards the victim weighting.
                if c.start.as_nanos() > at.as_nanos() + REROUTE_DELAY_NS {
                    continue;
                }
            }
            let flow = c.data_flow();
            // Under a layered policy each pinned flow rides the layer
            // the fabric's hash assigns it, so the replay must walk
            // that layer's tables — layer 0 alone would mispredict the
            // busiest core whenever non-minimal layers carry traffic.
            let layer = netsim::layer_choice(flow, topo.layer_count());
            let mut at = c.sender;
            let mut steps = 0;
            while at != c.receiver {
                let choices = topo.try_next_ports_on(layer, at, c.receiver);
                at = topo
                    .port(at, choices[netsim::ecmp_choice(flow, at, choices.len())])
                    .peer;
                if let Some(n) = hits.get_mut(&at.0) {
                    *n += 1;
                }
                steps += 1;
                assert!(steps < 64, "ECMP walk exceeded 64 hops");
            }
        }
        let (&id, _) = hits
            .iter()
            .max_by_key(|&(&id, &n)| (n, Reverse(id)))
            .expect("at least one core switch");
        NodeId(id)
    }

    /// The fault plan aimed at `victim` on a given fabric.
    pub fn plan(&self, topo: &Topology, victim: NodeId) -> FaultPlan {
        self.plan_at(topo, victim, self.fault_time(topo))
    }

    fn plan_at(&self, topo: &Topology, victim: NodeId, fault_time: Option<SimTime>) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if let Some(at) = fault_time {
            plan = plan.switch_down(at, victim);
            if let Some(frac) = self.recover_after_frac {
                assert!(frac > 0.0, "recovery must follow the failure");
                let offset = (self.ideal_transfer_ns(topo) as f64 * frac) as u64;
                plan = plan.switch_up(SimTime::from_nanos(at.as_nanos() + offset), victim);
            }
        }
        plan
    }
}

/// Everything a fault run reports: per-flow results plus the fabric's
/// fault accounting (and, for TCP, the timeout count that explains the
/// tail).
#[derive(Debug, Clone)]
pub struct FaultRunReport {
    /// Per-flow transfer results (one per replica for writes).
    pub flows: Vec<TransferResult>,
    /// Fabric counters: `lost_to_fault`, `reroutes`, `trees_repaired`…
    pub fabric: netsim::FabricStats,
    /// Total sender retransmission timeouts (TCP runs; 0 for Polyraptor,
    /// which has no timeout-driven recovery to count).
    pub timeouts: u64,
    /// The failed core switch.
    pub victim: NodeId,
    /// The absolute failure instant (`None` for healthy runs).
    pub fail_at: Option<SimTime>,
    /// Recorded telemetry, when the run options enabled it.
    pub telemetry: Option<RunTelemetry>,
}

impl FaultRunReport {
    /// When the last flow finished.
    pub fn makespan(&self) -> SimTime {
        self.flows
            .iter()
            .map(|f| f.finish)
            .max()
            .expect("at least one flow")
    }

    /// Flows spanning `at` (in flight when the failure struck).
    pub fn in_flight_at(&self, at: SimTime) -> usize {
        self.flows
            .iter()
            .filter(|f| f.start < at && f.finish > at)
            .count()
    }

    /// Per-flow recovery latencies: for every flow in flight at the
    /// failure instant, the time from the failure to that flow's
    /// completion, sorted ascending. Empty for healthy runs (or when
    /// nothing spanned the failure).
    pub fn recovery_latencies_ns(&self) -> Vec<u64> {
        let Some(at) = self.fail_at else {
            return Vec::new();
        };
        let mut lat: Vec<u64> = self
            .flows
            .iter()
            .filter(|f| f.start < at && f.finish > at)
            .map(|f| f.finish.as_nanos() - at.as_nanos())
            .collect();
        lat.sort_unstable();
        lat
    }

    /// Summary of the post-fault completion tail, or `None` for healthy
    /// runs. This is the headline fast-recovery metric: with batched
    /// sweep re-pulls the max is bounded by the control-plane
    /// convergence window plus a near-healthy transfer remainder, where
    /// the legacy single-nudge sweep was paced at one symbol per sweep
    /// interval (~450 ms at paper scale).
    pub fn recovery(&self) -> Option<RecoveryStats> {
        RecoveryStats::from_latencies(self.recovery_latencies_ns())
    }
}

/// Percentiles of the post-fault recovery latency (failure instant →
/// flow completion) over the flows the failure caught in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Flows in flight when the failure struck.
    pub flows: usize,
    /// Median recovery latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile recovery latency in nanoseconds.
    pub p99_ns: u64,
    /// Worst-case recovery latency (the post-fault completion tail).
    pub max_ns: u64,
}

impl RecoveryStats {
    /// Summarize a latency (or duration) sample into p50/p99/max;
    /// `None` for an empty sample. Sorts in place — callers need not
    /// pre-sort. Shared by the single-fault and churn reports.
    pub fn from_latencies(mut lat: Vec<u64>) -> Option<Self> {
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        let pick = |p: f64| polyraptor::metrics::percentile_sorted(&lat, p);
        Some(Self {
            flows: lat.len(),
            p50_ns: pick(50.0),
            p99_ns: pick(99.0),
            max_ns: *lat.last().expect("non-empty"),
        })
    }
}

/// Run the fault scenario under Polyraptor (multicast replication,
/// sprayed symbols). Every session must complete — rerouting plus coded
/// repair is the claim under test — or the collector panics.
pub fn run_fault_rq(sc: &FaultScenario, fabric: &Fabric, opts: &RqRunOptions) -> FaultRunReport {
    let topo = fabric.build_with_policy(opts.policy);
    let sessions = sc.storage().generate(&topo);
    let fail_at = sc.fault_time_of(&topo, &sessions);
    let victim = sc.victim_core_of(&topo, &sessions, fail_at);
    let plan = sc.plan_at(&topo, victim, fail_at);
    let mut sim_cfg = SimConfig::ndp(sc.seed ^ 0xFA17);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.layer_assign = opts.layer_assign;
    sim_cfg.reroute_delay_ns = REROUTE_DELAY_NS;
    let mut pr = opts.pr;
    pr.record_spans |= opts.telemetry.enabled;
    let mut sim: Simulator<_, PolyraptorAgent, _> =
        Simulator::with_telemetry(topo, sim_cfg, opts.telemetry.recorder());
    let hosts = sim.topology().hosts().to_vec();
    let mut seed_rng = Pcg32::new(sc.seed ^ 0xA6E27);
    for &h in &hosts {
        let s = seed_rng.next_u64();
        sim.set_agent(h, PolyraptorAgent::new(h, pr, s));
    }
    let specs = build_rq_specs(&mut sim, &sessions, Pattern::Write);
    for spec in &specs {
        install_rq(&mut sim, spec);
    }
    sim.schedule_faults(&plan);
    sim.run_to_completion();
    let flows = collect_rq_results(&sim, &sessions, Pattern::Write);
    let spans = gather_rq_spans(&sim);
    let telemetry = take_run_telemetry(&mut sim, spans);
    FaultRunReport {
        flows,
        fabric: sim.stats(),
        timeouts: 0,
        victim,
        fail_at,
        telemetry,
    }
}

/// Run the fault scenario under the TCP multi-unicast baseline: one
/// ECMP-pinned connection per replica. Flows crossing the dead core
/// recover by retransmission timeout, which is exactly the tail the
/// report's `timeouts`/`makespan` expose.
pub fn run_fault_tcp(sc: &FaultScenario, fabric: &Fabric, opts: &TcpRunOptions) -> FaultRunReport {
    let topo = fabric.build_with_policy(opts.policy);
    let sessions = sc.storage().generate(&topo);
    let fail_at = sc.fault_time_of(&topo, &sessions);
    let victim = sc.victim_core_of(&topo, &sessions, fail_at);
    let plan = sc.plan_at(&topo, victim, fail_at);
    let mut sim_cfg = SimConfig::classic(sc.seed ^ 0xFA17);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.reroute_delay_ns = REROUTE_DELAY_NS;
    let mut sim: Simulator<_, TcpAgent, _> =
        Simulator::with_telemetry(topo, sim_cfg, opts.telemetry.recorder());
    let hosts = sim.topology().hosts().to_vec();
    for &h in &hosts {
        sim.set_agent(h, TcpAgent::new(h, opts.tcp));
    }
    let conns = build_tcp_conns(&sessions, Pattern::Write);
    for c in &conns {
        sim.agent_mut(c.sender).install(c.clone());
        sim.agent_mut(c.receiver).install(c.clone());
        sim.schedule_timer(c.sender, c.start, conn_start_token(c.id));
    }
    sim.schedule_faults(&plan);
    sim.run_to_completion();
    let timeouts: u64 = conns
        .iter()
        .map(|c| sim.agent(c.sender).sender(c.id).map_or(0, |s| s.timeouts))
        .sum();
    if timeouts > 0 {
        // Timeouts mean work the fabric failed to carry — flag the
        // anomaly so the flight recorder freezes the lead-up events.
        sim.note_anomaly(netsim::AnomalyKind::Timeout);
    }
    let flows = collect_tcp_results(&sim, &sessions);
    let telemetry = take_run_telemetry(&mut sim, Vec::new());
    FaultRunReport {
        flows,
        fabric: sim.stats(),
        timeouts,
        victim,
        fail_at,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> FaultScenario {
        FaultScenario::fig1_failure(4, 128 << 10, 11)
    }

    #[test]
    fn victim_is_deterministic_and_core_layer() {
        let topo = Fabric::small().build();
        let sc = small_scenario();
        let v1 = sc.victim_core(&topo);
        let v2 = sc.victim_core(&topo);
        assert_eq!(v1, v2);
        assert!(topo.core_switches().contains(&v1));
    }

    #[test]
    fn rq_survives_core_failure_on_small_fabric() {
        let sc = small_scenario();
        let rep = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        // The collector asserts completion; spot-check the accounting.
        assert!(rep.fabric.reroutes >= 1, "failure must trigger a reroute");
        assert_eq!(rep.flows.len(), 4 * 3, "one flow per replica");
        for f in &rep.flows {
            assert!(f.goodput_gbps() > 0.0);
        }
    }

    #[test]
    fn healthy_variant_runs_without_faults() {
        let sc = small_scenario().healthy();
        let rep = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        assert_eq!(rep.fabric.reroutes, 0);
        assert_eq!(rep.fabric.lost_to_fault, 0);
    }

    #[test]
    fn tcp_counts_timeouts_under_failure() {
        let sc = small_scenario();
        let faulted = run_fault_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
        let healthy = run_fault_tcp(&sc.healthy(), &Fabric::small(), &TcpRunOptions::default());
        assert!(
            faulted.timeouts > healthy.timeouts,
            "core failure must cost the pinned baseline timeouts ({} vs {})",
            faulted.timeouts,
            healthy.timeouts
        );
        assert!(faulted.makespan() > healthy.makespan());
    }

    #[test]
    fn recovery_stats_cover_in_flight_flows() {
        let sc = small_scenario();
        let rep = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        let stats = rep.recovery().expect("faulted run has recovery stats");
        assert_eq!(stats.flows, rep.in_flight_at(rep.fail_at.unwrap()));
        assert!(stats.p50_ns <= stats.p99_ns && stats.p99_ns <= stats.max_ns);
        assert_eq!(
            stats.max_ns,
            *rep.recovery_latencies_ns().last().unwrap(),
            "max is the completion tail"
        );
        // Healthy runs have no failure instant, hence no recovery tail.
        let healthy = run_fault_rq(&sc.healthy(), &Fabric::small(), &RqRunOptions::default());
        assert!(healthy.recovery().is_none());
    }

    #[test]
    fn batched_repull_beats_legacy_sweep_tail() {
        // The headline of batch sweep recovery, at smoke scale: the same
        // fault run with batching disabled (legacy one-nudge-per-sweep)
        // must show a strictly worse post-fault completion tail.
        let sc = small_scenario();
        let batched = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        let mut legacy_opts = RqRunOptions::default();
        legacy_opts.pr.repull_batch_cap = 0;
        let legacy = run_fault_rq(&sc, &Fabric::small(), &legacy_opts);
        let b = batched.recovery().expect("faulted run").max_ns;
        let l = legacy.recovery().expect("faulted run").max_ns;
        assert!(
            b < l,
            "batched recovery must beat the sweep-paced tail ({b} vs {l} ns)"
        );
    }

    #[test]
    fn switch_recovery_is_exercised() {
        let mut sc = small_scenario();
        // Recover well after the convergence window so the down and up
        // events trigger two distinct recomputations.
        sc.recover_after_frac = Some(30.0);
        let rep = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        assert_eq!(rep.fabric.reroutes, 2, "down and up both reroute");
    }

    #[test]
    fn failure_strikes_mid_transfer() {
        let sc = small_scenario();
        let rep = run_fault_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        let at = rep.fail_at.expect("faulted run");
        assert!(
            rep.in_flight_at(at) >= 1,
            "at least the first session must span the failure instant"
        );
    }
}
