//! Minimal CSV emission for experiment outputs (hand-rolled: the only
//! output is numeric series, no quoting or escaping needed).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serialize rows of `f64`-convertible cells under a header line.
pub fn to_csv<R, C>(header: &[&str], rows: R) -> String
where
    R: IntoIterator<Item = C>,
    C: IntoIterator<Item = f64>,
{
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let mut first = true;
        for cell in row {
            if !first {
                out.push(',');
            }
            first = false;
            // Trim trailing zeros for readability but keep precision.
            let _ = write!(out, "{cell:.6}");
        }
        out.push('\n');
    }
    out
}

/// Write a CSV produced by [`to_csv`] to disk.
pub fn write_csv<R, C>(path: &Path, header: &[&str], rows: R) -> io::Result<()>
where
    R: IntoIterator<Item = C>,
    C: IntoIterator<Item = f64>,
{
    std::fs::write(path, to_csv(header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let s = to_csv(&["a", "b"], vec![vec![1.0, 2.0], vec![3.5, 4.25]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1.000000,2.000000");
        assert_eq!(lines[2], "3.500000,4.250000");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_rows_ok() {
        let s = to_csv(&["x"], Vec::<Vec<f64>>::new());
        assert_eq!(s, "x\n");
    }
}
