//! Experiment runners: map logical scenarios onto Polyraptor or TCP
//! simulations, run them to completion, and aggregate per-session
//! goodput the way the paper plots it.

use std::collections::BTreeMap;

use netsim::{
    LayerAssign, NodeId, Pcg32, QueueConfig, RouteMode, RoutingPolicy, SimConfig, SimTime,
    Simulator, Topology,
};
use polyraptor::{start_token, PolyraptorAgent, PrConfig, SessionId, SessionSpec};
use tcpsim::{conn_start_token, ConnId, ConnSpec, TcpAgent, TcpConfig};

use crate::scenario::{IncastScenario, LogicalSession, Pattern, StorageScenario};
use crate::telemetry::TelemetryOptions;

/// The simulated fabric: shape plus link parameters. The paper
/// evaluates on a fat-tree; leaf–spine and Jellyfish variants exist so
/// scenarios can probe transports on oversubscribed and low-diameter
/// random fabrics (where non-minimal routing matters).
#[derive(Debug, Clone, Copy)]
pub enum Fabric {
    /// k-ary fat-tree (paper: k = 10 → 250 hosts, 1 Gbps, 10 µs).
    FatTree {
        /// Fat-tree arity (even).
        k: usize,
        /// Link rate in bits per second.
        rate_bps: u64,
        /// Per-link propagation delay in nanoseconds.
        prop_ns: u64,
    },
    /// Two-tier leaf–spine with oversubscribed uplinks.
    LeafSpine {
        /// Leaf (top-of-rack) switches.
        leaves: usize,
        /// Spine switches (every leaf connects to every spine).
        spines: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Oversubscription ratio (1.0 = non-blocking, 4.0 = 4:1).
        oversub: f64,
        /// Host-link rate in bits per second.
        rate_bps: u64,
        /// Per-link propagation delay in nanoseconds.
        prop_ns: u64,
    },
    /// Jellyfish-style seeded random regular graph of switches.
    Jellyfish {
        /// Switch count.
        switches: usize,
        /// Inter-switch degree of the random regular graph.
        net_degree: usize,
        /// Hosts attached to each switch.
        hosts_per_switch: usize,
        /// Link rate in bits per second.
        rate_bps: u64,
        /// Per-link propagation delay in nanoseconds.
        prop_ns: u64,
        /// Wiring seed (same seed ⇒ identical graph).
        seed: u64,
    },
}

impl Fabric {
    /// The paper's 250-server fat-tree.
    pub fn paper() -> Self {
        Self::fat_tree(10)
    }

    /// A 16-host fat-tree for tests and quick runs.
    pub fn small() -> Self {
        Self::fat_tree(4)
    }

    /// A k-ary fat-tree at the paper's link parameters.
    pub fn fat_tree(k: usize) -> Self {
        Self::FatTree {
            k,
            rate_bps: 1_000_000_000,
            prop_ns: 10_000,
        }
    }

    /// A 16-host, 2:1-oversubscribed leaf–spine for tests and quick
    /// runs (heterogeneous link rates: uplinks at 1 Gbps x 4 / 4).
    pub fn small_leaf_spine() -> Self {
        Self::LeafSpine {
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 4,
            oversub: 2.0,
            rate_bps: 1_000_000_000,
            prop_ns: 10_000,
        }
    }

    /// A 1024-host k=16 fat-tree — the large-fabric scale run the flat
    /// CSR route arenas make practical.
    pub fn large() -> Self {
        Self::fat_tree(16)
    }

    /// A 5000-host Jellyfish (250 switches x 20 hosts, network degree
    /// 12) — the random-graph counterpart of the large-fabric run.
    pub fn large_jellyfish() -> Self {
        Self::Jellyfish {
            switches: 250,
            net_degree: 12,
            hosts_per_switch: 20,
            rate_bps: 1_000_000_000,
            prop_ns: 10_000,
            seed: 1,
        }
    }

    /// A 16-host Jellyfish fabric for tests and quick runs.
    pub fn small_jellyfish() -> Self {
        Self::Jellyfish {
            switches: 8,
            net_degree: 3,
            hosts_per_switch: 2,
            rate_bps: 1_000_000_000,
            prop_ns: 10_000,
            seed: 1,
        }
    }

    /// Build the routed topology.
    pub fn build(&self) -> Topology {
        match *self {
            Self::FatTree {
                k,
                rate_bps,
                prop_ns,
            } => Topology::fat_tree(k, rate_bps, prop_ns),
            Self::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
                oversub,
                rate_bps,
                prop_ns,
            } => Topology::leaf_spine(leaves, spines, hosts_per_leaf, oversub, rate_bps, prop_ns),
            Self::Jellyfish {
                switches,
                net_degree,
                hosts_per_switch,
                rate_bps,
                prop_ns,
                seed,
            } => Topology::jellyfish(
                switches,
                net_degree,
                hosts_per_switch,
                rate_bps,
                prop_ns,
                seed,
            ),
        }
    }

    /// Build the routed topology under a layered routing policy
    /// (recomputes routes only when the policy differs from the builder
    /// default — single-layer minimal).
    pub fn build_with_policy(&self, policy: RoutingPolicy) -> Topology {
        let mut topo = self.build();
        if policy != RoutingPolicy::minimal() {
            topo.set_policy(policy);
            topo.compute_routes();
        }
        topo
    }

    /// Number of hosts the fabric will have.
    pub fn host_count(&self) -> usize {
        match *self {
            Self::FatTree { k, .. } => k * k * k / 4,
            Self::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            Self::Jellyfish {
                switches,
                hosts_per_switch,
                ..
            } => switches * hosts_per_switch,
        }
    }

    /// Human-readable shape summary for run banners.
    pub fn describe(&self) -> String {
        match *self {
            Self::FatTree { k, .. } => format!("k={k} fat-tree ({} hosts)", self.host_count()),
            Self::LeafSpine {
                leaves,
                spines,
                oversub,
                ..
            } => format!(
                "{leaves}x{spines} leaf-spine {oversub}:1 ({} hosts)",
                self.host_count()
            ),
            Self::Jellyfish {
                switches,
                net_degree,
                ..
            } => format!(
                "jellyfish {switches}sw/deg{net_degree} ({} hosts)",
                self.host_count()
            ),
        }
    }
}

/// One transport-flow result: the unit the paper's figures plot.
///
/// The paper ranks "transport sessions (flows)": in a replication write
/// with R replicas every sender→replica flow is its own point (R points
/// per op); a multi-source read is one flow at the client. The op-level
/// view (replication complete when the *last* replica holds the object)
/// is available via [`op_results`].
#[derive(Debug, Clone)]
pub struct TransferResult {
    /// Logical session index (shared by the flows of one op).
    pub session: u32,
    /// Bytes this flow delivered to its application endpoint.
    pub bytes: usize,
    /// Initiation time.
    pub start: SimTime,
    /// When this flow's endpoint finished.
    pub finish: SimTime,
    /// Background flag.
    pub background: bool,
}

impl TransferResult {
    /// Application goodput in Gbit/s.
    pub fn goodput_gbps(&self) -> f64 {
        (self.bytes as f64 * 8.0) / (self.finish - self.start) as f64
    }
}

/// Foreground goodputs from a result set (what the figures show).
pub fn foreground_goodputs(results: &[TransferResult]) -> Vec<f64> {
    results
        .iter()
        .filter(|r| !r.background)
        .map(|r| r.goodput_gbps())
        .collect()
}

/// Collapse per-flow results into op-level results: an op starts with
/// its session and finishes when the last of its flows finishes; its
/// byte count is one object copy. This is the stricter "all replicas
/// durable" metric used by the ablation benches.
pub fn op_results(flows: &[TransferResult], object_bytes: usize) -> Vec<TransferResult> {
    let mut ops: BTreeMap<u32, TransferResult> = BTreeMap::new();
    for f in flows {
        let e = ops.entry(f.session).or_insert_with(|| TransferResult {
            session: f.session,
            bytes: object_bytes,
            start: f.start,
            finish: f.finish,
            background: f.background,
        });
        e.finish = e.finish.max(f.finish);
        e.start = e.start.min(f.start);
    }
    ops.into_values().collect()
}

// ---------------------------------------------------------------------------
// Polyraptor runner
// ---------------------------------------------------------------------------

/// Polyraptor-side knobs for a run.
#[derive(Debug, Clone, Copy)]
pub struct RqRunOptions {
    /// Protocol configuration.
    pub pr: PrConfig,
    /// Switch queue (default NDP trimming).
    pub switch_queue: QueueConfig,
    /// Path selection (default per-packet spraying).
    pub route: RouteMode,
    /// Layered routing policy (default single-layer minimal/ECMP;
    /// `RoutingPolicy::layered(n, seed)` adds FatPaths-style
    /// path-diversity layers, useful on Jellyfish fabrics where minimal
    /// path diversity is structurally low).
    pub policy: RoutingPolicy,
    /// Flow→layer assignment strategy (default hash-per-flow; only
    /// meaningful with a multi-layer policy).
    pub layer_assign: LayerAssign,
    /// Telemetry recording (default off). Honoured by the fault and
    /// churn runners, which attach a [`crate::RunTelemetry`] to their
    /// reports; enabling it also turns on the agents' flow spans.
    pub telemetry: TelemetryOptions,
    /// Route-computation worker threads (0 = available cores, 1 =
    /// serial, the default). Reports are byte-identical per seed at
    /// every setting — route tables are computed by pure per-column
    /// work — so this is purely a wall-clock knob for large fabrics.
    pub parallelism: usize,
    /// Event-loop shards (0 = available cores, 1 = the serial loop,
    /// the default). Like `parallelism`, byte-identical per seed at
    /// every setting — the sharded loop replays the serial schedule —
    /// so this too is purely a wall-clock knob.
    pub shards: usize,
}

impl Default for RqRunOptions {
    fn default() -> Self {
        Self {
            pr: PrConfig::paper_default(),
            switch_queue: QueueConfig::NDP_DEFAULT,
            route: RouteMode::Spray,
            policy: RoutingPolicy::minimal(),
            layer_assign: LayerAssign::FlowHash,
            telemetry: TelemetryOptions::default(),
            parallelism: 1,
            shards: 1,
        }
    }
}

/// Run a storage scenario under Polyraptor and aggregate per-session
/// results. `pattern` Write ⇒ multicast replication; Read ⇒ multi-source
/// fetch. Background sessions are unicast writes to the session's first
/// replica.
pub fn run_storage_rq(
    scenario: &StorageScenario,
    fabric: &Fabric,
    opts: &RqRunOptions,
) -> Vec<TransferResult> {
    let topo = fabric.build_with_policy(opts.policy);
    let sessions = scenario.generate(&topo);
    let mut sim_cfg = SimConfig::ndp(scenario.seed ^ 0xFAB);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.shards = opts.shards;
    sim_cfg.layer_assign = opts.layer_assign;
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, sim_cfg);

    let hosts = sim.topology().hosts().to_vec();
    let mut seed_rng = Pcg32::new(scenario.seed ^ 0xA6E27);
    for &h in &hosts {
        let s = seed_rng.next_u64();
        sim.set_agent(h, PolyraptorAgent::new(h, opts.pr, s));
    }

    let specs = build_rq_specs(&mut sim, &sessions, scenario.pattern);
    for spec in &specs {
        install_rq(&mut sim, spec);
    }
    sim.run_to_completion();
    collect_rq_results(&sim, &sessions, scenario.pattern)
}

/// Trees registered per multicast session — symbols are sprayed across
/// them, the multicast analogue of NDP's per-packet multipath.
pub const MULTICAST_TREES: usize = 8;

/// Translate logical sessions into Polyraptor session specs (registering
/// multicast groups as needed).
pub fn build_rq_specs<A: netsim::Agent<polyraptor::PrPayload>, T: netsim::TelemetrySink>(
    sim: &mut Simulator<polyraptor::PrPayload, A, T>,
    sessions: &[LogicalSession],
    pattern: Pattern,
) -> Vec<SessionSpec> {
    sessions
        .iter()
        .map(|ls| {
            let id = SessionId(ls.index);
            let mut spec = if ls.background {
                // Background load: plain unicast push to the primary.
                SessionSpec::unicast(id, ls.bytes, ls.client, ls.replicas[0], ls.start)
            } else {
                match pattern {
                    Pattern::Write => {
                        if ls.replicas.len() == 1 {
                            SessionSpec::unicast(id, ls.bytes, ls.client, ls.replicas[0], ls.start)
                        } else {
                            // Several trees per group: symbols spray
                            // across them (multipath multicast).
                            let groups: Vec<_> = (0..MULTICAST_TREES)
                                .map(|_| sim.register_group(ls.client, &ls.replicas))
                                .collect();
                            SessionSpec::multicast(
                                id,
                                ls.bytes,
                                ls.client,
                                ls.replicas.clone(),
                                groups,
                                ls.start,
                            )
                        }
                    }
                    Pattern::Read => SessionSpec::multi_source(
                        id,
                        ls.bytes,
                        ls.replicas.clone(),
                        ls.client,
                        ls.start,
                    ),
                }
            };
            spec.background = ls.background;
            spec
        })
        .collect()
}

/// Install a Polyraptor session at every participant and schedule its
/// start timer everywhere (receivers need it to arm their keep-alive).
pub fn install_rq<T: netsim::TelemetrySink>(
    sim: &mut Simulator<polyraptor::PrPayload, PolyraptorAgent, T>,
    spec: &SessionSpec,
) {
    for &h in spec.senders.iter().chain(&spec.receivers) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
}

pub(crate) fn collect_rq_results<T: netsim::TelemetrySink>(
    sim: &Simulator<polyraptor::PrPayload, PolyraptorAgent, T>,
    sessions: &[LogicalSession],
    pattern: Pattern,
) -> Vec<TransferResult> {
    // One result per receiver-side record — the paper's "transport
    // session (flow)" unit: each replica of a write is its own flow.
    let mut flows: Vec<TransferResult> = Vec::new();
    let mut per_session: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, agent) in sim.agents() {
        for rec in &agent.records {
            *per_session.entry(rec.session.0).or_insert(0) += 1;
            flows.push(TransferResult {
                session: rec.session.0,
                bytes: rec.data_len,
                start: rec.start,
                finish: rec.finish,
                background: rec.background,
            });
        }
    }
    // Every session must have completed at every endpoint.
    for ls in sessions {
        let expected = expected_rq_records(ls, pattern);
        let got = per_session.get(&ls.index).copied().unwrap_or(0);
        assert_eq!(
            got, expected,
            "session {} incomplete ({got}/{expected})",
            ls.index
        );
    }
    flows.sort_by_key(|f| f.session);
    flows
}

fn expected_rq_records(ls: &LogicalSession, pattern: Pattern) -> usize {
    if ls.background {
        return 1;
    }
    match pattern {
        // Write: one record per replica receiver.
        Pattern::Write => ls.replicas.len(),
        // Read: the client is the only receiver.
        Pattern::Read => 1,
    }
}

// ---------------------------------------------------------------------------
// TCP runner
// ---------------------------------------------------------------------------

/// TCP-side knobs for a run.
#[derive(Debug, Clone, Copy)]
pub struct TcpRunOptions {
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Switch queue (default deep drop-tail).
    pub switch_queue: QueueConfig,
    /// Path selection (default per-flow ECMP).
    pub route: RouteMode,
    /// Layered routing policy (default single-layer minimal/ECMP).
    pub policy: RoutingPolicy,
    /// Telemetry recording (default off). Honoured by the fault and
    /// churn runners, which attach a [`crate::RunTelemetry`] to their
    /// reports.
    pub telemetry: TelemetryOptions,
    /// Route-computation worker threads (0 = available cores, 1 =
    /// serial, the default). Reports are byte-identical per seed at
    /// every setting.
    pub parallelism: usize,
    /// Event-loop shards (0 = available cores, 1 = the serial loop,
    /// the default). Byte-identical per seed at every setting.
    pub shards: usize,
}

impl Default for TcpRunOptions {
    fn default() -> Self {
        Self {
            tcp: TcpConfig::paper_default(),
            switch_queue: QueueConfig::DROPTAIL_DEFAULT,
            route: RouteMode::EcmpFlow,
            policy: RoutingPolicy::minimal(),
            telemetry: TelemetryOptions::default(),
            parallelism: 1,
            shards: 1,
        }
    }
}

/// Run a storage scenario under TCP, emulating the paper's baselines:
/// Write ⇒ multi-unicast (the client sends one full copy per replica);
/// Read ⇒ partitioned fetch (each replica returns `1/R` of the object,
/// no coordination). Background sessions are single connections.
pub fn run_storage_tcp(
    scenario: &StorageScenario,
    fabric: &Fabric,
    opts: &TcpRunOptions,
) -> Vec<TransferResult> {
    let topo = fabric.build_with_policy(opts.policy);
    let sessions = scenario.generate(&topo);
    let mut sim_cfg = SimConfig::classic(scenario.seed ^ 0xFAB);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.shards = opts.shards;
    let mut sim: Simulator<_, TcpAgent> = Simulator::new(topo, sim_cfg);
    let hosts = sim.topology().hosts().to_vec();
    for &h in &hosts {
        sim.set_agent(h, TcpAgent::new(h, opts.tcp));
    }

    let conns = build_tcp_conns(&sessions, scenario.pattern);
    for c in &conns {
        sim.agent_mut(c.sender).install(c.clone());
        sim.agent_mut(c.receiver).install(c.clone());
        sim.schedule_timer(c.sender, c.start, conn_start_token(c.id));
    }
    sim.run_to_completion();
    collect_tcp_results(&sim, &sessions)
}

/// Translate logical sessions into TCP connection sets.
pub fn build_tcp_conns(sessions: &[LogicalSession], pattern: Pattern) -> Vec<ConnSpec> {
    let mut conns = Vec::new();
    let mut next_id = 0u32;
    for ls in sessions {
        let mut add = |sender: NodeId, receiver: NodeId, bytes: u64| {
            conns.push(ConnSpec {
                id: ConnId(next_id),
                session: ls.index,
                bytes,
                sender,
                receiver,
                start: ls.start,
                background: ls.background,
            });
            next_id += 1;
        };
        if ls.background {
            add(ls.client, ls.replicas[0], ls.bytes as u64);
            continue;
        }
        match pattern {
            Pattern::Write => {
                // Multi-unicast: one full copy per replica.
                for &r in &ls.replicas {
                    add(ls.client, r, ls.bytes as u64);
                }
            }
            Pattern::Read => {
                // Partitioned fetch: replica i returns its stripe.
                let shares = stripe(ls.bytes as u64, ls.replicas.len());
                for (&r, &sh) in ls.replicas.iter().zip(&shares) {
                    add(r, ls.client, sh);
                }
            }
        }
    }
    conns
}

/// Split `bytes` into `n` near-equal positive stripes.
pub fn stripe(bytes: u64, n: usize) -> Vec<u64> {
    assert!(n >= 1 && bytes >= n as u64, "stripe too small");
    let base = bytes / n as u64;
    let extra = (bytes % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < extra)).collect()
}

pub(crate) fn collect_tcp_results<T: netsim::TelemetrySink>(
    sim: &Simulator<tcpsim::TcpPayload, TcpAgent, T>,
    sessions: &[LogicalSession],
) -> Vec<TransferResult> {
    // One result per connection — each copy/stripe is its own flow,
    // mirroring the Polyraptor accounting.
    let mut flows: Vec<TransferResult> = Vec::new();
    let mut per_session: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, agent) in sim.agents() {
        for rec in &agent.records {
            *per_session.entry(rec.session).or_insert(0) += 1;
            flows.push(TransferResult {
                session: rec.session,
                bytes: rec.bytes as usize,
                start: rec.start,
                finish: rec.finish,
                background: rec.background,
            });
        }
    }
    for ls in sessions {
        assert!(
            per_session.get(&ls.index).copied().unwrap_or(0) > 0,
            "TCP session {} never completed",
            ls.index
        );
    }
    flows.sort_by_key(|f| f.session);
    flows
}

// ---------------------------------------------------------------------------
// Incast runners (Figure 1c)
// ---------------------------------------------------------------------------

/// Run one Incast exchange under Polyraptor: a single multi-source
/// session striped over `senders` hosts. Returns goodput in Gbit/s.
pub fn run_incast_rq(scenario: &IncastScenario, fabric: &Fabric, opts: &RqRunOptions) -> f64 {
    let topo = fabric.build_with_policy(opts.policy);
    let (client, senders) = scenario.place(&topo);
    let mut sim_cfg = SimConfig::ndp(scenario.seed ^ 0x1C);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.shards = opts.shards;
    sim_cfg.layer_assign = opts.layer_assign;
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, sim_cfg);
    let hosts = sim.topology().hosts().to_vec();
    let mut seed_rng = Pcg32::new(scenario.seed ^ 0xA6E27);
    for &h in &hosts {
        let s = seed_rng.next_u64();
        sim.set_agent(h, PolyraptorAgent::new(h, opts.pr, s));
    }
    let spec = SessionSpec::multi_source(
        SessionId(0),
        scenario.block_bytes,
        senders,
        client,
        SimTime::ZERO,
    );
    install_rq(&mut sim, &spec);
    sim.run_to_completion();
    let rec = sim
        .agent(client)
        .records
        .first()
        .expect("incast session must complete");
    rec.goodput_gbps()
}

/// Run one Incast exchange under TCP: `senders` synchronized connections
/// each carrying one stripe. Returns goodput in Gbit/s over the whole
/// exchange (finish = last stripe).
pub fn run_incast_tcp(scenario: &IncastScenario, fabric: &Fabric, opts: &TcpRunOptions) -> f64 {
    let topo = fabric.build_with_policy(opts.policy);
    let (client, senders) = scenario.place(&topo);
    let mut sim_cfg = SimConfig::classic(scenario.seed ^ 0x1C);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.shards = opts.shards;
    let mut sim: Simulator<_, TcpAgent> = Simulator::new(topo, sim_cfg);
    let hosts = sim.topology().hosts().to_vec();
    for &h in &hosts {
        sim.set_agent(h, TcpAgent::new(h, opts.tcp));
    }
    let shares = stripe(scenario.block_bytes as u64, senders.len());
    for (i, (&s, &sh)) in senders.iter().zip(&shares).enumerate() {
        let spec = ConnSpec {
            id: ConnId(i as u32),
            session: 0,
            bytes: sh,
            sender: s,
            receiver: client,
            start: SimTime::ZERO,
            background: false,
        };
        sim.agent_mut(spec.sender).install(spec.clone());
        sim.agent_mut(spec.receiver).install(spec.clone());
        sim.schedule_timer(spec.sender, spec.start, conn_start_token(spec.id));
    }
    sim.run_to_completion();
    let finish = sim
        .agent(client)
        .records
        .iter()
        .map(|r| r.finish)
        .max()
        .expect("incast connections must complete");
    (scenario.block_bytes as f64 * 8.0) / (finish - SimTime::ZERO) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_sums_and_balances() {
        for (bytes, n) in [(100u64, 3usize), (70 << 10, 7), (256 << 10, 64)] {
            let s = stripe(bytes, n);
            assert_eq!(s.iter().sum::<u64>(), bytes);
            let max = *s.iter().max().unwrap();
            let min = *s.iter().min().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn small_write_scenario_rq_completes() {
        let sc = StorageScenario {
            sessions: 30,
            object_bytes: 256 << 10,
            replicas: 3,
            lambda_per_host: crate::scenario::PAPER_LAMBDA_PER_HOST,
            normalize_load: true,
            shared_risk_placement: false,
            background_frac: 0.2,
            pattern: Pattern::Write,
            seed: 7,
        };
        let results = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        // One flow per replica receiver + one per background session.
        assert!(
            results.len() >= 30,
            "per-flow accounting yields >= one point per op"
        );
        for r in &results {
            assert!(r.finish > r.start);
            let g = r.goodput_gbps();
            assert!(g > 0.01 && g <= 1.0, "goodput {g} out of range");
        }
        // Op-level view covers every logical session exactly once.
        let ops = op_results(&results, sc.object_bytes);
        assert_eq!(ops.len(), 30);
    }

    #[test]
    fn small_read_scenario_rq_completes() {
        let sc = StorageScenario {
            sessions: 30,
            object_bytes: 256 << 10,
            replicas: 3,
            lambda_per_host: crate::scenario::PAPER_LAMBDA_PER_HOST,
            normalize_load: true,
            shared_risk_placement: false,
            background_frac: 0.2,
            pattern: Pattern::Read,
            seed: 8,
        };
        let results = run_storage_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        assert_eq!(results.len(), 30);
        assert!(foreground_goodputs(&results).iter().all(|&g| g > 0.0));
    }

    #[test]
    fn small_write_scenario_tcp_completes() {
        let sc = StorageScenario {
            sessions: 30,
            object_bytes: 256 << 10,
            replicas: 3,
            lambda_per_host: crate::scenario::PAPER_LAMBDA_PER_HOST,
            normalize_load: true,
            shared_risk_placement: false,
            background_frac: 0.2,
            pattern: Pattern::Write,
            seed: 7,
        };
        let results = run_storage_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
        assert!(results.len() >= 30);
        // Multi-unicast replication: 3 copies share the 1 Gbps uplink, so
        // no flow of a foreground op can beat ~1/3 Gbps by much.
        for r in results.iter().filter(|r| !r.background) {
            assert!(
                r.goodput_gbps() < 0.45,
                "3-replica TCP can't exceed uplink/3"
            );
        }
        assert_eq!(op_results(&results, sc.object_bytes).len(), 30);
    }

    #[test]
    fn incast_runners_produce_goodput() {
        let sc = IncastScenario {
            senders: 8,
            block_bytes: 256 << 10,
            seed: 3,
        };
        let g_rq = run_incast_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        let g_tcp = run_incast_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
        assert!(g_rq > 0.0 && g_rq <= 1.0);
        assert!(g_tcp > 0.0 && g_tcp <= 1.0);
    }
}
