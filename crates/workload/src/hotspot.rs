//! Network-hotspot experiment (the paper's §3 "current work": behaviour
//! "under ... the existence of network hotspots").
//!
//! A fraction of the core-layer links is degraded to a fraction of line
//! rate mid-fabric. Per-packet spraying should route *around* the slow
//! links statistically (a sprayed flow loses only the capacity share of
//! the degraded paths), while per-flow ECMP pins the unlucky flows onto
//! them for their whole lifetime — the "embracing path redundancy"
//! claim, made measurable.

use netsim::{FaultAction, FaultPlan, NodeKind, Pcg32, SimTime, Simulator};
use polyraptor::{PolyraptorAgent, SessionId, SessionSpec};

use crate::runner::{install_rq, Fabric, RqRunOptions, TransferResult};

/// Hotspot scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotspotScenario {
    /// Number of parallel unicast transfers (distinct host pairs).
    pub transfers: usize,
    /// Object size per transfer.
    pub object_bytes: usize,
    /// Fraction of switch-to-switch links degraded (0..1).
    pub degraded_frac: f64,
    /// Degraded links run at this fraction of line rate. Zero means the
    /// selected links suffer *detected* link-down faults (the fabric
    /// reroutes around them); any other value is a silent rate
    /// degradation the control plane never notices.
    pub degraded_rate_frac: f64,
    /// Seed.
    pub seed: u64,
}

/// Run the hotspot scenario under Polyraptor with the given options;
/// returns per-transfer results.
pub fn run_hotspot_rq(
    scenario: &HotspotScenario,
    fabric: &Fabric,
    opts: &RqRunOptions,
) -> Vec<TransferResult> {
    let topo = fabric.build_with_policy(opts.policy);
    let hosts = topo.hosts().to_vec();
    assert!(
        hosts.len() >= 2 * scenario.transfers,
        "need disjoint host pairs"
    );
    let mut sim_cfg = netsim::SimConfig::ndp(scenario.seed ^ 0x407);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.layer_assign = opts.layer_assign;
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, sim_cfg);
    let mut rng = Pcg32::new(scenario.seed ^ 0x5077);
    for &h in &hosts {
        let s = rng.next_u64();
        sim.set_agent(h, PolyraptorAgent::new(h, opts.pr, s));
    }

    // Degrade a random subset of inter-switch links, expressed as a
    // FaultPlan applied at t = 0 — the single rate-override code path
    // shared with the fault scenarios. A zero target rate becomes a
    // *detected* LinkDown (flush + reroute); anything else a silent
    // RateChange (both act on both directions of the link).
    let node_count = sim.topology().node_count();
    let mut plan = FaultPlan::new();
    let mut degraded = 0usize;
    let mut total_fabric_links = 0usize;
    for n in 0..node_count as u32 {
        let node = netsim::NodeId(n);
        if sim.topology().kind(node) != NodeKind::Switch {
            continue;
        }
        for (p, port) in sim.topology().node_ports(node).iter().enumerate() {
            // Count each undirected link once (lower node id owns it)
            // and only switch-switch links (host links are the flows'
            // own bottleneck, not a "hotspot").
            if sim.topology().kind(port.peer) != NodeKind::Switch || port.peer.0 < n {
                continue;
            }
            total_fabric_links += 1;
            if rng.f64() < scenario.degraded_frac {
                let action = if scenario.degraded_rate_frac == 0.0 {
                    FaultAction::LinkDown {
                        node,
                        port: p as u16,
                    }
                } else {
                    FaultAction::RateChange {
                        node,
                        port: p as u16,
                        rate_bps: (port.rate_bps as f64 * scenario.degraded_rate_frac) as u64,
                    }
                };
                plan.push(SimTime::ZERO, action);
                degraded += 1;
            }
        }
    }
    assert!(
        degraded > 0 || scenario.degraded_frac == 0.0,
        "degraded_frac {} selected none of {} fabric links",
        scenario.degraded_frac,
        total_fabric_links
    );
    sim.schedule_faults(&plan);

    // Disjoint random pairs, all starting together (worst case for
    // pinned paths: no chance to average over flows).
    let mut shuffled = hosts.clone();
    rng.shuffle(&mut shuffled);
    let mut specs = Vec::new();
    for i in 0..scenario.transfers {
        let spec = SessionSpec::unicast(
            SessionId(i as u32),
            scenario.object_bytes,
            shuffled[2 * i],
            shuffled[2 * i + 1],
            SimTime::ZERO,
        );
        specs.push(spec);
    }
    for spec in &specs {
        install_rq(&mut sim, spec);
    }
    sim.run_to_completion();

    specs
        .iter()
        .map(|spec| {
            let rec = sim
                .agent(spec.receivers[0])
                .records
                .iter()
                .find(|r| r.session == spec.id)
                .expect("transfer completed");
            TransferResult {
                session: spec.id.0,
                bytes: rec.data_len,
                start: rec.start,
                finish: rec.finish,
                background: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RankCurve;
    use netsim::RouteMode;

    fn scenario(frac: f64) -> HotspotScenario {
        HotspotScenario {
            transfers: 6,
            object_bytes: 1 << 20,
            degraded_frac: frac,
            degraded_rate_frac: 0.1,
            seed: 11,
        }
    }

    #[test]
    fn healthy_fabric_baseline() {
        let res = run_hotspot_rq(&scenario(0.0), &Fabric::small(), &RqRunOptions::default());
        let c = RankCurve::new(res.iter().map(|r| r.goodput_gbps()).collect());
        assert!(c.median() > 0.7, "healthy fabric median {}", c.median());
    }

    #[test]
    fn spray_routes_around_hotspots() {
        // 30% of fabric links at 10% rate: sprayed transfers degrade
        // gracefully (bounded by the average path capacity)…
        let spray = run_hotspot_rq(&scenario(0.3), &Fabric::small(), &RqRunOptions::default());
        let spray_curve = RankCurve::new(spray.iter().map(|r| r.goodput_gbps()).collect());
        // …while per-flow ECMP pins some flows onto slow paths for their
        // whole lifetime, cratering the tail.
        let ecmp_opts = RqRunOptions {
            route: RouteMode::EcmpFlow,
            ..Default::default()
        };
        let ecmp = run_hotspot_rq(&scenario(0.3), &Fabric::small(), &ecmp_opts);
        let ecmp_curve = RankCurve::new(ecmp.iter().map(|r| r.goodput_gbps()).collect());
        let spray_worst = spray_curve.at(spray_curve.len() - 1);
        let ecmp_worst = ecmp_curve.at(ecmp_curve.len() - 1);
        assert!(
            spray_worst > ecmp_worst,
            "spraying should protect the tail: spray worst {spray_worst} vs ecmp worst {ecmp_worst}"
        );
    }

    #[test]
    fn transfers_survive_link_down_faults() {
        // Real detected link-down faults (degraded_rate_frac = 0 routes
        // through the FaultPlan's LinkDown path): the fabric reroutes
        // around the dead links and every transfer still completes.
        let sc = HotspotScenario {
            transfers: 4,
            object_bytes: 512 << 10,
            degraded_frac: 0.15,
            degraded_rate_frac: 0.0,
            seed: 3,
        };
        let res = run_hotspot_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        assert_eq!(
            res.len(),
            4,
            "all transfers must complete despite dead links"
        );
        for r in &res {
            assert!(r.goodput_gbps() > 0.0);
        }
    }
}
