//! # `workload` — scenarios, runners and metrics for the Polyraptor
//! reproduction
//!
//! Everything the paper's §3 evaluation needs around the transports:
//!
//! * [`scenario`] — seeded logical workload generation (Poisson arrivals
//!   with λ = 2560 s⁻¹, permutation traffic matrix, 20 % background
//!   sessions, replica placement outside the client's rack, synchronized
//!   Incast), shared bit-for-bit between protocol runs;
//! * [`fault`] — fabric-dynamics scenarios: the Figure-1-style storage
//!   workload with a deterministic mid-run core-switch failure,
//!   Polyraptor (reroute + coded repair) vs. the ECMP-pinned TCP
//!   baseline (timeout-driven tail inflation);
//! * [`churn`] — sustained Poisson fault churn (links, flaps, switches,
//!   **host failures**) over a fetch workload, with session re-target to
//!   surviving replicas and completion/recovery percentiles;
//! * [`hotspot`] — silent mid-fabric rate degradation, spraying vs.
//!   per-flow ECMP;
//! * [`runner`] — mapping logical sessions onto Polyraptor
//!   (multicast / multi-source) or TCP (multi-unicast / partitioned
//!   fetch) simulations and aggregating per-session goodput;
//! * [`stats`] — rank curves (Figures 1a/1b) and mean ± 95 % CI over
//!   seeded repetitions (Figure 1c's error bars);
//! * [`csv`] — plain CSV emission for the figure binaries;
//! * [`telemetry`] — opt-in run recording (fabric time-series buckets,
//!   event annotations, flow spans, flight-recorder dumps) with CSV and
//!   Perfetto-loadable Chrome-trace exporters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod csv;
pub mod fault;
pub mod hotspot;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod telemetry;

pub use churn::{run_churn_rq, run_churn_tcp, ChurnReport, ChurnScenario};
pub use fault::{run_fault_rq, run_fault_tcp, FaultRunReport, FaultScenario, RecoveryStats};
pub use hotspot::{run_hotspot_rq, HotspotScenario};
pub use runner::{
    build_rq_specs, build_tcp_conns, foreground_goodputs, install_rq, op_results, run_incast_rq,
    run_incast_tcp, run_storage_rq, run_storage_tcp, stripe, Fabric, RqRunOptions, TcpRunOptions,
    TransferResult,
};
pub use scenario::{IncastScenario, LogicalSession, Pattern, StorageScenario};
pub use stats::{mean, mean_ci95, std_dev, RankCurve};
pub use telemetry::{RunTelemetry, TelemetryOptions};
