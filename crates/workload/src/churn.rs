//! Fault-churn scenario: a replicated storage *fetch* workload under a
//! sustained Poisson fault process — links fail and repair, links flap
//! faster than the control plane converges, transit switches die, and
//! **hosts** die, taking their replicas with them.
//!
//! This is where the paper's two redundancies meet: *path* redundancy
//! (spraying + reroute + restore repair) absorbs the fabric events, and
//! *data* redundancy (fountain-coded replicas) absorbs the host events —
//! a client whose replica dies re-targets a surviving replica and
//! re-pulls only the symbols its decode still needs, reusing everything
//! already received. RepFlow-style replication and FatPaths layered
//! routing claim exactly this ground; the churn report measures it:
//! completion percentiles, per-fault recovery percentiles, stranded /
//! re-targeted session counts, and the fabric's coalescing counters.
//!
//! The whole run is seeded end to end (arrivals, placement, fault
//! process, spraying), so a churn soak is byte-identical per seed like
//! every other experiment in this repo.

use netsim::{
    FabricStats, FaultMix, FaultPlan, FaultProcess, Pcg32, SimConfig, SimTime, Simulator, Topology,
};
use polyraptor::{host_fail_token, host_up_token, PolyraptorAgent};
use tcpsim::{conn_start_token, TcpAgent};

use crate::fault::{RecoveryStats, REROUTE_DELAY_NS};
use crate::runner::{
    build_rq_specs, build_tcp_conns, collect_rq_results, collect_tcp_results, install_rq,
    op_results, Fabric, RqRunOptions, TcpRunOptions, TransferResult,
};
use crate::scenario::{LogicalSession, Pattern, StorageScenario, PAPER_LAMBDA_PER_HOST};
use crate::telemetry::{gather_rq_spans, take_run_telemetry, RunTelemetry};

/// Parameters of a churn soak: the storage fetch workload plus the
/// Poisson fault process sustained over it.
#[derive(Debug, Clone, Copy)]
pub struct ChurnScenario {
    /// Fetch sessions (all foreground; a dead client must always be a
    /// scripted, repairable event — background unicast writes would turn
    /// a host death into an unfinishable transfer).
    pub sessions: usize,
    /// Object size per session in bytes.
    pub object_bytes: usize,
    /// Replicas per session (3 = the paper's replication factor; host
    /// failures need >= 2 for a survivor to re-target).
    pub replicas: usize,
    /// Fault events drawn from the Poisson process.
    pub fault_events: usize,
    /// Fault events per second of simulated time.
    pub fault_rate_per_sec: f64,
    /// Every non-flap failure repairs this long after it strikes. Kept
    /// mandatory: a permanently dead client could never finish its
    /// fetch, and the soak's contract is that *everything* completes.
    pub repair_delay_ns: u64,
    /// Event class weights (see [`FaultMix`]).
    pub mix: FaultMix,
    /// Shared-risk-aware replica placement (compare both settings under
    /// the same seed to see correlated-failure exposure move).
    pub shared_risk_placement: bool,
    /// Master seed (placement, arrivals, fault process, fabric).
    pub seed: u64,
}

impl ChurnScenario {
    /// The ISSUE's reference configuration: a 10-event uniform-mix
    /// Poisson run over 3-replica fetches, faults repairing after 40 ms.
    pub fn ten_event(sessions: usize, object_bytes: usize, seed: u64) -> Self {
        Self {
            sessions,
            object_bytes,
            replicas: 3,
            fault_events: 10,
            fault_rate_per_sec: 400.0,
            repair_delay_ns: 40_000_000,
            mix: FaultMix::uniform(),
            shared_risk_placement: false,
            seed,
        }
    }

    /// The underlying storage workload (fetch pattern, no background).
    fn storage(&self) -> StorageScenario {
        StorageScenario {
            sessions: self.sessions,
            object_bytes: self.object_bytes,
            replicas: self.replicas,
            lambda_per_host: PAPER_LAMBDA_PER_HOST,
            background_frac: 0.0,
            pattern: Pattern::Read,
            seed: self.seed,
            normalize_load: true,
            shared_risk_placement: self.shared_risk_placement,
        }
    }

    /// The logical fetch sessions this scenario generates on a fabric —
    /// exactly what the run uses (tests introspect placement and feed
    /// [`ChurnScenario::plan`]).
    pub fn storage_sessions(&self, topo: &Topology) -> Vec<LogicalSession> {
        self.storage().generate(topo)
    }

    /// The compiled fault plan over a given fabric: the Poisson process
    /// starts at the first session arrival (faults before any traffic
    /// would test nothing) with a flap delay safely inside the 25 ms
    /// control-plane convergence window.
    pub fn plan(&self, topo: &Topology, sessions: &[LogicalSession]) -> FaultPlan {
        let first = sessions
            .iter()
            .map(|s| s.start)
            .min()
            .expect("scenario has sessions");
        FaultProcess::poisson(
            self.fault_rate_per_sec,
            self.mix,
            Some(self.repair_delay_ns),
        )
        .flap_delay(REROUTE_DELAY_NS / 5)
        .seed(self.seed ^ 0xC4_0A_11)
        .compile(topo, first, self.fault_events)
    }
}

/// Everything a churn run reports.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Per-session transfer results (one per fetch client).
    pub flows: Vec<TransferResult>,
    /// Fabric counters — `flaps_coalesced`, `restores_incremental`,
    /// `reroutes`, `lost_to_fault`, …
    pub fabric: FabricStats,
    /// Down-events of the executed plan (failure instants, all classes).
    pub fault_instants: Vec<SimTime>,
    /// Host failures the plan scripted.
    pub host_failures: usize,
    /// (session, dead sender) strandings observed across all clients.
    pub stranded_sessions: u64,
    /// Strandings re-targeted at a surviving replica.
    pub retargeted_sessions: u64,
    /// Strandings undone by a host-revival notification: the revived
    /// sender was re-admitted to a still-open session (no credit is
    /// minted across the strand/revive boundary).
    pub unstranded_sessions: u64,
    /// Symbols re-pulled from survivors on re-target, summed over all
    /// sessions (each bounded by its decode's remaining need).
    pub retarget_symbols: u64,
    /// Sender retransmission timeouts (structurally 0 for Polyraptor —
    /// recovery is pull-paced, never timer-paced; kept explicit so the
    /// soak can assert it).
    pub timeouts: u64,
    /// Recorded telemetry, when the run options enabled it.
    pub telemetry: Option<RunTelemetry>,
}

impl ChurnReport {
    /// Completion-time percentiles over every fetch.
    pub fn completion(&self) -> RecoveryStats {
        RecoveryStats::from_latencies(
            self.flows
                .iter()
                .map(|f| f.finish.as_nanos() - f.start.as_nanos())
                .collect(),
        )
        .expect("churn run has flows")
    }

    /// Recovery percentiles: for every fault instant and every fetch in
    /// flight at it, the time from the fault to that fetch's completion.
    /// `None` when no fetch ever spanned a fault.
    pub fn recovery(&self) -> Option<RecoveryStats> {
        let mut lat = Vec::new();
        for &at in &self.fault_instants {
            for f in &self.flows {
                if f.start < at && f.finish > at {
                    lat.push(f.finish.as_nanos() - at.as_nanos());
                }
            }
        }
        RecoveryStats::from_latencies(lat)
    }
}

/// Run the churn scenario under Polyraptor. Every fetch must complete —
/// sustained churn with repair is survivable by construction (path
/// redundancy for the fabric, data redundancy for the replicas) — or
/// the collector panics.
pub fn run_churn_rq(sc: &ChurnScenario, fabric: &Fabric, opts: &RqRunOptions) -> ChurnReport {
    assert!(sc.replicas >= 2, "churn needs a survivor to re-target");
    let topo = fabric.build_with_policy(opts.policy);
    let sessions = sc.storage().generate(&topo);
    let plan = sc.plan(&topo, &sessions);
    let mut sim_cfg = SimConfig::ndp(sc.seed ^ 0xC0_17);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.shards = opts.shards;
    sim_cfg.layer_assign = opts.layer_assign;
    sim_cfg.reroute_delay_ns = REROUTE_DELAY_NS;
    let mut pr = opts.pr;
    pr.record_spans |= opts.telemetry.enabled;
    let mut sim: Simulator<_, PolyraptorAgent, _> =
        Simulator::with_telemetry(topo, sim_cfg, opts.telemetry.recorder());
    let hosts = sim.topology().hosts().to_vec();
    let mut seed_rng = Pcg32::new(sc.seed ^ 0xA6E27);
    for &h in &hosts {
        let s = seed_rng.next_u64();
        sim.set_agent(h, PolyraptorAgent::new(h, pr, s));
    }
    let specs = build_rq_specs(&mut sim, &sessions, Pattern::Read);
    for spec in &specs {
        install_rq(&mut sim, spec);
    }
    sim.schedule_faults(&plan);

    // Control-plane host-failure notifications: every client fetching
    // from a host the plan kills learns of the death one convergence
    // window after it strikes (or after its own session starts, for
    // fetches that begin mid-outage) — the same lag the fabric's reroute
    // pays. Failures already repaired by then were transient; the
    // keep-alive sweep alone covers those.
    let host_failures = plan.host_failures(sim.topology());
    for f in &host_failures {
        for ls in &sessions {
            if !ls.replicas.contains(&f.host) {
                continue;
            }
            let notify = f.at.max(ls.start) + REROUTE_DELAY_NS;
            if f.repaired_at.is_some_and(|up| up <= notify) {
                continue;
            }
            sim.schedule_timer(ls.client, notify, host_fail_token(f.host));
            // The matching revival notification, one convergence window
            // after the scripted repair: the client re-admits the
            // revived replica to its still-open sessions and the
            // keep-alive sweep's probing takes it from there.
            if let Some(up) = f.repaired_at {
                let renotify = up.max(ls.start) + REROUTE_DELAY_NS;
                sim.schedule_timer(ls.client, renotify, host_up_token(f.host));
            }
        }
    }

    sim.run_to_completion();
    let flows = collect_rq_results(&sim, &sessions, Pattern::Read);
    let (mut stranded, mut retargeted, mut retarget_symbols) = (0u64, 0u64, 0u64);
    let mut unstranded = 0u64;
    for (_, agent) in sim.agents() {
        stranded += agent.stranded_sessions;
        retargeted += agent.retargeted_sessions;
        unstranded += agent.unstranded_sessions;
        retarget_symbols += agent
            .records
            .iter()
            .map(|r| r.retarget_symbols)
            .sum::<u64>();
    }
    if stranded > 0 {
        // A stranding is survivable (that's the re-target claim) but
        // still anomalous fabric-level history worth a flight dump.
        sim.note_anomaly(netsim::AnomalyKind::StrandedSession);
    }
    let spans = gather_rq_spans(&sim);
    let telemetry = take_run_telemetry(&mut sim, spans);
    let fault_instants = plan.down_instants();
    ChurnReport {
        flows,
        fabric: sim.stats(),
        fault_instants,
        host_failures: host_failures.len(),
        stranded_sessions: stranded,
        retargeted_sessions: retargeted,
        unstranded_sessions: unstranded,
        retarget_symbols,
        timeouts: 0,
        telemetry,
    }
}

/// Run the identical churn scenario under the TCP baseline: one
/// ECMP-pinned connection per replica stripe, the same seeded Poisson
/// fault plan, the same convergence window. TCP has no session
/// re-target — a dead replica's stripe simply stalls until the scripted
/// repair revives the host and the retransmission machinery grinds
/// through — so the report's `stranded_sessions`/`retargeted_sessions`
/// are structurally 0 and `timeouts` carries the RTO count that
/// explains the tail the comparison figure shows. Per-stripe flows are
/// collapsed to op level (a fetch completes when its *last* stripe
/// does), so `flows` is one result per session exactly like the
/// Polyraptor report's.
pub fn run_churn_tcp(sc: &ChurnScenario, fabric: &Fabric, opts: &TcpRunOptions) -> ChurnReport {
    assert!(sc.replicas >= 2, "churn needs a survivor to re-target");
    let topo = fabric.build_with_policy(opts.policy);
    let sessions = sc.storage().generate(&topo);
    let plan = sc.plan(&topo, &sessions);
    let mut sim_cfg = SimConfig::classic(sc.seed ^ 0xC0_17);
    sim_cfg.switch_queue = opts.switch_queue;
    sim_cfg.route = opts.route;
    sim_cfg.parallelism = opts.parallelism;
    sim_cfg.shards = opts.shards;
    sim_cfg.reroute_delay_ns = REROUTE_DELAY_NS;
    let mut sim: Simulator<_, TcpAgent, _> =
        Simulator::with_telemetry(topo, sim_cfg, opts.telemetry.recorder());
    let hosts = sim.topology().hosts().to_vec();
    for &h in &hosts {
        sim.set_agent(h, TcpAgent::new(h, opts.tcp));
    }
    let conns = build_tcp_conns(&sessions, Pattern::Read);
    for c in &conns {
        sim.agent_mut(c.sender).install(c.clone());
        sim.agent_mut(c.receiver).install(c.clone());
        sim.schedule_timer(c.sender, c.start, conn_start_token(c.id));
    }
    sim.schedule_faults(&plan);
    sim.run_to_completion();
    let timeouts: u64 = conns
        .iter()
        .map(|c| sim.agent(c.sender).sender(c.id).map_or(0, |s| s.timeouts))
        .sum();
    if timeouts > 0 {
        sim.note_anomaly(netsim::AnomalyKind::Timeout);
    }
    let flows = op_results(&collect_tcp_results(&sim, &sessions), sc.object_bytes);
    let telemetry = take_run_telemetry(&mut sim, Vec::new());
    let fault_instants = plan.down_instants();
    ChurnReport {
        host_failures: plan.host_failures(sim.topology()).len(),
        flows,
        fabric: sim.stats(),
        fault_instants,
        stranded_sessions: 0,
        retargeted_sessions: 0,
        unstranded_sessions: 0,
        retarget_symbols: 0,
        timeouts,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChurnScenario {
        ChurnScenario::ten_event(6, 128 << 10, 3)
    }

    #[test]
    fn churn_run_completes_every_fetch() {
        let rep = run_churn_rq(&small(), &Fabric::small(), &RqRunOptions::default());
        // The collector asserts per-endpoint completion; check shape.
        assert_eq!(rep.flows.len(), 6, "one fetch record per session");
        assert!(rep.fabric.reroutes >= 1, "churn must reroute");
        assert_eq!(rep.timeouts, 0);
        let c = rep.completion();
        assert!(c.p50_ns <= c.p99_ns && c.p99_ns <= c.max_ns);
    }

    #[test]
    fn churn_tcp_baseline_completes_and_is_deterministic() {
        let sc = small();
        let a = run_churn_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
        assert_eq!(a.flows.len(), 6, "stripes collapse to one op per session");
        assert_eq!(a.stranded_sessions + a.retargeted_sessions, 0);
        assert!(a.fabric.reroutes >= 1, "churn must reroute");
        let b = run_churn_tcp(&sc, &Fabric::small(), &TcpRunOptions::default());
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.timeouts, b.timeouts);
        // Same seeded plan as the Polyraptor run: the comparison is on
        // identical fault schedules.
        let rq = run_churn_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        assert_eq!(a.fault_instants, rq.fault_instants);
        assert_eq!(a.host_failures, rq.host_failures);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let a = run_churn_rq(&small(), &Fabric::small(), &RqRunOptions::default());
        let b = run_churn_rq(&small(), &Fabric::small(), &RqRunOptions::default());
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.stranded_sessions, b.stranded_sessions);
        let fp = |r: &ChurnReport| -> Vec<(u32, u64, u64)> {
            r.flows
                .iter()
                .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos()))
                .collect()
        };
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn churn_telemetry_records_without_perturbing() {
        use crate::telemetry::TelemetryOptions;
        use netsim::SpanMark;
        let sc = small();
        let base = run_churn_rq(&sc, &Fabric::small(), &RqRunOptions::default());
        assert!(base.telemetry.is_none(), "off by default");
        let opts = RqRunOptions {
            telemetry: TelemetryOptions::enabled_default(),
            ..Default::default()
        };
        let rec = run_churn_rq(&sc, &Fabric::small(), &opts);
        // Recording must not perturb the run: identical fabric counters
        // and identical per-flow results.
        assert_eq!(base.fabric, rec.fabric);
        let fp = |r: &ChurnReport| -> Vec<(u32, u64, u64)> {
            r.flows
                .iter()
                .map(|f| (f.session, f.start.as_nanos(), f.finish.as_nanos()))
                .collect()
        };
        assert_eq!(fp(&base), fp(&rec));
        let t = rec.telemetry.expect("enabled run records");
        assert!(!t.recorder.buckets().is_empty(), "buckets sampled");
        let cats: Vec<&str> = t
            .recorder
            .annotations()
            .iter()
            .map(|a| a.event.category())
            .collect();
        assert!(cats.contains(&"fault"), "churn annotates faults");
        assert!(cats.contains(&"reroute"), "churn annotates reroutes");
        // Every fetch session opened and closed a span at its client.
        let opens = t.spans.iter().filter(|s| s.mark == SpanMark::Open).count();
        let closes = t.spans.iter().filter(|s| s.mark == SpanMark::Close).count();
        assert_eq!(opens, sc.sessions);
        assert_eq!(closes, sc.sessions);
        // Exporters produce non-trivial artefacts.
        assert!(t.fabric_series_csv().lines().count() > 1);
        assert!(t.trace_json().contains("\"cat\":\"reroute\""));
    }

    #[test]
    fn shared_risk_placement_spreads_replicas_on_fat_tree() {
        let topo = Fabric::small().build();
        let mut sc = small();
        sc.shared_risk_placement = true;
        // k=4 fat-tree has 4 pods of 4 hosts: 3 replicas can always be
        // spread across distinct pods.
        let sessions = sc.storage().generate(&topo);
        for s in &sessions {
            for (i, &a) in s.replicas.iter().enumerate() {
                for &b in &s.replicas[..i] {
                    assert!(
                        !topo.shared_risk(a, b),
                        "replicas {} and {} share a risk group",
                        a.0,
                        b.0
                    );
                }
            }
        }
        // The default placement does collide somewhere (that's the
        // comparison the flag exists for).
        let default_sessions = small().storage().generate(&topo);
        let mut collisions = 0;
        for s in &default_sessions {
            for (i, &a) in s.replicas.iter().enumerate() {
                for &b in &s.replicas[..i] {
                    collisions += usize::from(topo.shared_risk(a, b));
                }
            }
        }
        assert!(collisions > 0, "default placement ignores shared risk");
    }
}
