//! Statistics for the experiment harness: rank curves, means,
//! small-sample 95% confidence intervals (the paper's error bars are the
//! 95% CI over 5 seeded repetitions).

use polyraptor::metrics::percentile_sorted;

/// A goodput rank curve: values sorted descending, exactly the y-series
/// of Figures 1a/1b ("Rank of transport session" on x).
#[derive(Debug, Clone)]
pub struct RankCurve {
    values: Vec<f64>,
}

impl RankCurve {
    /// Build from unsorted per-session values.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| b.partial_cmp(a).expect("no NaN goodputs"));
        Self { values }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at a rank (0 = best session).
    pub fn at(&self, rank: usize) -> f64 {
        self.values[rank]
    }

    /// The sorted series.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Median value.
    pub fn median(&self) -> f64 {
        percentile_sorted(&self.values, 50.0)
    }

    /// p-th percentile (0 = best, 100 = worst session — the values are
    /// sorted descending, and the shared nearest-rank helper is
    /// order-agnostic).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.values, p)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        mean(&self.values)
    }

    /// Downsample to `n` evenly spaced (rank, value) points for plotting.
    pub fn sampled(&self, n: usize) -> Vec<(usize, f64)> {
        assert!(n >= 2, "need at least endpoints");
        if self.values.is_empty() {
            return Vec::new();
        }
        let last = self.values.len() - 1;
        (0..n)
            .map(|i| {
                let rank = i * last / (n - 1);
                (rank, self.values[rank])
            })
            .collect()
    }
}

/// Arithmetic mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty series");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator).
pub fn std_dev(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "std dev needs >= 2 samples");
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Two-sided 95% Student-t critical values for n−1 degrees of freedom
/// (n = sample count, 2..=30), then the normal approximation.
fn t95(n: usize) -> f64 {
    const TABLE: [f64; 29] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045,
    ];
    assert!(n >= 2, "CI needs >= 2 samples");
    if n - 2 < TABLE.len() {
        TABLE[n - 2]
    } else {
        1.96
    }
}

/// Mean and 95% confidence half-width over repetitions — the error bars
/// of Figure 1c (5 seeds ⇒ t = 2.776).
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let half = t95(xs.len()) * std_dev(xs) / (xs.len() as f64).sqrt();
    (m, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_curve_sorted_descending() {
        let c = RankCurve::new(vec![0.1, 0.9, 0.5]);
        assert_eq!(c.values(), &[0.9, 0.5, 0.1]);
        assert_eq!(c.at(0), 0.9);
        assert_eq!(c.median(), 0.5);
    }

    #[test]
    fn sampled_endpoints() {
        let c = RankCurve::new((0..100).map(|i| i as f64).collect());
        let s = c.sampled(5);
        assert_eq!(s.first().unwrap().0, 0);
        assert_eq!(s.last().unwrap().0, 99);
        assert_eq!(s.len(), 5);
        // Descending values.
        assert!(s.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ci_five_repetitions_uses_t_2776() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (m, half) = mean_ci95(&xs);
        assert!((m - 3.0).abs() < 1e-12);
        let sd = std_dev(&xs);
        assert!((half - 2.776 * sd / 5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        let c = RankCurve::new((1..=101).map(|i| i as f64).collect());
        assert_eq!(c.percentile(0.0), 101.0);
        assert_eq!(c.percentile(100.0), 1.0);
        assert_eq!(c.percentile(50.0), 51.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mean_panics() {
        mean(&[]);
    }
}
