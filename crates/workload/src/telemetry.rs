//! Telemetry surface for the experiment runners: opt-in recording
//! knobs, the combined run artefact (fabric recorder + transport flow
//! spans), and the exporters — per-port / fabric-wide CSV time series
//! and a Chrome-trace ("Trace Event Format") JSON that loads in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! Recording is off by default ([`TelemetryOptions::default`]); the
//! fault and churn runners honour the options and attach a
//! [`RunTelemetry`] to their reports when enabled. Enabling telemetry
//! never perturbs a run: the recorder consumes no randomness and pushes
//! no events into the simulator's heap (see `netsim::telemetry`), and
//! flow spans are plain appends on session-rare agent paths — the
//! byte-identity property is tested in `tests/telemetry.rs`.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use netsim::{
    Agent, FlowSpanEvent, Recorder, SimPayload, Simulator, SpanMark, TelemetryConfig, TraceBuilder,
};
use polyraptor::{PolyraptorAgent, PrPayload};

/// Trace-track process id for the fabric-wide timeline; hosts get
/// `node + 1` so node 0 never collides with the fabric track.
const FABRIC_PID: u32 = 0;

/// Opt-in telemetry knobs for a run, carried by
/// [`crate::RqRunOptions`] / [`crate::TcpRunOptions`]. Honoured by the
/// fault and churn runners (which have a report to attach the data to);
/// the plain storage/incast runners ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Record this run (default `false`: the runner installs the
    /// `None` sink, whose only cost is one always-false time comparison
    /// per event).
    pub enabled: bool,
    /// Sampling bucket width in nanoseconds.
    pub window_ns: u64,
    /// Flight-recorder ring capacity in annotations.
    pub ring_capacity: usize,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        let cfg = TelemetryConfig::default();
        Self {
            enabled: false,
            window_ns: cfg.window_ns,
            ring_capacity: cfg.ring_capacity,
        }
    }
}

impl TelemetryOptions {
    /// Recording on, at the default window and ring capacity.
    pub fn enabled_default() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// The sink to install on the simulator: `Some(recorder)` when
    /// enabled, `None` otherwise.
    pub fn recorder(&self) -> Option<Recorder> {
        self.enabled.then(|| {
            Recorder::new(TelemetryConfig {
                window_ns: self.window_ns,
                ring_capacity: self.ring_capacity,
            })
        })
    }
}

/// Everything one recorded run produced: the fabric recorder (buckets,
/// annotations, flight-recorder dumps) plus the transport agents' flow
/// spans, with the exporters that turn them into files.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// The fabric-side recorder, finished (final bucket closed).
    pub recorder: Recorder,
    /// Flow/session span marks collected from every agent, sorted by
    /// time (ties keep the deterministic node order).
    pub spans: Vec<FlowSpanEvent>,
}

impl RunTelemetry {
    /// Fabric-wide time series, one row per bucket: delivery, trim,
    /// drop, and fault-loss rates plus total sampled queue depth.
    pub fn fabric_series_csv(&self) -> String {
        let rows = self.recorder.buckets().iter().map(|b| {
            let secs = b.width_ns() as f64 / 1e9;
            vec![
                b.end.as_nanos() as f64 / 1e6,
                b.delivered as f64 / secs,
                b.trimmed as f64 / secs,
                b.dropped as f64 / secs,
                b.lost_to_fault as f64 / secs,
                b.total_depth() as f64,
            ]
        });
        crate::csv::to_csv(
            &[
                "t_ms",
                "delivered_per_s",
                "trims_per_s",
                "drops_per_s",
                "lost_per_s",
                "queue_depth_pkts",
            ],
            rows,
        )
    }

    /// Per-port time series, one row per (bucket, active switch port):
    /// queue depth at the bucket's closing edge plus enqueue/trim/drop
    /// rates and transmit goodput over the bucket. Sparse — idle ports
    /// emit nothing.
    pub fn port_series_csv(&self) -> String {
        let rows = self.recorder.buckets().iter().flat_map(|b| {
            let t_ms = b.end.as_nanos() as f64 / 1e6;
            let secs = b.width_ns() as f64 / 1e9;
            b.ports.iter().map(move |p| {
                vec![
                    t_ms,
                    f64::from(p.node),
                    f64::from(p.port),
                    f64::from(p.depth),
                    p.enqueued as f64 / secs,
                    p.trimmed as f64 / secs,
                    p.dropped as f64 / secs,
                    p.tx_bytes as f64 * 8.0 / secs / 1e9,
                ]
            })
        });
        crate::csv::to_csv(
            &[
                "t_ms",
                "node",
                "port",
                "depth_pkts",
                "enq_per_s",
                "trims_per_s",
                "drops_per_s",
                "tx_gbps",
            ],
            rows,
        )
    }

    /// The Chrome-trace JSON document: fabric annotations as instants,
    /// per-bucket rates and queue depth as counter tracks, and one
    /// track per (receiver, session) with the session's open→close span
    /// and its recovery marks.
    pub fn trace_json(&self) -> String {
        let mut tb = TraceBuilder::new();
        tb.process_name(FABRIC_PID, "fabric");
        tb.thread_name(FABRIC_PID, 0, "fabric events");
        for a in self.recorder.annotations() {
            tb.instant(
                &a.event.label(),
                a.event.category(),
                FABRIC_PID,
                0,
                a.at.as_nanos(),
            );
        }
        for b in self.recorder.buckets() {
            let secs = b.width_ns() as f64 / 1e9;
            tb.counter(
                "fabric rates",
                FABRIC_PID,
                b.end.as_nanos(),
                &[
                    ("delivered_per_s", b.delivered as f64 / secs),
                    ("trims_per_s", b.trimmed as f64 / secs),
                    ("drops_per_s", b.dropped as f64 / secs),
                    ("lost_per_s", b.lost_to_fault as f64 / secs),
                ],
            );
            tb.counter(
                "queue depth",
                FABRIC_PID,
                b.end.as_nanos(),
                &[("pkts", b.total_depth() as f64)],
            );
        }
        // Group spans into per-(receiver, session) tracks. BTreeMap
        // keeps the emission order deterministic.
        let mut tracks: BTreeMap<(u32, u64), Vec<&FlowSpanEvent>> = BTreeMap::new();
        for s in &self.spans {
            tracks.entry((s.node, s.session)).or_default().push(s);
        }
        let mut named_hosts = std::collections::BTreeSet::new();
        for ((node, session), marks) in &tracks {
            let pid = node + 1;
            if named_hosts.insert(*node) {
                tb.process_name(pid, &format!("host {node}"));
            }
            let tid = *session as u32;
            tb.thread_name(pid, tid, &format!("session {session}"));
            let open = marks.iter().find(|m| m.mark == SpanMark::Open);
            let close = marks.iter().rev().find(|m| m.mark == SpanMark::Close);
            if let (Some(o), Some(c)) = (open, close) {
                tb.complete(
                    &format!("session {session}"),
                    "span",
                    pid,
                    tid,
                    o.at.as_nanos(),
                    c.at.since(o.at),
                );
            }
            for m in marks {
                if matches!(m.mark, SpanMark::Open | SpanMark::Close) {
                    continue;
                }
                tb.instant(&mark_label(m), "span", pid, tid, m.at.as_nanos());
            }
        }
        tb.build()
    }

    /// Write the three artefacts — `<prefix>_fabric.csv`,
    /// `<prefix>_ports.csv`, `<prefix>_trace.json` — into `dir`
    /// (created if missing). Returns the written paths.
    pub fn write_files(&self, dir: &Path, prefix: &str) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let fabric = dir.join(format!("{prefix}_fabric.csv"));
        std::fs::write(&fabric, self.fabric_series_csv())?;
        let ports = dir.join(format!("{prefix}_ports.csv"));
        std::fs::write(&ports, self.port_series_csv())?;
        let trace = dir.join(format!("{prefix}_trace.json"));
        std::fs::write(&trace, self.trace_json())?;
        Ok(vec![fabric, ports, trace])
    }

    /// One-line shape summary for run banners.
    pub fn describe(&self) -> String {
        format!(
            "{} buckets, {} annotations, {} spans, {} flight dumps",
            self.recorder.buckets().len(),
            self.recorder.annotations().len(),
            self.spans.len(),
            self.recorder.dumps().len(),
        )
    }
}

/// Instant-marker name for a span mark (with the peer when one exists).
fn mark_label(m: &FlowSpanEvent) -> String {
    let verb = match m.mark {
        SpanMark::Open => "open",
        SpanMark::Close => "close",
        SpanMark::PullRound => "pull round",
        SpanMark::Repull => "re-pull",
        SpanMark::Retarget => "re-target",
        SpanMark::Stranded => "stranded",
        SpanMark::Unstranded => "revived",
    };
    if m.peer == FlowSpanEvent::NO_PEER {
        verb.to_string()
    } else {
        format!("{verb} h{}", m.peer)
    }
}

/// Close the final bucket and take the recorder (plus caller-gathered
/// spans) out of a finished simulator. `None` when telemetry was off.
pub fn take_run_telemetry<P: SimPayload, A: Agent<P>>(
    sim: &mut Simulator<P, A, Option<Recorder>>,
    spans: Vec<FlowSpanEvent>,
) -> Option<RunTelemetry> {
    sim.finish_telemetry();
    let recorder = sim.telemetry_mut().take()?;
    Some(RunTelemetry { recorder, spans })
}

/// Gather every Polyraptor agent's flow spans, time-sorted (stable, so
/// ties keep the agents' deterministic node order).
pub fn gather_rq_spans(
    sim: &Simulator<PrPayload, PolyraptorAgent, Option<Recorder>>,
) -> Vec<FlowSpanEvent> {
    let mut spans: Vec<FlowSpanEvent> = sim
        .agents()
        .flat_map(|(_, a)| a.spans.iter().copied())
        .collect();
    spans.sort_by_key(|s| s.at.as_nanos());
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{AnomalyKind, FabricEvent, FabricStats, SimTime, TelemetrySink};

    fn sample_run() -> RunTelemetry {
        let mut r = Recorder::new(TelemetryConfig {
            window_ns: 1_000_000,
            ring_capacity: 8,
        });
        TelemetrySink::record(
            &mut r,
            SimTime::from_nanos(500),
            FabricEvent::NodeDown { node: 20 },
        );
        let stats = FabricStats {
            delivered: 100,
            trimmed: 4,
            ..Default::default()
        };
        TelemetrySink::close_bucket(&mut r, &stats, &[]);
        TelemetrySink::record(
            &mut r,
            SimTime::from_nanos(1_200_000),
            FabricEvent::Anomaly(AnomalyKind::Timeout),
        );
        TelemetrySink::finish(&mut r, SimTime::from_nanos(1_500_000), &stats, &[]);
        let at = SimTime::from_nanos;
        let spans = vec![
            FlowSpanEvent {
                at: at(100),
                session: 3,
                node: 1,
                peer: FlowSpanEvent::NO_PEER,
                mark: SpanMark::Open,
            },
            FlowSpanEvent {
                at: at(600_000),
                session: 3,
                node: 1,
                peer: 5,
                mark: SpanMark::Retarget,
            },
            FlowSpanEvent {
                at: at(1_400_000),
                session: 3,
                node: 1,
                peer: FlowSpanEvent::NO_PEER,
                mark: SpanMark::Close,
            },
        ];
        RunTelemetry { recorder: r, spans }
    }

    #[test]
    fn disabled_options_produce_no_recorder() {
        assert!(TelemetryOptions::default().recorder().is_none());
        assert!(TelemetryOptions::enabled_default().recorder().is_some());
    }

    #[test]
    fn fabric_csv_has_rates_per_bucket() {
        let t = sample_run();
        let csv = t.fabric_series_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0].split(',').count(), 6);
        // One data row per bucket (1 closed + 1 final).
        assert_eq!(lines.len(), 1 + t.recorder.buckets().len());
        // First bucket: 100 delivered over 1 ms → 100_000 per second.
        assert!(lines[1].starts_with("1.000000,100000.000000"));
    }

    #[test]
    fn trace_json_contains_annotations_spans_and_counters() {
        let t = sample_run();
        let json = t.trace_json();
        assert!(json.contains("\"cat\":\"fault\""), "fault annotation");
        assert!(json.contains("\"cat\":\"anomaly\""), "anomaly annotation");
        assert!(json.contains("\"ph\":\"C\""), "counter samples");
        // The open→close pair becomes one complete span on the host
        // track, and the retarget mark an instant naming the peer.
        assert!(json.contains("\"ph\":\"X\",\"name\":\"session 3\""));
        assert!(json.contains("re-target h5"));
        assert!(json.contains("host 1"));
    }

    #[test]
    fn describe_counts_everything() {
        let t = sample_run();
        let d = t.describe();
        assert!(d.contains("2 buckets"), "{d}");
        assert!(d.contains("2 annotations"), "{d}");
        assert!(d.contains("3 spans"), "{d}");
        assert!(d.contains("1 flight dumps"), "{d}");
    }
}
