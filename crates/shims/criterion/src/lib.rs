//! Offline shim for the [`criterion`](https://docs.rs/criterion) bench
//! harness.
//!
//! The build container has no registry access, so this crate implements
//! the subset of criterion's API that the workspace benches use, with
//! the same names and shapes: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher`] (`iter` / `iter_batched`), [`Throughput`], [`BatchSize`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Swapping
//! in the real crate is a `Cargo.toml`-only change.
//!
//! Measurement model: each benchmark is warmed up for a short fixed
//! wall-clock budget, then timed over a fixed measurement budget, and
//! the mean ns/iter (plus derived throughput, when declared) is printed
//! in a `cargo bench`-style line. `sample_size` scales the measurement
//! budget so "heavier" groups get proportionally more time, mirroring
//! how the benches already tune it.

use std::time::{Duration, Instant};

/// How an `iter_batched` routine's per-batch setup cost is amortised.
///
/// The shim times the routine per element regardless of variant; the
/// variants exist so call sites match the real API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch size chosen so setup cost is negligible.
    SmallInput,
    /// Large input: one setup per routine invocation.
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// Declared work per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many abstract elements.
    Elements(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` with fresh per-iteration input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// A named group of related benchmarks sharing throughput/size config.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (scales this group's time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so results also print as throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let budget = self.criterion.measurement_time / 10 * self.sample_size.min(50) as u32;
        let throughput = self.throughput;
        self.criterion.run_one(&full, budget, throughput, f);
        self
    }

    /// End the group (kept for API parity; no summary state to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(30),
            measurement_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse `cargo bench`-style CLI args (`--bench`, an optional name
    /// filter, `--quick`); unknown flags are ignored so harness
    /// plumbing never breaks a run.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--noplot" => {}
                "--quick" => self.measurement_time = Duration::from_millis(30),
                "--warm-up-time" | "--measurement-time" | "--sample-size" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                flag if flag.starts_with('-') => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Start a named [`BenchmarkGroup`].
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let budget = self.measurement_time;
        self.run_one(&id.into(), budget, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        budget: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up with single iterations to estimate per-iter cost.
        let mut probe_iters: u64 = 0;
        let warm_start = Instant::now();
        let mut probe = Bencher::new(1);
        while warm_start.elapsed() < self.warm_up_time || probe_iters == 0 {
            f(&mut probe);
            probe_iters += 1;
        }
        let per_iter = probe.elapsed / probe_iters as u32;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut bencher = Bencher::new(iters);
        f(&mut bencher);
        let ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
        match throughput {
            Some(Throughput::Bytes(b)) => {
                let gbps = (b as f64 * 8.0) / ns.max(f64::MIN_POSITIVE);
                println!("bench: {name:<50} {ns:>14.1} ns/iter {gbps:>10.3} Gbit/s");
            }
            Some(Throughput::Elements(e)) => {
                let meps = (e as f64 * 1e3) / ns.max(f64::MIN_POSITIVE);
                println!("bench: {name:<50} {ns:>14.1} ns/iter {meps:>10.3} Melem/s");
            }
            None => println!("bench: {name:<50} {ns:>14.1} ns/iter"),
        }
    }

    /// Finalise a run (API parity with the real crate's summary step).
    pub fn final_summary(&mut self) {}
}

/// Declare a bench group: `criterion_group!(name, target, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declare the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
