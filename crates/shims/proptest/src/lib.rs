//! Offline shim for the [`proptest`](https://docs.rs/proptest)
//! property-testing framework.
//!
//! The build container has no registry access, so this crate implements
//! the subset of proptest's API that the workspace tests use, with the
//! same names and shapes: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), [`prelude`] (`any`, `ProptestConfig`,
//! `prop_assert!`, `prop_assert_eq!`), integer-range and
//! [`collection::vec`] strategies. Swapping in the real crate is a
//! `Cargo.toml`-only change.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the case index; the
//!   generator is fully deterministic (seed = hash of test name × case
//!   index), so every failure reproduces exactly under `cargo test`.
//! * Strategies are plain value generators (`Strategy::generate`), not
//!   lazy trees.

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case RNG (splitmix64 over a name-derived seed).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name keeps seeds distinct across properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range strategy");
        // Multiply-shift bounded sampling; bias is negligible for test
        // generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A source of generated values (eager, non-shrinking).
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (the real proptest's `prop_map`;
        /// no shrinking here, so it is a plain eager map).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Mapped strategy (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+ ; $($idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B; 0, 1);
    impl_tuple_strategy!(A, B, C; 0, 1, 2);
    impl_tuple_strategy!(A, B, C, D; 0, 1, 2, 3);
    impl_tuple_strategy!(A, B, C, D, E; 0, 1, 2, 3, 4);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + if span == u64::MAX as $t as u64 {
                        rng.next_u64() as $t
                    } else {
                        rng.next_below(span + 1) as $t
                    }
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy always yielding a clone of one fixed value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct OneOf<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.next_below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Strategy yielding any value of `T` (see [`any`]).
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Error a property body may return early with (`return Ok(())` /
/// `Err(..)`); carried for API parity, converted to a panic by the
/// [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Assert inside a property; panics identify the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Uniform choice between strategies sharing a value type. Arms may be
/// *different* strategy types (as with the real proptest's union): each
/// is boxed behind `dyn Strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$(
            Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>
        ),+])
    };
}

/// Define deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, bytes in proptest::collection::vec(any::<u8>(), 1..100)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);
                    )+
                    // The body runs in a Result-returning closure so
                    // properties may `return Ok(())` early, as with the
                    // real proptest.
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}
